//! Locality lab: make the paper's cache argument *visible* without a
//! hardware counter in sight. Exports the B-row access traces of row-wise
//! and cluster-wise SpGEMM, replays them through a simulated cache, and
//! prints reuse-distance profiles.
//!
//! ```text
//! cargo run --release --example locality_lab
//! ```

use clusterwise_spgemm::cachesim::{replay_b_row_trace, reuse_distance_histogram, CacheConfig};
use clusterwise_spgemm::core::trace::{accesses_saved, clusterwise_b_access_trace};
use clusterwise_spgemm::prelude::*;
use clusterwise_spgemm::sparse::gen::banded::block_diagonal;
use clusterwise_spgemm::spgemm::trace::rowwise_b_access_trace;

fn main() {
    // A block matrix whose similar rows have been scattered: the worst case
    // for row-wise locality, the best case for hierarchical clustering.
    let a = block_diagonal(4096, (4, 8), 0.02, 3);
    let shuffle = clusterwise_spgemm::reorder::random_permutation(a.nrows, 99);
    let scrambled = shuffle.permute_symmetric(&a);
    println!(
        "matrix: {} rows, {} nnz (block-diagonal, rows scattered)\n",
        scrambled.nrows,
        scrambled.nnz()
    );

    // --- traces ------------------------------------------------------------
    let row_trace = rowwise_b_access_trace(&scrambled);
    let h = hierarchical_clustering(&scrambled, &ClusterConfig::default());
    let (cc, pa) = h.build_symmetric(&scrambled);
    let cluster_trace = clusterwise_b_access_trace(&cc);
    println!("row-wise B-row accesses:     {}", row_trace.len());
    println!(
        "cluster-wise B-row accesses: {}  ({} accesses eliminated by the format)",
        cluster_trace.len(),
        accesses_saved(&cc)
    );

    // --- cache replay --------------------------------------------------------
    println!("\ncache replay (B laid out as CSR, cold start):");
    println!("{:<28} {:>12} {:>12} {:>10}", "config", "row-wise", "cluster-wise", "reduction");
    for (name, cfg) in [
        ("32 KiB L1 (8-way)", CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 8 }),
        ("512 KiB L2 (8-way)", CacheConfig::default()),
    ] {
        let r1 = replay_b_row_trace(&scrambled, &row_trace, cfg);
        let r2 = replay_b_row_trace(&pa, &cluster_trace, cfg);
        println!(
            "{:<28} {:>9} miss {:>9} miss {:>9.2}x",
            name,
            r1.cache.misses,
            r2.cache.misses,
            r1.cache.misses as f64 / r2.cache.misses.max(1) as f64
        );
    }

    // --- reuse distances -----------------------------------------------------
    let cap = 512;
    let h_row = reuse_distance_histogram(&row_trace, scrambled.ncols, cap);
    let h_cluster = reuse_distance_histogram(&cluster_trace, pa.ncols, cap);
    println!("\nreuse-distance profile (B-row granularity):");
    println!("{:<26} {:>14} {:>14}", "would-hit at capacity", "row-wise", "cluster-wise");
    for c in [8usize, 32, 128, 512] {
        println!(
            "{:<26} {:>13.1}% {:>13.1}%",
            format!("{c} rows"),
            100.0 * h_row.hits_at_capacity(c) as f64 / row_trace.len() as f64,
            100.0 * h_cluster.hits_at_capacity(c) as f64 / cluster_trace.len() as f64,
        );
    }
    println!(
        "\nmean finite reuse distance: row-wise {:.1}, cluster-wise {:.1}",
        h_row.mean_distance().unwrap_or(f64::NAN),
        h_cluster.mean_distance().unwrap_or(f64::NAN)
    );
    println!("(smaller = better temporal locality — the mechanism behind Fig. 3)");
}
