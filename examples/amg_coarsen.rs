//! AMG-flavored workload (one of the paper's §1 motivations): the Galerkin
//! triple product `A_coarse = R · A · P` of algebraic multigrid, which is
//! two back-to-back SpGEMMs on the same fine-grid operator. The operator is
//! clustered once and reused for both multiplies at every level.
//!
//! ```text
//! cargo run --release --example amg_coarsen
//! ```

use clusterwise_spgemm::prelude::*;
use clusterwise_spgemm::sparse::gen::grid::stencil9;
use clusterwise_spgemm::sparse::CooMatrix;
use std::time::Instant;

/// Best-of-3 wall time (with one warmup) of `f`, plus its result.
fn best_time<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut result = f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        result = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, result)
}

/// Piecewise-constant prolongation for a 2D grid: aggregates 2×2 vertex
/// blocks into one coarse variable.
fn aggregation_prolongator(nx: usize, ny: usize) -> CsrMatrix {
    let cx = nx.div_ceil(2);
    let cy = ny.div_ceil(2);
    let mut coo = CooMatrix::with_capacity(nx * ny, cx * cy, nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            let fine = y * nx + x;
            let coarse = (y / 2) * cx + (x / 2);
            coo.push(fine, coarse, 1.0);
        }
    }
    coo.to_csr()
}

fn main() {
    let (mut nx, mut ny) = (192usize, 192usize);
    let mut a = stencil9(nx, ny);
    println!("AMG-style coarsening of a {nx}×{ny} 9-point (FEM Q1) operator\n");
    println!(
        "{:<8} {:>9} {:>11} {:>13} {:>19} {:>7}",
        "level", "n", "nnz", "row-wise RAP", "cluster RAP(+build)", "speedup"
    );

    let mut level = 0;
    while a.nrows > 64 {
        let p = aggregation_prolongator(nx, ny);
        let r = p.transpose();

        // Row-wise Galerkin product.
        let (t_row, rap) = best_time(|| {
            let ap = spgemm(&a, &p);
            spgemm(&r, &ap)
        });

        // Cluster-wise: variable-length clustering of A and R, built once
        // per level (in real AMG the operator is reused across many solves,
        // so the build is amortized — it is reported, not charged).
        let t0 = Instant::now();
        let clustering = variable_clustering(&a, &ClusterConfig::default());
        let cc = CsrCluster::from_csr(&a, &clustering);
        let rc = variable_clustering(&r, &ClusterConfig::default());
        let rcc = CsrCluster::from_csr(&r, &rc);
        let build = t0.elapsed().as_secs_f64();
        let (t_cluster, rap2) = best_time(|| {
            let ap = clusterwise_spgemm(&cc, &p);
            clusterwise_spgemm(&rcc, &ap)
        });

        assert!(rap2.approx_eq(&rap, 1e-9), "Galerkin products must agree at level {level}");

        println!(
            "{:<8} {:>9} {:>11} {:>12.3}ms {:>10.3}ms+{:<8} {:>6.2}x",
            level,
            a.nrows,
            a.nnz(),
            t_row * 1e3,
            t_cluster * 1e3,
            format!("{:.1}ms", build * 1e3),
            t_row / t_cluster
        );

        a = rap;
        nx = nx.div_ceil(2);
        ny = ny.div_ceil(2);
        level += 1;
    }
    println!(
        "\ncoarsened to {} unknowns across {} levels; all products verified ✓",
        a.nrows, level
    );
}
