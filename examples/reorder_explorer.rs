//! Reordering explorer: run all ten reordering algorithms on a matrix
//! (generated, or loaded from a Matrix Market file) and report structural
//! quality, preprocessing time, and A² SpGEMM speedup for each.
//!
//! ```text
//! cargo run --release --example reorder_explorer [path/to/matrix.mtx]
//! ```

use clusterwise_spgemm::prelude::*;
use clusterwise_spgemm::reorder::compute_timed;
use clusterwise_spgemm::sparse::gen::mesh::tri_mesh;
use clusterwise_spgemm::sparse::io::read_matrix_market_path;
use clusterwise_spgemm::sparse::stats::{avg_consecutive_jaccard, bandwidth};
use std::time::Instant;

fn time_a2(a: &CsrMatrix) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        std::hint::black_box(spgemm(a, a));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let a = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading {path} ...");
            read_matrix_market_path(std::path::Path::new(&path)).expect("failed to read .mtx")
        }
        None => {
            println!("no file given; using a scrambled 90×90 triangulated mesh");
            tri_mesh(90, 90, true, 3)
        }
    };
    assert_eq!(a.nrows, a.ncols, "reordering study needs a square matrix");
    println!(
        "matrix: n = {}, nnz = {}, bandwidth = {}, consecutive-row Jaccard = {:.3}\n",
        a.nrows,
        a.nnz(),
        bandwidth(&a),
        avg_consecutive_jaccard(&a)
    );

    let base = time_a2(&a);
    println!("row-wise A² on original order: {:.3} ms\n", base * 1e3);
    println!(
        "{:<11} {:>11} {:>10} {:>10} {:>9} {:>10}",
        "algorithm", "preprocess", "bandwidth", "rowJacc", "A² time", "speedup"
    );

    let mut algos = vec![Reordering::Original];
    algos.extend(Reordering::all_ten());
    for algo in algos {
        let timed = compute_timed(algo, &a, 7);
        let pa = timed.perm.permute_symmetric(&a);
        let t = time_a2(&pa);
        println!(
            "{:<11} {:>9.2}ms {:>10} {:>10.3} {:>7.2}ms {:>9.2}x",
            algo.name(),
            timed.seconds * 1e3,
            bandwidth(&pa),
            avg_consecutive_jaccard(&pa),
            t * 1e3,
            base / t
        );
    }
    println!("\n(speedup > 1 means the reordering accelerated row-wise SpGEMM)");
}
