//! All-pairs similarity search via SpGEMM — one of the paper's §1
//! motivating applications, and exactly the machinery hierarchical
//! clustering reuses internally (`SpGEMM_TopK` on `A·Aᵀ`).
//!
//! Rows are "documents" (sets of feature ids); the pattern product `A·Aᵀ`
//! counts shared features for every document pair at once, and the top-k
//! filter keeps each document's nearest neighbors by Jaccard similarity.
//!
//! ```text
//! cargo run --release --example similarity_search
//! ```

use clusterwise_spgemm::prelude::*;
use clusterwise_spgemm::sparse::CooMatrix;
use clusterwise_spgemm::spgemm::topk::spgemm_topk;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Synthesizes a document-feature matrix with planted topic clusters:
/// `docs` documents over `vocab` features, each document drawing most of
/// its features from one of `topics` topic distributions.
fn corpus(docs: usize, vocab: usize, topics: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(docs, vocab);
    let topic_width = vocab / topics;
    for d in 0..docs {
        let topic = rng.gen_range(0..topics);
        let base = topic * topic_width;
        for _ in 0..24 {
            // 85% in-topic features, 15% background noise.
            let f = if rng.gen_bool(0.85) {
                base + rng.gen_range(0..topic_width)
            } else {
                rng.gen_range(0..vocab)
            };
            coo.push(d, f, 1.0);
        }
    }
    coo.to_csr()
}

fn main() {
    let docs = 4000;
    let a = corpus(docs, 2048, 16, 7);
    println!("corpus: {} documents, {} distinct features, {} nnz", a.nrows, a.ncols, a.nnz());

    let t0 = Instant::now();
    let pairs = spgemm_topk(&a, 5, 0.25);
    let elapsed = t0.elapsed();
    println!(
        "\nSpGEMM_TopK(A·Aᵀ, k=5, threshold=0.25): {} candidate pairs in {:.1?}",
        pairs.len(),
        elapsed
    );

    println!("\nmost similar document pairs:");
    for p in pairs.iter().take(8) {
        println!("  doc {:>5} ~ doc {:>5}   Jaccard {:.3}", p.row_i, p.row_j, p.jaccard);
    }

    // The same candidates drive hierarchical clustering; show the bridge.
    let t0 = Instant::now();
    let h = hierarchical_clustering(&a, &ClusterConfig { jacc_th: 0.25, max_cluster: 8 });
    println!(
        "\nhierarchical clustering on the same corpus: {} clusters in {:.1?}",
        h.clustering.nclusters(),
        t0.elapsed()
    );
    let multi: usize = h.clustering.sizes.iter().filter(|&&s| s > 1).map(|&s| s as usize).sum();
    println!("{multi} of {docs} documents were grouped with at least one near-duplicate");

    // Sanity: every reported pair really has the claimed similarity.
    for p in pairs.iter().take(50) {
        let j = clusterwise_spgemm::sparse::jaccard::jaccard(
            a.row_cols(p.row_i as usize),
            a.row_cols(p.row_j as usize),
        );
        assert!((j - p.jaccard).abs() < 1e-12);
    }
    println!("similarity scores verified ✓");
}
