//! Tour of the `cw-net` wire-protocol serving layer: two in-process
//! `NetServer`s, a `RoutedClient` sharding traffic across them by operand
//! fingerprint, and QoS deadlines shedding hopeless requests at admission.
//!
//! ```text
//! cargo run --release --example net_roundtrip
//! ```
//!
//! (For a real deployment the servers would be separate `cw-serve`
//! processes; the protocol is identical.)

use clusterwise_spgemm::prelude::*;
use clusterwise_spgemm::sparse::gen;
use std::time::Duration;

fn main() {
    // Two endpoints, each its own service + engine shards, bound to
    // ephemeral loopback ports.
    let servers: Vec<NetServer> = (0..2)
        .map(|_| {
            let service = SpgemmService::new(ServiceConfig {
                shards: 2,
                batch_window: Duration::from_millis(2),
                ..ServiceConfig::default()
            });
            NetServer::bind(service, "127.0.0.1:0", NetServerConfig::default())
                .expect("bind loopback")
        })
        .collect();
    let endpoints: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
    println!("serving on {endpoints:?}\n");

    // The routing table consistent-hashes each lhs fingerprint over the
    // endpoints — the same SplitMix64 hash the service uses for its
    // in-process shards, one level up. Every client agrees on placement.
    let mut router =
        RoutedClient::connect(&endpoints, ClientConfig::default()).expect("connect both");

    let operands: Vec<(&str, CsrMatrix)> = vec![
        ("scrambled_mesh", gen::mesh::tri_mesh(16, 16, true, 42)),
        ("poisson2d", gen::grid::poisson2d(16, 16)),
        ("block_diagonal", gen::banded::block_diagonal(128, (4, 8), 0.1, 7)),
        ("erdos_renyi", gen::er::erdos_renyi(200, 6, 11)),
    ];

    println!("== routed wire multiplies ==");
    for (name, a) in &operands {
        let endpoint = router.endpoint_for(a);
        let resp = router.multiply(a, a).expect("served");
        // The product travels as bit-exact CSRB blobs: the wire answer
        // matches an in-process multiply of the same pipeline.
        assert!(resp.product.numerically_eq(&spgemm(a, a), 1e-9));
        println!(
            "{name:>16} -> endpoint {endpoint} | shard {} | {} | exec {:.3} ms",
            resp.report.shard,
            if resp.report.cache_hit { "cache hit " } else { "cache miss" },
            resp.report.execute_seconds * 1e3,
        );
    }

    // Repeat traffic lands on the same endpoint and now hits its plan
    // cache — placement is deterministic, so caches stay hot.
    println!("\n== second wave (plan caches are hot) ==");
    for (name, a) in &operands {
        let resp = router.multiply(a, a).expect("served");
        println!(
            "{name:>16} -> endpoint {} | {}",
            router.endpoint_for(a),
            if resp.report.cache_hit { "cache hit" } else { "cache miss" },
        );
    }

    // QoS: a deadline the request cannot possibly meet. Already-expired
    // requests are shed at admission (before taking a queue slot); ones
    // that expire while queued are dropped unexecuted by the worker —
    // either way the client sees `DeadlineExpired`, never a stale result.
    println!("\n== QoS: hopeless deadline is shed ==");
    let (name, a) = &operands[0];
    let hopeless = Qos { priority: Priority::Low, deadline: Some(Duration::from_nanos(1)) };
    match router.multiply_qos(a, a, hopeless) {
        Err(e) if e.is_rejected_with(clusterwise_spgemm::net::RejectCode::DeadlineExpired) => {
            println!("{name:>16}: shed as hoped ({e})")
        }
        other => panic!("expected a deadline rejection, got {other:?}"),
    }

    // The shed shows up in the net.* metrics every endpoint exports.
    println!("\n== per-endpoint net.* metrics (JSONL) ==");
    for (i, jsonl) in router.stats_jsonl_all().expect("stats").iter().enumerate() {
        for line in jsonl.lines().filter(|l| l.contains("net.")) {
            println!("endpoint {i}: {line}");
        }
    }

    // Graceful drain: both servers finish in-flight work, then exit.
    router.shutdown_all().expect("drain");
    for (i, server) in servers.into_iter().enumerate() {
        let stats = server.shutdown();
        println!("\nendpoint {i} final: {}", stats.summary());
    }
}
