//! Quickstart: multiply a sparse matrix by itself three ways — row-wise,
//! cluster-wise after variable-length clustering, and via hierarchical
//! clustering — and verify they agree.
//!
//! The input is a block-structured matrix whose rows have been scattered:
//! variable-length clustering (which never reorders) finds little, while
//! hierarchical clustering rediscovers the scattered groups — the paper's
//! central contrast.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clusterwise_spgemm::prelude::*;
use clusterwise_spgemm::sparse::gen::banded::block_diagonal;
use std::time::Instant;

/// Best-of-3 wall time (with one warmup) of `f`, plus its result.
fn best_time<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut result = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        result = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    // Dense diagonal blocks (4–8 rows each, identical patterns inside),
    // then scatter the rows across the index space.
    let blocks = block_diagonal(8192, (4, 8), 0.01, 5);
    let shuffle = clusterwise_spgemm::reorder::random_permutation(blocks.nrows, 99);
    let a = shuffle.permute_symmetric(&blocks);
    println!("matrix: {} rows, {} nonzeros (scattered block structure)\n", a.nrows, a.nnz());

    // --- 1. Row-wise Gustavson baseline -----------------------------------
    let (t_rowwise, c_rowwise) = best_time(|| spgemm(&a, &a));
    println!("row-wise A²:        {:>9.2} ms   (nnz(C) = {})", t_rowwise * 1e3, c_rowwise.nnz());

    // --- 2. Variable-length clustering + cluster-wise kernel --------------
    let cfg = ClusterConfig::default(); // jacc_th = 0.3, max_cluster = 8
    let t0 = Instant::now();
    let clustering = variable_clustering(&a, &cfg);
    let cc = CsrCluster::from_csr(&a, &clustering);
    let build_var = t0.elapsed().as_secs_f64();
    let (t_variable, c_variable) = best_time(|| clusterwise_spgemm(&cc, &a));
    println!(
        "variable clusters:  {:>9.2} ms   (+{:.2} ms build, {} clusters — scattered rows defeat in-order clustering)",
        t_variable * 1e3,
        build_var * 1e3,
        clustering.nclusters()
    );
    assert!(c_variable.approx_eq(&c_rowwise, 1e-9), "cluster-wise result must match");

    // --- 3. Hierarchical clustering (reorders + clusters in one step) -----
    let t0 = Instant::now();
    let h = hierarchical_clustering(&a, &cfg);
    let (hc, pa) = h.build_symmetric(&a);
    let build_hier = t0.elapsed().as_secs_f64();
    let (t_hier, c_hier) = best_time(|| clusterwise_spgemm(&hc, &pa));
    println!(
        "hierarchical:       {:>9.2} ms   (+{:.2} ms build, {} clusters — SpGEMM(A·Aᵀ) regroups the scattered rows)",
        t_hier * 1e3,
        build_hier * 1e3,
        h.clustering.nclusters()
    );
    // The hierarchical result is the same product, symmetrically permuted.
    let expected = h.perm.permute_symmetric(&c_rowwise);
    assert!(c_hier.numerically_eq(&expected, 1e-9), "hierarchical result must match");

    println!(
        "\nspeedup vs row-wise: variable {:.2}x, hierarchical {:.2}x",
        t_rowwise / t_variable,
        t_rowwise / t_hier
    );
    let amortize = build_hier / (t_rowwise - t_hier).max(1e-12);
    if t_hier < t_rowwise {
        println!("hierarchical preprocessing amortizes after {amortize:.1} SpGEMM runs");
    }
    println!("all three products agree ✓");
}
