//! Betweenness-centrality-style workload (paper §4.4): multiply a graph's
//! adjacency matrix by a sequence of BFS frontier matrices (tall-skinny),
//! comparing row-wise SpGEMM against hierarchical cluster-wise SpGEMM with
//! the clustering amortized across all iterations.
//!
//! ```text
//! cargo run --release --example bc_frontiers
//! ```

use clusterwise_spgemm::datasets::frontier::bc_frontiers;
use clusterwise_spgemm::prelude::*;
use clusterwise_spgemm::sparse::gen::banded::block_diagonal;
use std::time::Instant;

/// Best-of-3 wall time (with one warmup) of `f`, plus its result.
fn best_time<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut result = f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        result = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    // A community-structured graph (dense groups bridged sparsely) with the
    // vertex ids scattered — the case where hierarchical clustering finds
    // scattered similar rows and BC's repeated SpGEMMs amortize it.
    let blocks = block_diagonal(12288, (4, 8), 0.03, 7);
    let shuffle = clusterwise_spgemm::reorder::random_permutation(blocks.nrows, 41);
    let a = shuffle.permute_symmetric(&blocks);
    println!("graph: {} vertices, {} edges", a.nrows, a.nnz() / 2);

    // 32 simultaneous BFS sources, first 10 forward frontiers.
    let frontiers = bc_frontiers(&a, 32, 10, 99);
    println!("generated {} frontier matrices (n × 32)", frontiers.len());

    // Cluster the adjacency matrix ONCE.
    let t0 = Instant::now();
    let h = hierarchical_clustering(&a, &ClusterConfig::default());
    let (cc, _pa) = h.build_symmetric(&a);
    println!("hierarchical clustering: {:.3?} (amortized over all iterations)\n", t0.elapsed());

    println!(
        "{:<6} {:>10} {:>12} {:>14} {:>9}",
        "iter", "nnz(F)", "row-wise", "cluster-wise", "speedup"
    );
    let mut total_speedup = 0.0;
    for (i, f) in frontiers.iter().enumerate() {
        let (t_row, c1) = best_time(|| spgemm(&a, f));

        let pf = h.perm.permute_rows(f);
        let (t_cluster, c2) = best_time(|| clusterwise_spgemm(&cc, &pf));

        // Correctness: the clustered product is the row-permuted product.
        let expected = h.perm.permute_rows(&c1);
        assert!(c2.approx_eq(&expected, 1e-9), "iteration {i} mismatch");

        let s = t_row / t_cluster;
        total_speedup += s;
        println!(
            "i{:<5} {:>10} {:>11.3}ms {:>13.3}ms {:>8.2}x",
            i + 1,
            f.nnz(),
            t_row * 1e3,
            t_cluster * 1e3,
            s
        );
    }
    println!(
        "\nmean speedup: {:.2}x (all products verified)",
        total_speedup / frontiers.len() as f64
    );
}
