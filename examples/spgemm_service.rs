//! Tour of the `cw-service` serving layer: a sharded, batching SpGEMM
//! service absorbing a mixed-operand wave of requests.
//!
//! ```text
//! cargo run --release --example spgemm_service
//! ```

use clusterwise_spgemm::prelude::*;
use clusterwise_spgemm::sparse::gen;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Four structurally different operands — each fingerprint routes to a
    // fixed shard, so every operand is prepared exactly once service-wide.
    let operands: Vec<(&str, Arc<CsrMatrix>)> = vec![
        ("scrambled_mesh", Arc::new(gen::mesh::tri_mesh(24, 24, true, 42))),
        ("poisson2d", Arc::new(gen::grid::poisson2d(24, 24))),
        ("block_diagonal", Arc::new(gen::banded::block_diagonal(256, (4, 8), 0.1, 7))),
        ("erdos_renyi", Arc::new(gen::er::erdos_renyi(400, 6, 11))),
    ];

    let service = SpgemmService::new(ServiceConfig {
        shards: 2,
        batch_window: Duration::from_millis(5),
        ..ServiceConfig::default()
    });
    println!("service up: {:?}\n", service.config());

    // A wave of repeated traffic: 6 requests per operand, interleaved, all
    // submitted inside one batching window.
    let mut tickets = Vec::new();
    for _ in 0..6 {
        for (name, a) in &operands {
            let ticket = service
                .submit(MultiplyRequest::new(Arc::clone(a), Arc::clone(a)))
                .expect("queue sized for the wave");
            tickets.push((*name, ticket));
        }
    }

    println!("== per-request reports (one per operand, first wave) ==");
    let mut shown = std::collections::HashSet::new();
    for (name, ticket) in tickets {
        let response = ticket.wait().expect("service is healthy");
        let report = &response.report;
        if shown.insert(name) {
            println!("{name:>16}: {}", report.summary());
        }
        // Every product matches the serial baseline.
        let (_, a) = operands.iter().find(|(n, _)| *n == name).unwrap();
        assert!(response.product.numerically_eq(&spgemm_serial(a, a), 1e-9));
    }

    let stats = service.shutdown();
    println!("\n== service stats ==");
    println!("{}", stats.summary());
    for shard in &stats.shards {
        println!(
            "shard {}: {} reqs in {} batches (max {}, {} coalesced) | cache hit rate {:.2} | \
             {} operands, {} KiB resident",
            shard.shard,
            shard.requests,
            shard.batches,
            shard.max_batch_size,
            shard.coalesced_batches,
            shard.cache.hit_rate(),
            shard.cached_operands,
            shard.cached_bytes / 1024,
        );
    }
}
