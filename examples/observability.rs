//! Tour of the `cw-obs` observability substrate: a traced serving run,
//! the metrics registry behind `ServiceStats`, the bounded flight
//! recorder, and both exporters (human-readable + versioned JSON-lines).
//!
//! ```text
//! cargo run --release --example observability
//! ```

use clusterwise_spgemm::prelude::*;
use clusterwise_spgemm::sparse::gen;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Two operands, repeated traffic: round 1 prepares (plan + reorder +
    // cluster), later rounds hit the shard plan caches — the traces below
    // show exactly that as zero-length `prepare` spans.
    let operands: Vec<(&str, Arc<CsrMatrix>)> = vec![
        ("scrambled_mesh", Arc::new(gen::mesh::tri_mesh(20, 20, true, 42))),
        ("poisson2d", Arc::new(gen::grid::poisson2d(20, 20))),
    ];

    // `tracing: true` is the only switch: every request now leaves a
    // queue → coalesce → dispatch → serve → plan/prepare/execute span
    // chain in a fixed-capacity flight recorder (here: the last 8
    // requests). Disabled tracing costs one atomic load per span site.
    let service = SpgemmService::new(ServiceConfig {
        shards: 2,
        batch_window: Duration::from_millis(2),
        tracing: true,
        flight_capacity: 8,
        ..ServiceConfig::default()
    });

    let mut tickets = Vec::new();
    for _ in 0..4 {
        for (_, a) in &operands {
            tickets.push(
                service
                    .submit(MultiplyRequest::new(Arc::clone(a), Arc::clone(a)))
                    .expect("queue sized for the wave"),
            );
        }
    }
    for ticket in tickets {
        ticket.wait().expect("service is healthy");
    }

    // --- The flight recorder: structured traces of recent requests ---
    let traces = service.tracer().flight_traces();
    println!("== flight recorder: {} trace(s) retained ==", traces.len());
    for trace in &traces {
        assert!(trace.nests_correctly(), "every trace nests under one root");
    }
    if let Some(trace) = traces.last() {
        println!("last request ({} ns end to end; spans nest by depth):", trace.duration_ns());
        for span in &trace.spans {
            println!(
                "  {:indent$}{:<10} {:>9} ns",
                "",
                span.name,
                span.duration_ns(),
                indent = 2 * span.depth as usize
            );
        }
    }

    // --- The metrics registry: the numbers behind ServiceStats ---
    // Counters, gauges, and log-bucketed histograms under stable names;
    // `ServiceStats` is a view over this same substrate.
    let snapshot = service.metrics().snapshot();
    println!("\n== metrics registry (selected) ==");
    for name in ["requests_submitted", "requests_completed", "shard0.cache.misses"] {
        println!("  {name} = {}", snapshot.counter(name).unwrap_or(0));
    }
    if let Some(latency) = snapshot.histogram("latency_seconds") {
        println!(
            "  latency_seconds: count={} p50={:.1}µs p99={:.1}µs",
            latency.count,
            latency.quantile(0.5) * 1e6,
            latency.quantile(0.99) * 1e6,
        );
    }

    // --- Exporters ---
    // Human-readable snapshot (also printed automatically if a shard
    // panics), and the versioned JSON-lines document the bench harness
    // attaches as OBS_*.jsonl artifacts.
    println!("\n== human-readable dump (head) ==");
    let dump = service.dump_flight_recorder();
    for line in dump.lines().take(12) {
        println!("{line}");
    }
    let jsonl = service.export_jsonl();
    println!(
        "\njson-lines export: {} lines, header {}",
        jsonl.lines().count(),
        jsonl.lines().next().unwrap_or_default()
    );

    let stats = service.shutdown();
    println!("\n== service stats (same numbers, report view) ==");
    println!("{}", stats.summary());
}
