//! Engine quickstart: profile → plan → cached repeated multiply.
//!
//! ```text
//! cargo run --release --example engine_pipeline
//! ```
//!
//! Walks the full `cw-engine` pipeline on two structurally different
//! matrices: the planner picks a different pipeline for each, the first
//! multiply pays preprocessing, and repeated traffic hits the plan cache
//! and runs kernel-only.

use clusterwise_spgemm::engine::Suggestion;
use clusterwise_spgemm::prelude::*;
use std::time::Instant;

fn main() {
    // Two workloads with opposite structure:
    // a scrambled mesh (reordering recovers locality) and a block-diagonal
    // matrix whose rows are already grouped (clustering in place wins).
    let mesh = clusterwise_spgemm::sparse::gen::mesh::tri_mesh(40, 40, true, 42);
    let blocks = clusterwise_spgemm::sparse::gen::banded::block_diagonal(1600, (5, 8), 0.05, 7);

    let mut engine = Engine::default();

    for (name, a) in [("scrambled tri-mesh", &mesh), ("block-diagonal", &blocks)] {
        println!("=== {name}: {} rows, {} nnz ===", a.nrows, a.nnz());

        // 1. Profile: the cheap structural statistics driving the decision.
        let profile = engine.planner().profile(a);
        println!(
            "profile: skew {:.1}, rel. bandwidth {:.2}, consecutive jaccard {:.2}",
            profile.degree_skew, profile.relative_bandwidth, profile.consecutive_jaccard
        );

        // 2. Plan: reordering × clustering × kernel × accumulator.
        let plan = engine.planner().plan(a);
        println!("plan:    {}  ({})", plan.describe(), plan.rationale);

        // 3. Execute: first call prepares (and caches), later calls reuse.
        let (c, first) = engine.multiply(a, a);
        println!("first:   {}", first.summary());

        let t0 = Instant::now();
        let rounds = 5;
        for _ in 0..rounds {
            let (c_again, rep) = engine.multiply(a, a);
            assert!(rep.cache_hit, "repeated traffic must hit the plan cache");
            assert!(c_again.numerically_eq(&c, 0.0));
        }
        println!(
            "{rounds} cached multiplies in {:.1} ms (prep skipped on every one)",
            t0.elapsed().as_secs_f64() * 1e3
        );

        // Cross-validate against the row-wise baseline.
        let baseline = spgemm(a, a);
        assert!(c.numerically_eq(&baseline, 1e-9));
        println!("output matches row-wise baseline ✓\n");
    }

    // A forced plan for comparison: what would the *wrong* pipeline cost?
    let forced = engine.planner().plan_for_suggestion(&mesh, Suggestion::ClusterInPlace);
    let (_, rep) = engine.multiply_planned(&mesh, &mesh, forced);
    println!("forced ClusterInPlace on the mesh: {}", rep.summary());

    let stats = engine.cache_stats();
    println!(
        "\ncache: {} hits / {} misses / {} evictions ({} operands resident)",
        stats.hits,
        stats.misses,
        stats.evictions,
        engine.cached_operands()
    );
}
