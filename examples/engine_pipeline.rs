//! Engine quickstart: profile → plan → cached repeated multiply.
//!
//! ```text
//! cargo run --release --example engine_pipeline
//! ```
//!
//! Walks the full `cw-engine` pipeline on two structurally different
//! matrices: the planner picks a different pipeline for each, the first
//! multiply pays preprocessing, and repeated traffic hits the plan cache
//! and runs kernel-only.

use clusterwise_spgemm::engine::Suggestion;
use clusterwise_spgemm::prelude::*;
use std::time::Instant;

/// Walks the execution-backend seam: the same planned pipeline forced onto
/// each registered backend, bit-identical outputs, different timings.
fn backend_tour(engine: &mut Engine, a: &CsrMatrix) {
    println!("=== execution backends: one pipeline, four strategies ===");
    let pipeline = engine.planner().plan(a);
    let mut oracle: Option<CsrMatrix> = None;
    for id in [
        BackendId::SerialReference,
        BackendId::ParallelCpu,
        BackendId::TiledCpu,
        BackendId::AdaptiveCpu,
    ] {
        // Forcing a backend is just a plan knob; each backend's
        // preparation caches under its own (fingerprint, knobs) key.
        let (c, rep) = engine.multiply_planned(a, a, pipeline.on_backend(id));
        println!("{:>16}: {}", id.name(), rep.summary());
        match &oracle {
            None => oracle = Some(c),
            Some(reference) => assert!(
                c.numerically_eq(reference, 0.0),
                "{id:?} must be bit-identical to the serial oracle"
            ),
        }
    }
    println!("all backends bit-identical to the serial-reference oracle ✓\n");
}

fn main() {
    // Two workloads with opposite structure:
    // a scrambled mesh (reordering recovers locality) and a block-diagonal
    // matrix whose rows are already grouped (clustering in place wins).
    let mesh = clusterwise_spgemm::sparse::gen::mesh::tri_mesh(40, 40, true, 42);
    let blocks = clusterwise_spgemm::sparse::gen::banded::block_diagonal(1600, (5, 8), 0.05, 7);

    let mut engine = Engine::default();

    for (name, a) in [("scrambled tri-mesh", &mesh), ("block-diagonal", &blocks)] {
        println!("=== {name}: {} rows, {} nnz ===", a.nrows, a.nnz());

        // 1. Profile: the cheap structural statistics driving the decision.
        let profile = engine.planner().profile(a);
        println!(
            "profile: skew {:.1}, rel. bandwidth {:.2}, consecutive jaccard {:.2}",
            profile.degree_skew, profile.relative_bandwidth, profile.consecutive_jaccard
        );

        // 2. Plan: reordering × clustering × kernel × accumulator.
        let plan = engine.planner().plan(a);
        println!("plan:    {}  ({})", plan.describe(), plan.rationale);

        // 3. Execute: first call prepares (and caches), later calls reuse.
        let (c, first) = engine.multiply(a, a);
        println!("first:   {}", first.summary());

        // Repeated traffic hits the plan cache — except right after the
        // feedback loop re-plans (observed timings contradicted the cost
        // model), when the one miss pays for the newly chosen pipeline.
        let t0 = Instant::now();
        let rounds = 5;
        let mut last_feedback = None;
        let mut switched_last_round = false;
        for round in 0..rounds {
            let (c_again, rep) = engine.multiply(a, a);
            assert!(
                rep.cache_hit || switched_last_round,
                "round {round}: only a fresh re-plan may miss the cache"
            );
            assert!(c_again.numerically_eq(&c, 1e-9), "round {round}: result must not change");
            if rep.feedback.is_some_and(|f| f.switched) {
                println!("  feedback re-planned after round {round}: {}", rep.plan.describe());
            }
            switched_last_round = rep.feedback.is_some_and(|f| f.switched);
            last_feedback = rep.feedback;
        }
        println!(
            "{rounds} warm multiplies in {:.1} ms (preprocessing amortized away)",
            t0.elapsed().as_secs_f64() * 1e3
        );

        // 4. Feedback: observed kernel seconds calibrate the cost model.
        if let Some(fb) = last_feedback {
            println!(
                "feedback: {} runs, predicted {:.3} ms vs observed {:.3} ms \
                 (calibration {:.2}, {} replans)",
                fb.executions,
                fb.predicted_kernel_seconds * 1e3,
                fb.observed_kernel_seconds * 1e3,
                fb.calibration,
                fb.replans
            );
        }

        // Cross-validate against the row-wise baseline.
        let baseline = spgemm(a, a);
        assert!(c.numerically_eq(&baseline, 1e-9));
        println!("output matches row-wise baseline ✓\n");
    }

    // A forced plan for comparison: what would the *wrong* pipeline cost?
    let forced = engine.planner().plan_for_suggestion(&mesh, Suggestion::ClusterInPlace);
    let (_, rep) = engine.multiply_planned(&mesh, &mesh, forced);
    println!("forced ClusterInPlace on the mesh: {}", rep.summary());

    // The same pipeline on every execution backend (serial oracle, rayon
    // reference, column-tiled cache blocking, per-row adaptive kernel zoo).
    backend_tour(&mut engine, &blocks);

    let stats = engine.cache_stats();
    println!(
        "\ncache: {} hits / {} misses / {} evictions ({} operands resident)",
        stats.hits,
        stats.misses,
        stats.evictions,
        engine.cached_operands()
    );
}
