//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`Just`], the [`proptest!`] test macro, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline stand-in:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug` where
//!   available in the assertion message) but is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs.
//! * Rejections (`prop_assume!`) skip the case without a retry budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// RNG used to generate test cases.
pub type TestRng = SmallRng;

/// Per-test configuration (`cases` = number of generated cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped.
    Reject,
    /// An assertion failed; the test aborts with this message.
    Fail(String),
}

/// Derives a stable RNG for a named test (FNV-1a over the name).
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates collapse, so the set
    /// may be smaller than the drawn size (matching proptest semantics
    /// loosely).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n {
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Marker so `PhantomData` stays referenced if combinators change shape.
#[doc(hidden)]
pub type _Phantom = PhantomData<()>;

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} ({})",
                    ::std::stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        if !(*__pa == *__pb) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                ::std::stringify!($a),
                ::std::stringify!($b),
                __pa,
                __pb,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pa, __pb) = (&$a, &$b);
        if !(*__pa == *__pb) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                ::std::stringify!($a),
                ::std::stringify!($b),
                __pa,
                __pb,
                ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        if *__pa == *__pb {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                ::std::stringify!($a),
                ::std::stringify!($b),
                __pa,
            )));
        }
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(#[test] fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for_test(::std::stringify!($name));
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                // Allow a bounded number of rejected cases on top of the
                // requested budget, like proptest's rejection allowance.
                while __ran < __cfg.cases && __attempts < __cfg.cases.saturating_mul(8).max(64) {
                    __attempts += 1;
                    let ($($pat,)*) = ( $( $crate::Strategy::generate(&($strat), &mut __rng), )* );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __ran += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            ::std::panic!(
                                "proptest '{}' failed at case {}: {}",
                                ::std::stringify!($name), __ran, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = super::rng_for_test("ranges");
        for _ in 0..1000 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1u32..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = super::rng_for_test("combinators");
        let strat = (2usize..6)
            .prop_flat_map(|n| super::collection::vec(0usize..n, 1..=n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0usize..100, (a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assume!(a + b > 0); // exercises the Reject path occasionally
        }

        #[test]
        fn sets_respect_bounds(s in crate::collection::btree_set(0u32..64, 0..20)) {
            prop_assert!(s.len() <= 20);
            for v in &s {
                prop_assert!(*v < 64);
            }
        }
    }
}
