//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the (small) subset of the `rand 0.8` API the workspace actually uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable PRNG (xoshiro256++,
//!   seeded through SplitMix64 like the real `SmallRng`);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive), [`Rng::gen_bool`], and [`Rng::gen`] for `f64`/`u64`/`u32`.
//!
//! Everything is deterministic per seed. The exact output streams differ
//! from the real `rand` crate — all workspace call sites only rely on
//! determinism and reasonable statistical quality, never on specific
//! values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        sample_f64(self) < p
    }

    /// A sample from the standard distribution of `T` (`f64` in `[0, 1)`,
    /// integers over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        sample_f64(rng)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, bound)` (Lemire's multiply-shift with
/// rejection).
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty sampling range");
    // Rejection zone keeps the widening multiply unbiased.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 only for the full u64 domain, not reachable here.
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + sample_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + sample_f64(rng) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small/fast generator behind `rand::rngs::SmallRng`
    /// on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real SmallRng does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "{frac}");
        assert!(!rng.gen_bool(0.0));
        let _ = rng.gen_bool(1.0); // p=1.0 accepted without panicking
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
