//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API this workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple median-of-samples wall-clock timer that prints one line per
//! benchmark. No statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Called by [`criterion_main!`] after all groups; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named benchmark id (`function` / `parameter` pair).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group; a no-op here.
    pub fn finish(&mut self) {}

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let median = b.median_seconds();
        println!("bench {:<50} {}", format!("{}/{}", self.name, label), format_seconds(median));
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the workload.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples after one warmup call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }

    fn median_seconds(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut s = self.samples.clone();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>10.3} s ")
    } else if s >= 1e-3 {
        format!("{:>10.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:>10.3} µs", s * 1e6)
    } else {
        format!("{:>10.1} ns", s * 1e9)
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        let mut ran = 0;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn format_covers_magnitudes() {
        assert!(format_seconds(2.0).contains("s"));
        assert!(format_seconds(2e-3).contains("ms"));
        assert!(format_seconds(2e-6).contains("µs"));
        assert!(format_seconds(2e-9).contains("ns"));
    }
}
