//! Offline stand-in for `rayon`, backed by a persistent work-stealing
//! thread pool.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of rayon's API the workspace kernels use:
//!
//! * `(a..b).into_par_iter().map(f).collect::<Vec<_>>()`
//! * `(a..b).into_par_iter().map_init(init, f).collect::<Vec<_>>()`
//! * `slice.par_iter_mut().for_each(f)` / `.for_each_init(init, f)`
//! * [`current_num_threads`]
//!
//! Unlike the original scoped-thread stand-in (which paid a spawn/join
//! round trip per call and used static contiguous chunking), parallel
//! operations now run on **long-lived worker threads** started lazily on
//! first use. Each worker owns a deque (`Mutex<VecDeque>`-backed; steal
//! granularity, not deque micro-optimization, is what matters at this
//! scale); jobs enter through a global injector and are split recursively
//! — a worker halves any range bigger than the job's grain, keeps the
//! front half, and publishes the back half for other workers to steal —
//! so skewed workloads rebalance instead of being pinned to a static
//! span.
//!
//! Ordering semantics match rayon: `collect` preserves index order no
//! matter which worker computed which subrange. A panic inside a task is
//! caught, the job's remaining tasks are drained without running the
//! body, and the first panic payload is re-thrown on the calling thread —
//! the pool itself survives and serves subsequent calls.
//!
//! Pool width is decided once per pool at construction: the default pool
//! reads `RAYON_NUM_THREADS` (else `std::thread::available_parallelism`)
//! exactly once at first use, and tests pin explicit widths per scope via
//! [`with_pool_width`] — there is no process-global cached snapshot that
//! can go stale when the env var changes mid-process. Work at width 1 (or
//! nested inside a worker) runs inline on the caller, which keeps
//! single-thread runs bit-identical to serial execution.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Pool width
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-scope width override installed by [`with_pool_width`]; worker
    /// threads pin it to their pool's width so nested calls agree.
    static WIDTH_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True on pool worker threads: nested parallel calls run inline
    /// instead of re-entering the pool (a worker blocking on its own pool
    /// would deadlock at width 1).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The default pool width: `RAYON_NUM_THREADS` read once at first pool
/// use, else the machine's available parallelism.
fn default_width() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// The worker-thread count used by all parallel operations in the current
/// scope (the [`with_pool_width`] override if one is installed, else the
/// default width).
pub fn current_num_threads() -> usize {
    WIDTH_OVERRIDE.with(|w| w.get()).unwrap_or_else(default_width)
}

/// Runs `f` with all parallel operations on this thread pinned to a pool
/// of exactly `width` workers (minimum 1), restoring the previous width on
/// exit — including on panic. Pools are cached per width, so exercising
/// widths 1/2/8 in one process reuses three long-lived pools rather than
/// churning threads. Intended for tests; production width comes from the
/// environment at first use.
pub fn with_pool_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WIDTH_OVERRIDE.with(|w| w.set(self.0));
        }
    }
    let prev = WIDTH_OVERRIDE.with(|w| w.replace(Some(width.max(1))));
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Pool statistics
// ---------------------------------------------------------------------------

static TASKS: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static MAX_SPLIT_DEPTH: AtomicU64 = AtomicU64::new(0);

/// Monotonic counters describing pool activity since process start,
/// aggregated over every pool width (observability surfaces export these
/// as `pool.*` metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Leaf tasks executed (including inline width-1 runs).
    pub tasks: u64,
    /// Tasks taken from another worker's deque rather than popped locally.
    pub steals: u64,
    /// Deepest recursive split observed for any single task.
    pub max_split_depth: u64,
}

/// A snapshot of the process-wide [`PoolStats`] counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        tasks: TASKS.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        max_split_depth: MAX_SPLIT_DEPTH.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// The work-stealing pool
// ---------------------------------------------------------------------------

/// A job body: runs one subrange of indices on the given worker slot.
/// Slot `width` is reserved for the submitting/inline thread.
type Body<'a> = &'a (dyn Fn(Range<usize>, usize) + Sync);

/// Shared state of one in-flight parallel call.
struct JobCore {
    body: Body<'static>,
    /// Ranges at or below this length execute as one leaf.
    grain: usize,
    /// Outstanding tasks (root counts as 1; each split adds 1).
    pending: AtomicUsize,
    /// Set after the first leaf panic: later leaves drain without running
    /// the body so the caller unblocks promptly.
    poisoned: AtomicBool,
    /// First panic payload, re-thrown by the caller.
    payload: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    cv: Condvar,
}

/// One schedulable unit: a contiguous index subrange of a job.
struct Task {
    job: Arc<JobCore>,
    range: Range<usize>,
    depth: u64,
}

/// Shared state of one pool (fixed width, process lifetime).
struct Shared {
    width: usize,
    /// New jobs enter here; any worker may take them.
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: owner pops LIFO at the back (cache-warm child
    /// halves), thieves steal FIFO at the front (the biggest ranges).
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Wakeup generation: bumped on every publish so sleeping workers
    /// can't miss work between their last scan and going to sleep.
    generation: Mutex<u64>,
    cv: Condvar,
}

impl Shared {
    /// Publishes "new work exists": bump the generation and wake workers.
    fn signal(&self) {
        let mut g = self.generation.lock().unwrap();
        *g = g.wrapping_add(1);
        drop(g);
        self.cv.notify_all();
    }
}

/// Returns the lazily-created persistent pool of the given width.
fn pool(width: usize) -> Arc<Shared> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<Shared>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = pools.lock().unwrap();
    Arc::clone(map.entry(width).or_insert_with(|| {
        let shared = Arc::new(Shared {
            width,
            injector: Mutex::new(VecDeque::new()),
            deques: (0..width).map(|_| Mutex::new(VecDeque::new())).collect(),
            generation: Mutex::new(0),
            cv: Condvar::new(),
        });
        for slot in 0..width {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("cw-pool-w{width}-{slot}"))
                .spawn(move || worker_main(s, slot))
                .expect("failed to spawn pool worker");
        }
        shared
    }))
}

fn worker_main(shared: Arc<Shared>, slot: usize) {
    IN_POOL.with(|f| f.set(true));
    WIDTH_OVERRIDE.with(|w| w.set(Some(shared.width)));
    loop {
        let seen = *shared.generation.lock().unwrap();
        while let Some(task) = find_task(&shared, slot) {
            run_task(&shared, slot, task);
        }
        // If work was published after `seen` was read, the generation
        // already moved and the wait falls through to a rescan.
        let mut g = shared.generation.lock().unwrap();
        while *g == seen {
            g = shared.cv.wait(g).unwrap();
        }
    }
}

/// Own deque (LIFO) → injector → steal from other deques (FIFO).
fn find_task(shared: &Shared, slot: usize) -> Option<Task> {
    if let Some(t) = shared.deques[slot].lock().unwrap().pop_back() {
        return Some(t);
    }
    if let Some(t) = shared.injector.lock().unwrap().pop_front() {
        return Some(t);
    }
    for victim in 0..shared.width {
        if victim == slot {
            continue;
        }
        if let Some(t) = shared.deques[victim].lock().unwrap().pop_front() {
            STEALS.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
    }
    None
}

/// Split-until-grain, then execute the remaining leaf. Each split keeps
/// the front half (about to be hot in this worker's cache) and publishes
/// the back half to this worker's deque for thieves.
fn run_task(shared: &Shared, slot: usize, task: Task) {
    let Task { job, mut range, mut depth } = task;
    while range.len() > job.grain {
        let mid = range.start + range.len() / 2;
        job.pending.fetch_add(1, Ordering::SeqCst);
        shared.deques[slot].lock().unwrap().push_back(Task {
            job: Arc::clone(&job),
            range: mid..range.end,
            depth: depth + 1,
        });
        shared.signal();
        range = range.start..mid;
        depth += 1;
    }
    MAX_SPLIT_DEPTH.fetch_max(depth, Ordering::Relaxed);
    execute_leaf(&job, range, slot);
}

fn execute_leaf(job: &JobCore, range: Range<usize>, slot: usize) {
    TASKS.fetch_add(1, Ordering::Relaxed);
    if !job.poisoned.load(Ordering::Acquire) {
        let body = job.body;
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(range, slot))) {
            let mut payload = job.payload.lock().unwrap();
            if payload.is_none() {
                *payload = Some(p);
            }
            job.poisoned.store(true, Ordering::Release);
        }
    }
    if job.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
        let mut done = job.done.lock().unwrap();
        *done = true;
        job.cv.notify_all();
    }
}

/// The one unsafe operation in the crate: erasing the caller's stack
/// lifetime from a job body so the `'static` worker threads can hold it.
#[allow(unsafe_code)]
fn erase(body: Body<'_>) -> Body<'static> {
    // SAFETY: `run_job` blocks until the job's pending count reaches zero
    // and no worker dereferences `body` after decrementing its last task
    // (dropping the job Arc does not read it), so the erased reference is
    // never used after the caller's frame is live.
    unsafe { std::mem::transmute(body) }
}

/// Leaf size for `n` items at the given width: ~8 leaves per worker, so
/// stealing has slack to rebalance skew without per-item task overhead.
fn grain_for(n: usize, width: usize) -> usize {
    (n / (width * 8)).max(1)
}

/// Runs `body` over `0..n`, split across the current-width pool. Inline
/// (sequential, ascending — bit-identical to serial) when the width is 1,
/// when `n` fits a single leaf, or when already on a pool worker. The
/// slot argument passed to `body` is the executing worker's index, or
/// `width` for the submitting/inline thread.
fn run_job(n: usize, body: Body<'_>) {
    if n == 0 {
        return;
    }
    let width = current_num_threads();
    let inline = width <= 1 || IN_POOL.with(|f| f.get());
    let grain = grain_for(n, width);
    if inline || n <= grain {
        TASKS.fetch_add(1, Ordering::Relaxed);
        body(0..n, width);
        return;
    }
    let shared = pool(width);
    let job = Arc::new(JobCore {
        body: erase(body),
        grain,
        pending: AtomicUsize::new(1),
        poisoned: AtomicBool::new(false),
        payload: Mutex::new(None),
        done: Mutex::new(false),
        cv: Condvar::new(),
    });
    shared.injector.lock().unwrap().push_back(Task {
        job: Arc::clone(&job),
        range: 0..n,
        depth: 0,
    });
    shared.signal();
    let mut done = job.done.lock().unwrap();
    while !*done {
        done = job.cv.wait(done).unwrap();
    }
    drop(done);
    let payload = job.payload.lock().unwrap().take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// Reassembles per-leaf outputs (tagged with their range start) into
/// index order, no matter which worker produced which piece.
fn stitch<R>(n: usize, mut parts: Vec<(usize, Vec<R>)>) -> Vec<R> {
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    out
}

// ---------------------------------------------------------------------------
// rayon-shaped API
// ---------------------------------------------------------------------------

/// Everything call sites need in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Conversion into a parallel iterator (ranges only).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParMap { range: self.range, f }
    }

    /// Like [`ParRange::map`] but with per-worker mutable state built by
    /// `init` (rayon's `map_init`). As in rayon, which items share a
    /// state instance is schedule-dependent.
    pub fn map_init<I, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<INIT, F>
    where
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, usize) -> R + Sync,
        R: Send,
    {
        ParMapInit { range: self.range, init, f }
    }
}

/// Result of [`ParRange::map`]; consume with `collect`.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Collects results in index order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        let n = self.range.len();
        let offset = self.range.start;
        let f = &self.f;
        let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
        run_job(n, &|range: Range<usize>, _slot: usize| {
            let out: Vec<R> = range.clone().map(|i| f(offset + i)).collect();
            parts.lock().unwrap().push((range.start, out));
        });
        stitch(n, parts.into_inner().unwrap()).into()
    }
}

/// Result of [`ParRange::map_init`]; consume with `collect`.
pub struct ParMapInit<INIT, F> {
    range: Range<usize>,
    init: INIT,
    f: F,
}

impl<INIT, F> ParMapInit<INIT, F> {
    /// Collects results in index order; `init` runs at most once per
    /// worker slot (plus once for the inline/submitting slot).
    pub fn collect<I, R, C>(self) -> C
    where
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, usize) -> R + Sync,
        I: Send,
        R: Send,
        C: From<Vec<R>>,
    {
        let n = self.range.len();
        let offset = self.range.start;
        let width = current_num_threads();
        let init = &self.init;
        let f = &self.f;
        let states: Vec<Mutex<Option<I>>> = (0..=width).map(|_| Mutex::new(None)).collect();
        let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
        run_job(n, &|range: Range<usize>, slot: usize| {
            let mut guard = states[slot].lock().unwrap();
            let state = guard.get_or_insert_with(init);
            let out: Vec<R> = range.clone().map(|i| f(state, offset + i)).collect();
            parts.lock().unwrap().push((range.start, out));
        });
        stitch(n, parts.into_inner().unwrap()).into()
    }
}

/// `par_iter_mut` over slices (and anything derefing to a slice).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of `&mut T` in slice order.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

/// Parallel mutable slice iterator.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Applies `f` to every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.for_each_init(|| (), |(), item| f(item));
    }

    /// Applies `f` with per-worker state built by `init` (rayon's
    /// `for_each_init`). As in rayon, which elements share a state
    /// instance is schedule-dependent.
    pub fn for_each_init<I, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, &mut T) + Sync,
        I: Send,
    {
        let n = self.slice.len();
        if n == 0 {
            return;
        }
        let width = current_num_threads();
        // Pre-carve the slice into grain-sized disjoint chunks; the pool
        // then schedules chunk *indices*, so stealing moves whole chunks
        // and each `&mut` handoff is an uncontended lock + take.
        let grain = grain_for(n, width);
        let chunks: Vec<Mutex<Option<&mut [T]>>> =
            self.slice.chunks_mut(grain).map(|c| Mutex::new(Some(c))).collect();
        let states: Vec<Mutex<Option<I>>> = (0..=width).map(|_| Mutex::new(None)).collect();
        let init = &init;
        let f = &f;
        run_job(chunks.len(), &|range: Range<usize>, slot: usize| {
            let mut guard = states[slot].lock().unwrap();
            let state = guard.get_or_insert_with(init);
            for ci in range {
                let chunk = chunks[ci].lock().unwrap().take().expect("each chunk is taken once");
                for item in chunk {
                    f(state, item);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_and_orders_output() {
        let out: Vec<usize> = (5..105)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                i + scratch.len()
            })
            .collect();
        assert_eq!(out.len(), 100);
        // Which state instance each item sees is schedule-dependent, but
        // every call observes its own push, so out[i] > 5 + i always.
        for (k, &v) in out.iter().enumerate() {
            assert!(v > 5 + k, "index {k}: {v}");
        }
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<u8> = (3..3).into_par_iter().map(|_| 0u8).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn for_each_init_touches_every_element() {
        let mut xs = vec![0u64; 4096];
        xs.par_iter_mut().for_each_init(|| 7u64, |state, x| *x = *state);
        assert!(xs.iter().all(|&x| x == 7));
        xs.par_iter_mut().for_each(|x| *x += 1);
        assert!(xs.iter().all(|&x| x == 8));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let parts: Vec<u64> = (0..100_000).into_par_iter().map(|i| i as u64).collect();
        let total: u64 = parts.iter().sum();
        assert_eq!(total, 99_999 * 100_000 / 2);
    }

    #[test]
    fn with_pool_width_overrides_and_restores() {
        let base = super::current_num_threads();
        super::with_pool_width(3, || {
            assert_eq!(super::current_num_threads(), 3);
            super::with_pool_width(2, || assert_eq!(super::current_num_threads(), 2));
            assert_eq!(super::current_num_threads(), 3);
        });
        assert_eq!(super::current_num_threads(), base);
    }

    #[test]
    fn pooled_collect_matches_serial_at_every_width() {
        let expect: Vec<usize> = (0..5000usize).map(|i| i.wrapping_mul(31)).collect();
        for width in [1usize, 2, 8] {
            let got: Vec<usize> = super::with_pool_width(width, || {
                (0..5000).into_par_iter().map(|i| i.wrapping_mul(31)).collect()
            });
            assert_eq!(got, expect, "width {width}");
        }
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        for round in 0..3 {
            let caught = std::panic::catch_unwind(|| {
                super::with_pool_width(2, || {
                    let _: Vec<usize> = (0..10_000)
                        .into_par_iter()
                        .map(|i| if i == 7777 { panic!("boom {round}") } else { i })
                        .collect();
                })
            });
            assert!(caught.is_err(), "round {round}: panic must propagate");
            // The same pool must keep serving work after the panic.
            let ok: Vec<usize> =
                super::with_pool_width(2, || (0..100).into_par_iter().map(|i| i + 1).collect());
            assert_eq!(ok.len(), 100);
        }
    }

    #[test]
    fn pool_stats_counters_are_monotonic() {
        let before = super::pool_stats();
        let _: Vec<usize> =
            super::with_pool_width(2, || (0..10_000).into_par_iter().map(|i| i).collect());
        let after = super::pool_stats();
        assert!(after.tasks > before.tasks, "leaf tasks must be counted");
        assert!(after.steals >= before.steals);
        assert!(after.max_split_depth >= before.max_split_depth);
    }
}
