//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of rayon's API the workspace kernels use, implemented with
//! `std::thread::scope` (safe, no work stealing, static contiguous
//! chunking):
//!
//! * `(a..b).into_par_iter().map(f).collect::<Vec<_>>()`
//! * `(a..b).into_par_iter().map_init(init, f).collect::<Vec<_>>()`
//! * `slice.par_iter_mut().for_each(f)` / `.for_each_init(init, f)`
//! * [`current_num_threads`]
//!
//! Ordering semantics match rayon: `collect` preserves index order.
//! Thread count comes from `RAYON_NUM_THREADS` or
//! `std::thread::available_parallelism()`. Work smaller than one item per
//! thread runs inline to avoid spawn overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::OnceLock;

/// The worker-thread count used by all parallel operations.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Splits `n` items into at most `current_num_threads()` contiguous spans.
fn spans(n: usize) -> Vec<Range<usize>> {
    let threads = current_num_threads().min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Everything call sites need in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Conversion into a parallel iterator (ranges only).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParMap { range: self.range, f }
    }

    /// Like [`ParRange::map`] but with per-thread mutable state built by
    /// `init` (rayon's `map_init`).
    pub fn map_init<I, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<INIT, F>
    where
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, usize) -> R + Sync,
        R: Send,
    {
        ParMapInit { range: self.range, init, f }
    }
}

/// Result of [`ParRange::map`]; consume with `collect`.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Collects results in index order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        let f = &self.f;
        run_mapped(self.range, move |_span_idx, i| f(i)).into()
    }
}

/// Result of [`ParRange::map_init`]; consume with `collect`.
pub struct ParMapInit<INIT, F> {
    range: Range<usize>,
    init: INIT,
    f: F,
}

impl<INIT, F> ParMapInit<INIT, F> {
    /// Collects results in index order; `init` runs once per worker.
    pub fn collect<I, R, C>(self) -> C
    where
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, usize) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        let init = &self.init;
        let f = &self.f;
        let n = self.range.len();
        let offset = self.range.start;
        if n == 0 {
            return Vec::new().into();
        }
        let chunks = spans(n);
        if chunks.len() == 1 {
            let mut state = init();
            return (offset..offset + n).map(|i| f(&mut state, i)).collect::<Vec<R>>().into();
        }
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|span| {
                    s.spawn(move || {
                        let mut state = init();
                        span.map(|i| f(&mut state, offset + i)).collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon stand-in worker panicked"));
            }
        });
        parts.into_iter().flatten().collect::<Vec<R>>().into()
    }
}

/// Plain parallel map helper shared by `collect` paths.
fn run_mapped<R, F>(range: Range<usize>, f: F) -> Vec<R>
where
    F: Fn(usize, usize) -> R + Sync,
    R: Send,
{
    let n = range.len();
    let offset = range.start;
    if n == 0 {
        return Vec::new();
    }
    let chunks = spans(n);
    if chunks.len() == 1 {
        return (0..n).map(|i| f(0, offset + i)).collect();
    }
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(t, span)| {
                let f = &f;
                s.spawn(move || span.map(|i| f(t, offset + i)).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

/// `par_iter_mut` over slices (and anything derefing to a slice).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of `&mut T` in slice order.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

/// Parallel mutable slice iterator.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Applies `f` to every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.for_each_init(|| (), |(), item| f(item));
    }

    /// Applies `f` with per-thread state built by `init` (rayon's
    /// `for_each_init`).
    pub fn for_each_init<I, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, &mut T) + Sync,
    {
        let n = self.slice.len();
        if n == 0 {
            return;
        }
        let chunks = spans(n);
        if chunks.len() == 1 {
            let mut state = init();
            for item in self.slice.iter_mut() {
                f(&mut state, item);
            }
            return;
        }
        // Carve the slice into disjoint spans, one per worker.
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        let mut rest = self.slice;
        let mut parts: Vec<&mut [T]> = Vec::with_capacity(sizes.len());
        for len in sizes {
            let (here, there) = rest.split_at_mut(len);
            parts.push(here);
            rest = there;
        }
        std::thread::scope(|s| {
            for part in parts {
                let init = &init;
                let f = &f;
                s.spawn(move || {
                    let mut state = init();
                    for item in part.iter_mut() {
                        f(&mut state, item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_runs_init_per_worker_and_orders_output() {
        let out: Vec<usize> = (5..105)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                i + scratch.len()
            })
            .collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], 5 + 1);
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<u8> = (3..3).into_par_iter().map(|_| 0u8).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn for_each_init_touches_every_element() {
        let mut xs = vec![0u64; 4096];
        xs.par_iter_mut().for_each_init(|| 7u64, |state, x| *x = *state);
        assert!(xs.iter().all(|&x| x == 7));
        xs.par_iter_mut().for_each(|x| *x += 1);
        assert!(xs.iter().all(|&x| x == 8));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let parts: Vec<u64> = (0..100_000).into_par_iter().map(|i| i as u64).collect();
        let total: u64 = parts.iter().sum();
        assert_eq!(total, 99_999 * 100_000 / 2);
    }
}
