//! The cross-process contract: two real `cw-serve` processes on ephemeral
//! loopback ports, a `RoutedClient` fanning the corpus out by fingerprint,
//! each process serving exactly its `route_hash` share, and both draining
//! cleanly on SHUTDOWN (one via `--obs-out`, whose JSONL export must carry
//! the `net.*` wire metrics).

use cw_net::{ClientConfig, RoutedClient};
use cw_sparse::{fingerprint, gen, CsrMatrix};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// Kills the child on panic so a failing assertion can't leak servers.
struct ServeGuard(Option<Child>);

impl ServeGuard {
    /// Reaps a cleanly-shut-down server, asserting its exit status.
    fn wait_success(mut self) {
        let mut child = self.0.take().expect("child still owned");
        let status = child.wait().expect("wait cw-serve");
        assert!(status.success(), "cw-serve exited with {status}");
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns `cw-serve` on an ephemeral port and parses the bound address
/// from its stable `cw-serve listening on <addr>` banner.
fn spawn_serve(extra_args: &[&str]) -> (ServeGuard, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cw-serve"));
    cmd.args(["--addr", "127.0.0.1:0", "--window-ms", "2"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn cw-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("cw-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .parse()
        .expect("parse bound address");
    (ServeGuard(Some(child)), addr)
}

fn corpus() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("scrambled_mesh", gen::mesh::tri_mesh(12, 12, true, 3)),
        ("poisson2d", gen::grid::poisson2d(12, 12)),
        ("block_diagonal", gen::banded::block_diagonal(96, (4, 8), 0.1, 5)),
        ("grouped_rows", gen::banded::grouped_rows(90, 5, 6, 2)),
        ("erdos_renyi", gen::er::erdos_renyi(120, 5, 9)),
        ("kkt", gen::kkt::kkt(70, 20, 2, 3, 8)),
    ]
}

/// Pulls a counter out of the metrics line of a JSONL export.
fn counter(jsonl: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = jsonl.find(&needle).unwrap_or_else(|| panic!("no counter {name} in:\n{jsonl}"));
    jsonl[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value")
}

#[test]
fn two_cw_serve_processes_split_the_fingerprint_space() {
    let obs_path = std::env::temp_dir().join(format!("cw_net_obs_{}.jsonl", std::process::id()));
    let obs_arg = obs_path.to_str().expect("utf8 temp path");

    let (guard_a, addr_a) = spawn_serve(&["--shards", "2", "--obs-out", obs_arg]);
    let (guard_b, addr_b) = spawn_serve(&["--shards", "2"]);

    let endpoints = [addr_a, addr_b];
    let mut router =
        RoutedClient::connect(&endpoints, ClientConfig::default()).expect("connect both processes");

    let mut direct = cw_engine::Engine::default();
    let mut expected = [0u64; 2];
    for (name, a) in corpus() {
        let endpoint = router.endpoint_for(&a);
        assert_eq!(endpoint, fingerprint(&a).shard_index(2), "{name}: placement disagreement");
        let resp = router.multiply(&a, &a).expect(name);
        expected[endpoint] += 1;
        // Same bits across the process boundary as in this process.
        let (want, _) = direct.multiply(&a, &a);
        assert!(
            resp.product.numerically_eq(&want, 0.0),
            "{name}: cross-process product is not bit-identical"
        );
    }
    assert!(expected.iter().all(|&n| n > 0), "corpus fans out to both processes: {expected:?}");

    // Each process's own books confirm it served exactly its share.
    let stats = router.stats_jsonl_all().expect("stats from both");
    for (i, jsonl) in stats.iter().enumerate() {
        assert_eq!(counter(jsonl, "requests_completed"), expected[i], "process {i} share");
        assert_eq!(counter(jsonl, "net.served"), expected[i], "process {i} wire share");
        assert_eq!(counter(jsonl, "net.rejected"), 0, "process {i} rejected traffic");
    }

    // Graceful drain: both processes exit cleanly on SHUTDOWN.
    router.shutdown_all().expect("shutdown both");
    guard_a.wait_success();
    guard_b.wait_success();

    // --obs-out wrote the JSONL export, wire metrics included.
    let exported = std::fs::read_to_string(&obs_path).expect("obs-out file");
    assert_eq!(counter(&exported, "net.served"), expected[0]);
    let _ = std::fs::remove_file(&obs_path);
}
