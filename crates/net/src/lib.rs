//! **cw-net** — the wire-protocol serving layer: TCP front-end, versioned
//! binary framing, client-side sharding, and QoS admission control over
//! [`cw_service::SpgemmService`].
//!
//! Everything is `std::net` + threads — no async runtime, matching the
//! workspace's offline vendored-dependency discipline. Four pieces:
//!
//! * **Frame protocol** ([`frame`]) — every message is one `CWNP` frame: a
//!   28-byte little-endian header (magic, schema version, op code, QoS
//!   priority, request id, relative deadline, payload length) plus an
//!   op-specific payload. Operands and products travel as the
//!   self-delimiting `CSRB` blobs from [`cw_sparse::io`], so the wire
//!   bytes are bit-exact down to f64 NaN payloads.
//! * **[`NetServer`]** — wraps an owned [`cw_service::SpgemmService`]
//!   with a bounded thread-per-connection acceptor: per-connection
//!   read/write timeouts, a max-connections limit (over-limit peers get
//!   `REJECT Busy`), graceful drain on shutdown, and `net.*`
//!   counters/histograms registered on the service's own
//!   [`cw_obs::MetricsRegistry`] so the JSONL exporter carries wire
//!   telemetry for free. The `cw-serve` binary is a thin CLI over it.
//! * **[`NetClient`] / [`RoutedClient`]** — a blocking client with
//!   reconnect/backoff, and a static routing table that consistent-hashes
//!   each lhs fingerprint over N endpoints via
//!   [`cw_sparse::MatrixFingerprint::shard_index`] — the same hash the
//!   service uses for its in-process shards, one level up.
//! * **QoS at admission** — each SUBMIT carries a two-level priority and
//!   an optional relative deadline in the frame header. Expired requests
//!   are rejected *before* enqueue (shed cheap, not deep); a full queue is
//!   retried only while deadline budget remains.
//!
//! ```
//! use cw_net::{ClientConfig, NetClient, NetServer, NetServerConfig};
//! use cw_service::{ServiceConfig, SpgemmService};
//!
//! let a = cw_sparse::gen::grid::poisson2d(8, 8);
//! let service = SpgemmService::new(ServiceConfig { shards: 1, ..ServiceConfig::default() });
//! let server = NetServer::bind(service, "127.0.0.1:0", NetServerConfig::default()).unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
//! let resp = client.multiply(&a, &a).unwrap();
//! assert_eq!(resp.product.nrows, a.nrows);
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;

mod client;
mod router;
mod server;

pub use client::{ClientConfig, NetClient, NetError, Qos, WireResponse};
pub use frame::{Frame, FrameError, OpCode, RejectCode, SubmitShape, WireReport};
pub use router::RoutedClient;
pub use server::{NetServer, NetServerConfig};
