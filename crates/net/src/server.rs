//! [`NetServer`]: a bounded thread-per-connection TCP front-end over an
//! owned [`SpgemmService`].
//!
//! Threading model (matching the service's std-only style): one acceptor
//! thread polls a non-blocking listener; each accepted connection gets a
//! handler thread, bounded by [`NetServerConfig::max_connections`] —
//! over-limit connections receive a best-effort `REJECT Busy` and are
//! closed without a thread. Handlers poll the *first byte* of each frame
//! under a short timeout (so shutdown and idle limits stay responsive
//! without ever losing frame alignment) and read the rest under the full
//! [`NetServerConfig::read_timeout`].
//!
//! QoS lives at admission: a SUBMIT whose relative deadline already
//! passed is rejected before the service queue is touched, and a full
//! queue is retried (with backoff) only while the deadline still has
//! budget — no deadline means `QueueFull` surfaces immediately. All wire
//! activity lands as `net.*` counters/histograms on the *service's*
//! metrics registry, so the existing JSONL exporter picks them up with no
//! extra plumbing.

use crate::frame::{
    decode_submit_payload_shaped, encode_reject_payload, encode_result_payload,
    read_frame_after_first_byte, Frame, OpCode, RejectCode, WireReport,
};
use cw_obs::{Counter, Gauge, LogHistogram};
use cw_service::{MultiplyRequest, SpgemmService, SubmitError, Ticket};
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Maximum concurrently served connections; the acceptor answers
    /// over-limit connections with a best-effort `REJECT Busy` and closes
    /// them without spawning a handler.
    pub max_connections: usize,
    /// Per-connection cap on how long reading one frame's body may take
    /// once its first byte arrived.
    pub read_timeout: Duration,
    /// Per-connection cap on writing one reply frame.
    pub write_timeout: Duration,
    /// Largest accepted frame payload; bigger declarations are rejected
    /// before any allocation ([`crate::FrameError::Oversized`]).
    pub max_frame_bytes: usize,
    /// Sleep between admission retries while a deadlined SUBMIT waits out
    /// a full queue.
    pub full_retry_backoff: Duration,
    /// Idle connections (no frame started) are closed after this long.
    pub idle_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_frame_bytes: 64 << 20,
            full_retry_backoff: Duration::from_micros(500),
            idle_timeout: Duration::from_secs(300),
        }
    }
}

/// `net.*` obs cells, registered on the wrapped service's registry so the
/// existing JSONL exporter and flight-recorder dump carry them.
#[derive(Debug, Clone)]
struct NetMetrics {
    connections: Arc<Counter>,
    connections_active: Arc<Gauge>,
    connections_rejected: Arc<Counter>,
    requests: Arc<Counter>,
    served: Arc<Counter>,
    rejected: Arc<Counter>,
    deadline_shed: Arc<Counter>,
    decode_errors: Arc<Counter>,
    wire_seconds: Arc<LogHistogram>,
    request_bytes: Arc<LogHistogram>,
    response_bytes: Arc<LogHistogram>,
}

impl NetMetrics {
    fn register(service: &SpgemmService) -> NetMetrics {
        let m = service.metrics();
        NetMetrics {
            connections: m.counter("net.connections"),
            connections_active: m.gauge("net.connections_active"),
            connections_rejected: m.counter("net.connections_rejected"),
            requests: m.counter("net.requests"),
            served: m.counter("net.served"),
            rejected: m.counter("net.rejected"),
            deadline_shed: m.counter("net.deadline_shed"),
            decode_errors: m.counter("net.decode_errors"),
            wire_seconds: m.histogram("net.wire_seconds"),
            request_bytes: m.histogram("net.request_bytes"),
            response_bytes: m.histogram("net.response_bytes"),
        }
    }
}

struct Inner {
    service: SpgemmService,
    config: NetServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    metrics: NetMetrics,
}

/// A TCP serving front-end owning a [`SpgemmService`].
///
/// Bind with [`NetServer::bind`], talk to it with
/// [`crate::NetClient`], stop it with [`NetServer::shutdown`] (or a
/// client's SHUTDOWN frame + [`NetServer::run`], which is what the
/// `cw-serve` binary does). Dropping the server shuts it down gracefully:
/// in-flight connections finish their current request, then the service
/// drains.
#[derive(Debug)]
pub struct NetServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("config", &self.config)
            .field("shutdown", &self.shutdown)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`NetServer::local_addr`]) and starts the acceptor.
    pub fn bind<A: ToSocketAddrs>(
        service: SpgemmService,
        addr: A,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = NetMetrics::register(&service);
        let inner = Arc::new(Inner {
            service,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            metrics,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let inner = Arc::clone(&inner);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("cw-net-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, inner, handlers))
                .expect("spawn acceptor")
        };
        Ok(NetServer { inner, local_addr, acceptor: Mutex::new(Some(acceptor)), handlers })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The wrapped service (stats, metrics, JSONL export).
    pub fn service(&self) -> &SpgemmService {
        &self.inner.service
    }

    /// Whether a shutdown (local or via a SHUTDOWN frame) has begun.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a SHUTDOWN frame (or a local
    /// [`NetServer::shutdown`] from another thread) stops the server,
    /// then drains and returns the final service stats. The server —
    /// and its service — stay alive for post-drain reads
    /// ([`NetServer::service`], JSONL export). What `cw-serve` runs
    /// after printing its address.
    pub fn run(&self) -> cw_service::ServiceStats {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shutdown()
    }

    /// Graceful drain: stop accepting, let every in-flight connection
    /// finish its current frame, then shut the service down. Idempotent.
    pub fn shutdown(&self) -> cw_service::ServiceStats {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.lock().unwrap().take() {
            let _ = a.join();
        }
        let drained: Vec<_> = self.handlers.lock().unwrap().drain(..).collect();
        for h in drained {
            let _ = h.join();
        }
        self.inner.service.shutdown()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(
    listener: TcpListener,
    inner: Arc<Inner>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.metrics.connections.inc();
                let active = inner.active.load(Ordering::SeqCst);
                if active >= inner.config.max_connections {
                    inner.metrics.connections_rejected.inc();
                    reject_busy(stream, &inner);
                    continue;
                }
                inner.active.fetch_add(1, Ordering::SeqCst);
                inner.metrics.connections_active.set(inner.active.load(Ordering::SeqCst) as i64);
                let conn_inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name("cw-net-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_inner);
                        conn_inner.active.fetch_sub(1, Ordering::SeqCst);
                        conn_inner
                            .metrics
                            .connections_active
                            .set(conn_inner.active.load(Ordering::SeqCst) as i64);
                    })
                    .expect("spawn connection handler");
                let mut guard = handlers.lock().unwrap();
                // Reap finished handlers so the vec stays bounded by the
                // connection limit instead of growing with lifetime count.
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Best-effort `REJECT Busy` to an over-limit connection, on the acceptor
/// thread (bounded by the write timeout so a slow peer cannot stall
/// accepting).
fn reject_busy(mut stream: TcpStream, inner: &Inner) {
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
    let reject = Frame {
        payload: encode_reject_payload(RejectCode::Busy, "connection limit reached"),
        ..Frame::control(OpCode::Reject, 0)
    };
    let _ = reject.write_to(&mut stream);
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Serves one connection until the peer hangs up, a fatal frame error
/// occurs, the idle timeout passes, or shutdown begins.
fn handle_connection(mut stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
    // Tickets of FLAG_NO_WAIT submits awaiting a POLL, keyed by the
    // client's request id. Connection-scoped: a dropped connection drops
    // its tickets (the service still serves them; responses are discarded).
    let mut pending: HashMap<u64, PendingEntry> = HashMap::new();
    let mut idle_since = Instant::now();
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Poll only the first byte under a short timeout: shutdown and
        // idle checks stay responsive, and a timeout here never splits a
        // frame (nothing was consumed yet).
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => break, // peer closed
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if idle_since.elapsed() >= inner.config.idle_timeout {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        // Frame started: read the rest under the full read timeout. A
        // timeout mid-frame is fatal for the connection (the stream can no
        // longer be frame-aligned), but only for this connection.
        let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
        let frame = match read_frame_after_first_byte(
            first[0],
            &mut stream,
            inner.config.max_frame_bytes,
        ) {
            Ok(f) => f,
            Err(err) => {
                inner.metrics.decode_errors.inc();
                let code = RejectCode::Malformed;
                let reject = Frame {
                    payload: encode_reject_payload(code, &err.to_string()),
                    ..Frame::control(OpCode::Reject, 0)
                };
                let _ = reject.write_to(&mut stream);
                break;
            }
        };
        idle_since = Instant::now();
        let keep_going = match frame.op {
            OpCode::Submit => serve_submit(&mut stream, inner, frame, &mut pending),
            OpCode::Poll => serve_poll(&mut stream, inner, frame, &mut pending),
            OpCode::Stats => {
                let payload = inner.service.export_jsonl().into_bytes();
                let reply = Frame { payload, ..Frame::control(OpCode::StatsOk, frame.request_id) };
                reply.write_to(&mut stream).is_ok()
            }
            OpCode::Shutdown => {
                let reply = Frame::control(OpCode::ShutdownOk, frame.request_id);
                let _ = reply.write_to(&mut stream);
                inner.shutdown.store(true, Ordering::SeqCst);
                false
            }
            // Reply ops arriving at the server are a protocol violation.
            _ => {
                inner.metrics.decode_errors.inc();
                let reject = Frame {
                    payload: encode_reject_payload(
                        RejectCode::Malformed,
                        &format!("unexpected op {:?} on server", frame.op),
                    ),
                    ..Frame::control(OpCode::Reject, frame.request_id)
                };
                let _ = reject.write_to(&mut stream);
                false
            }
        };
        if !keep_going {
            break;
        }
    }
}

struct PendingEntry {
    ticket: Ticket,
    deadline: Option<Instant>,
}

/// Writes a reject frame; returns whether the connection is still usable.
fn write_reject(
    stream: &mut TcpStream,
    inner: &Inner,
    request_id: u64,
    code: RejectCode,
    message: &str,
) -> bool {
    inner.metrics.rejected.inc();
    if code == RejectCode::DeadlineExpired {
        inner.metrics.deadline_shed.inc();
    }
    let reject = Frame {
        payload: encode_reject_payload(code, message),
        ..Frame::control(OpCode::Reject, request_id)
    };
    reject.write_to(stream).is_ok()
}

/// Admission + execution of one SUBMIT frame.
fn serve_submit(
    stream: &mut TcpStream,
    inner: &Inner,
    frame: Frame,
    pending: &mut HashMap<u64, PendingEntry>,
) -> bool {
    let received = Instant::now();
    inner.metrics.requests.inc();
    inner.metrics.request_bytes.record(frame.payload.len() as f64);
    let deadline =
        (frame.deadline_ms > 0).then(|| received + Duration::from_millis(frame.deadline_ms as u64));
    let (lhs, rhs, shape) = match decode_submit_payload_shaped(&frame.payload) {
        Ok(ops) => ops,
        Err(e) => {
            inner.metrics.decode_errors.inc();
            // Payload decode failures are *not* fatal to the connection:
            // the frame boundary was sound, so the stream stays aligned.
            return write_reject(
                stream,
                inner,
                frame.request_id,
                RejectCode::Malformed,
                &e.to_string(),
            );
        }
    };
    let mut request = MultiplyRequest::new(Arc::new(lhs), Arc::new(rhs))
        .with_priority(frame.priority)
        .with_shape(shape.to_request_shape());
    if let Some(d) = deadline {
        request = request.with_deadline_at(d);
    }

    // Admission loop: a full queue is backpressure, so a deadlined request
    // spends its remaining budget retrying (shed the moment the budget is
    // gone — before enqueue, the cheap place); without a deadline,
    // QueueFull surfaces to the client immediately.
    let ticket = loop {
        match inner.service.submit(request.clone()) {
            Ok(t) => break t,
            Err(SubmitError::DeadlineExpired) => {
                return write_reject(
                    stream,
                    inner,
                    frame.request_id,
                    RejectCode::DeadlineExpired,
                    "deadline expired before admission",
                );
            }
            Err(SubmitError::Full) => match deadline {
                Some(d) if Instant::now() < d && !inner.shutdown.load(Ordering::SeqCst) => {
                    std::thread::sleep(inner.config.full_retry_backoff);
                }
                Some(_) => {
                    return write_reject(
                        stream,
                        inner,
                        frame.request_id,
                        RejectCode::DeadlineExpired,
                        "deadline expired waiting out a full queue",
                    );
                }
                None => {
                    return write_reject(
                        stream,
                        inner,
                        frame.request_id,
                        RejectCode::QueueFull,
                        "service queue is full",
                    );
                }
            },
            Err(SubmitError::ShapeMismatch { lhs_ncols, rhs_nrows }) => {
                return write_reject(
                    stream,
                    inner,
                    frame.request_id,
                    RejectCode::ShapeMismatch,
                    &format!("lhs has {lhs_ncols} cols, rhs has {rhs_nrows} rows"),
                );
            }
            Err(SubmitError::MaskShapeMismatch {
                mask_nrows,
                mask_ncols,
                product_nrows,
                product_ncols,
            }) => {
                return write_reject(
                    stream,
                    inner,
                    frame.request_id,
                    RejectCode::ShapeMismatch,
                    &format!(
                        "mask is {mask_nrows}x{mask_ncols} but the product is \
                         {product_nrows}x{product_ncols}"
                    ),
                );
            }
            Err(SubmitError::ShuttingDown) => {
                return write_reject(
                    stream,
                    inner,
                    frame.request_id,
                    RejectCode::ShuttingDown,
                    "server is draining",
                );
            }
        }
    };

    if frame.no_wait() {
        pending.insert(frame.request_id, PendingEntry { ticket, deadline });
        let reply = Frame::control(OpCode::Accepted, frame.request_id);
        return reply.write_to(stream).is_ok();
    }

    let outcome = ticket.wait();
    finish_submit(stream, inner, frame.request_id, deadline, received, outcome)
}

/// Turns a ticket outcome into the RESULT/REJECT reply.
fn finish_submit(
    stream: &mut TcpStream,
    inner: &Inner,
    request_id: u64,
    deadline: Option<Instant>,
    received: Instant,
    outcome: Result<cw_service::MultiplyResponse, cw_service::ServiceError>,
) -> bool {
    match outcome {
        Ok(resp) => {
            let report = WireReport::from_service(&resp.report);
            let payload = encode_result_payload(&report, &resp.product);
            inner.metrics.served.inc();
            inner.metrics.response_bytes.record(payload.len() as f64);
            inner.metrics.wire_seconds.record(received.elapsed().as_secs_f64());
            let reply = Frame {
                priority: resp.report.priority,
                payload,
                ..Frame::control(OpCode::Result, request_id)
            };
            reply.write_to(stream).is_ok()
        }
        // The service hung up on the ticket: either a worker dropped an
        // expired request, or the service tore down mid-flight.
        Err(_) => {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                write_reject(
                    stream,
                    inner,
                    request_id,
                    RejectCode::DeadlineExpired,
                    "deadline passed while queued; dropped unexecuted",
                )
            } else if inner.shutdown.load(Ordering::SeqCst) {
                write_reject(
                    stream,
                    inner,
                    request_id,
                    RejectCode::ShuttingDown,
                    "server is draining",
                )
            } else {
                write_reject(
                    stream,
                    inner,
                    request_id,
                    RejectCode::Internal,
                    "request dropped unserved",
                )
            }
        }
    }
}

/// Answers a POLL for an earlier no-wait submit on this connection.
fn serve_poll(
    stream: &mut TcpStream,
    inner: &Inner,
    frame: Frame,
    pending: &mut HashMap<u64, PendingEntry>,
) -> bool {
    let Some(entry) = pending.get(&frame.request_id) else {
        return write_reject(
            stream,
            inner,
            frame.request_id,
            RejectCode::UnknownRequest,
            "no pending submit with that id on this connection",
        );
    };
    match entry.ticket.poll() {
        None => {
            let reply = Frame::control(OpCode::Pending, frame.request_id);
            reply.write_to(stream).is_ok()
        }
        Some(outcome) => {
            let entry = pending.remove(&frame.request_id).expect("entry just found");
            finish_submit(stream, inner, frame.request_id, entry.deadline, Instant::now(), outcome)
        }
    }
}
