//! [`NetClient`]: a blocking wire client for one `cw-net` endpoint.
//!
//! The client keeps one TCP connection and reconnects lazily with
//! exponential backoff when an I/O error breaks it — the next call dials
//! again instead of failing forever. Request ids are assigned
//! monotonically per client and echoed by the server; replies carry them
//! back so a mismatch is detected as a protocol error.

use crate::frame::{
    decode_reject_payload, decode_result_payload, encode_submit_payload_shaped, read_frame, Frame,
    FrameError, OpCode, RejectCode, SubmitShape, WireReport, FLAG_NO_WAIT,
};
use cw_service::Priority;
use cw_sparse::io::CsrCodecError;
use cw_sparse::CsrMatrix;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Tunables for a [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Cap on waiting for one reply frame (covers queueing + execution on
    /// the server; size it to the slowest multiply you expect to wait on).
    pub read_timeout: Duration,
    /// Cap on writing one request frame.
    pub write_timeout: Duration,
    /// Dial attempts per (re)connect before giving up.
    pub connect_attempts: u32,
    /// Backoff after the first failed dial; doubles per attempt.
    pub connect_backoff: Duration,
    /// Largest accepted reply payload.
    pub max_frame_bytes: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(30),
            connect_attempts: 5,
            connect_backoff: Duration::from_millis(50),
            max_frame_bytes: 64 << 20,
        }
    }
}

/// QoS envelope for one request.
#[derive(Debug, Clone, Copy, Default)]
pub struct Qos {
    /// Priority class carried in the frame header.
    pub priority: Priority,
    /// Relative deadline (from server receipt); rounded up to whole
    /// milliseconds on the wire, `None` = never expires.
    pub deadline: Option<Duration>,
}

impl Qos {
    /// High priority, no deadline — the server treats this identically to
    /// pre-QoS traffic.
    pub fn none() -> Qos {
        Qos::default()
    }

    fn deadline_ms(&self) -> u32 {
        match self.deadline {
            // 0 means "no deadline" on the wire, so a sub-millisecond
            // budget rounds *up* — a deadline must never silently vanish.
            Some(d) => (d.as_millis().clamp(1, u32::MAX as u128)) as u32,
            None => 0,
        }
    }
}

/// Errors a client call can produce.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (dial, send, or receive). The connection is
    /// dropped; the next call reconnects.
    Io(io::Error),
    /// A reply frame could not be decoded.
    Frame(FrameError),
    /// A reply payload's CSR blob could not be decoded.
    Codec(CsrCodecError),
    /// The server refused the request.
    Rejected {
        /// Machine-readable cause.
        code: RejectCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with something that violates the protocol
    /// (wrong op, mismatched request id, malformed reject payload).
    Protocol(String),
}

impl NetError {
    /// Whether this is a `Rejected` with the given code.
    pub fn is_rejected_with(&self, want: RejectCode) -> bool {
        matches!(self, NetError::Rejected { code, .. } if *code == want)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport: {e}"),
            NetError::Frame(e) => write!(f, "frame: {e}"),
            NetError::Codec(e) => write!(f, "payload: {e}"),
            NetError::Rejected { code, message } => write!(f, "rejected ({code}): {message}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        // Transport-level failures keep their io kind so callers can
        // distinguish timeouts from protocol damage.
        match e {
            FrameError::Io(io) => NetError::Io(io),
            other => NetError::Frame(other),
        }
    }
}

impl From<CsrCodecError> for NetError {
    fn from(e: CsrCodecError) -> Self {
        NetError::Codec(e)
    }
}

/// A successfully served wire multiply.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// `C = shape(lhs · rhs)`, bit-identical to a direct
    /// [`cw_engine::Engine`] multiply with the same configuration and
    /// shape.
    pub product: CsrMatrix,
    /// The server's serving telemetry.
    pub report: WireReport,
}

/// Blocking client for one endpoint.
#[derive(Debug)]
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    next_id: u64,
}

impl NetClient {
    /// Connects eagerly (with the config's dial retries).
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<NetClient, NetError> {
        let mut client = NetClient { addr, config, stream: None, next_id: 0 };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The endpoint this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a live connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, NetError> {
        if self.stream.is_none() {
            let mut backoff = self.config.connect_backoff;
            let mut last: Option<io::Error> = None;
            for attempt in 0..self.config.connect_attempts.max(1) {
                if attempt > 0 {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                match TcpStream::connect_timeout(&self.addr, self.config.connect_timeout) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        s.set_read_timeout(Some(self.config.read_timeout))?;
                        s.set_write_timeout(Some(self.config.write_timeout))?;
                        self.stream = Some(s);
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            if self.stream.is_none() {
                return Err(NetError::Io(last.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::NotConnected, "no connect attempts")
                })));
            }
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// One request/reply exchange. Any transport error drops the
    /// connection so the next call redials.
    fn exchange(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        let max = self.config.max_frame_bytes;
        let result = (|| {
            let stream = self.ensure_connected()?;
            frame.write_to(stream)?;
            Ok(read_frame(stream, max)?)
        })();
        if matches!(result, Err(NetError::Io(_))) {
            self.stream = None;
        }
        let reply = result?;
        if reply.request_id != frame.request_id && reply.request_id != 0 {
            self.stream = None; // stream state unknown; start fresh
            return Err(NetError::Protocol(format!(
                "reply for request {} while waiting on {}",
                reply.request_id, frame.request_id
            )));
        }
        Ok(reply)
    }

    fn next_request_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// `C = lhs · rhs` over the wire, high priority, no deadline.
    pub fn multiply(&mut self, lhs: &CsrMatrix, rhs: &CsrMatrix) -> Result<WireResponse, NetError> {
        self.multiply_qos(lhs, rhs, Qos::none())
    }

    /// `C = lhs · rhs` with a QoS envelope. The server sheds the request
    /// with [`RejectCode::DeadlineExpired`] if the deadline passes before
    /// it can be admitted.
    pub fn multiply_qos(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        qos: Qos,
    ) -> Result<WireResponse, NetError> {
        self.multiply_shaped_qos(lhs, rhs, &SubmitShape::Full, qos)
    }

    /// `C = topk(lhs · rhs, k)` over the wire — each output row truncated
    /// to its `k` largest-magnitude entries, high priority, no deadline.
    /// Bit-identical to serving the full product and truncating
    /// client-side, but only the surviving entries travel back.
    pub fn multiply_topk(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        k: u64,
    ) -> Result<WireResponse, NetError> {
        self.multiply_shaped_qos(lhs, rhs, &SubmitShape::TopK(k), Qos::none())
    }

    /// `C = (lhs · rhs) ∩ mask` over the wire — only product entries on
    /// the mask's sparsity pattern survive. The mask travels in the SUBMIT
    /// payload and must match the product's dimensions
    /// (`lhs.nrows × rhs.ncols`); the server rejects mismatches with
    /// [`RejectCode::ShapeMismatch`].
    pub fn multiply_masked(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        mask: &CsrMatrix,
    ) -> Result<WireResponse, NetError> {
        self.multiply_shaped_qos(lhs, rhs, &SubmitShape::Masked(mask.clone()), Qos::none())
    }

    /// `C = shape(lhs · rhs)` with an explicit [`SubmitShape`] and QoS
    /// envelope — the general form behind [`NetClient::multiply_qos`],
    /// [`NetClient::multiply_topk`], and [`NetClient::multiply_masked`].
    pub fn multiply_shaped_qos(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        shape: &SubmitShape,
        qos: Qos,
    ) -> Result<WireResponse, NetError> {
        let frame = Frame {
            op: OpCode::Submit,
            priority: qos.priority,
            flags: 0,
            request_id: self.next_request_id(),
            deadline_ms: qos.deadline_ms(),
            payload: encode_submit_payload_shaped(lhs, rhs, shape),
        };
        let reply = self.exchange(&frame)?;
        expect_result(reply)
    }

    /// Submits without waiting: the server answers `ACCEPTED` once the
    /// request is admitted; redeem the returned id with
    /// [`NetClient::poll`] **on this same client** (pending results are
    /// connection-scoped — a reconnect abandons them).
    pub fn submit_no_wait(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        qos: Qos,
    ) -> Result<u64, NetError> {
        self.submit_no_wait_shaped(lhs, rhs, &SubmitShape::Full, qos)
    }

    /// [`NetClient::submit_no_wait`] with an explicit output shape.
    pub fn submit_no_wait_shaped(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        shape: &SubmitShape,
        qos: Qos,
    ) -> Result<u64, NetError> {
        let frame = Frame {
            op: OpCode::Submit,
            priority: qos.priority,
            flags: FLAG_NO_WAIT,
            request_id: self.next_request_id(),
            deadline_ms: qos.deadline_ms(),
            payload: encode_submit_payload_shaped(lhs, rhs, shape),
        };
        let reply = self.exchange(&frame)?;
        match reply.op {
            OpCode::Accepted => Ok(frame.request_id),
            OpCode::Reject => Err(reject_error(&reply)),
            other => Err(NetError::Protocol(format!("expected ACCEPTED, got {other:?}"))),
        }
    }

    /// Polls an earlier [`NetClient::submit_no_wait`]: `Ok(None)` while
    /// still in flight, `Ok(Some(_))` once served, `Err(Rejected)` if the
    /// server shed it.
    pub fn poll(&mut self, request_id: u64) -> Result<Option<WireResponse>, NetError> {
        let frame = Frame::control(OpCode::Poll, request_id);
        let reply = self.exchange(&frame)?;
        match reply.op {
            OpCode::Pending => Ok(None),
            _ => expect_result(reply).map(Some),
        }
    }

    /// Fetches the server's JSONL observability export (the same bytes as
    /// [`cw_service::SpgemmService::export_jsonl`], including the `net.*`
    /// wire metrics).
    pub fn stats_jsonl(&mut self) -> Result<String, NetError> {
        let frame = Frame::control(OpCode::Stats, self.next_request_id());
        let reply = self.exchange(&frame)?;
        match reply.op {
            OpCode::StatsOk => Ok(String::from_utf8_lossy(&reply.payload).into_owned()),
            OpCode::Reject => Err(reject_error(&reply)),
            other => Err(NetError::Protocol(format!("expected STATS_OK, got {other:?}"))),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        let frame = Frame::control(OpCode::Shutdown, self.next_request_id());
        let reply = self.exchange(&frame)?;
        match reply.op {
            OpCode::ShutdownOk => Ok(()),
            OpCode::Reject => Err(reject_error(&reply)),
            other => Err(NetError::Protocol(format!("expected SHUTDOWN_OK, got {other:?}"))),
        }
    }
}

fn reject_error(reply: &Frame) -> NetError {
    match decode_reject_payload(&reply.payload) {
        Some((code, message)) => NetError::Rejected { code, message },
        None => NetError::Protocol("undecodable reject payload".into()),
    }
}

fn expect_result(reply: Frame) -> Result<WireResponse, NetError> {
    match reply.op {
        OpCode::Result => {
            let (report, product) = decode_result_payload(&reply.payload)?;
            Ok(WireResponse { product, report })
        }
        OpCode::Reject => Err(reject_error(&reply)),
        other => Err(NetError::Protocol(format!("expected RESULT, got {other:?}"))),
    }
}
