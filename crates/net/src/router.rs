//! [`RoutedClient`]: client-side sharding over N endpoints via the same
//! consistent hash the in-process service uses.
//!
//! Routing reuses [`cw_sparse::MatrixFingerprint::shard_index`] — the
//! SplitMix64-mixed `route_hash` over the operand's structural fingerprint
//! — so *every* client deterministically sends a given lhs to the same
//! endpoint, and each endpoint's plan caches see all traffic for their
//! matrices and only that traffic, exactly like the in-process shards one
//! level down. The routing table is static: endpoints are fixed at
//! construction (membership changes mean building a new client).

use crate::client::{ClientConfig, NetClient, NetError, Qos, WireResponse};
use cw_sparse::{fingerprint, CsrMatrix};
use std::net::SocketAddr;

/// A static routing table of [`NetClient`]s, one per endpoint.
#[derive(Debug)]
pub struct RoutedClient {
    clients: Vec<NetClient>,
}

impl RoutedClient {
    /// Connects one client per endpoint (eagerly, so a dead endpoint
    /// surfaces at construction rather than mid-traffic).
    pub fn connect(
        endpoints: &[SocketAddr],
        config: ClientConfig,
    ) -> Result<RoutedClient, NetError> {
        assert!(!endpoints.is_empty(), "RoutedClient needs at least one endpoint");
        let clients = endpoints
            .iter()
            .map(|&addr| NetClient::connect(addr, config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RoutedClient { clients })
    }

    /// Number of endpoints in the table.
    pub fn endpoints(&self) -> usize {
        self.clients.len()
    }

    /// The endpoint index `lhs` routes to: its structural fingerprint's
    /// [`cw_sparse::MatrixFingerprint::shard_index`] over the table size.
    pub fn endpoint_for(&self, lhs: &CsrMatrix) -> usize {
        fingerprint(lhs).shard_index(self.clients.len())
    }

    /// The address of endpoint `index`.
    pub fn endpoint_addr(&self, index: usize) -> SocketAddr {
        self.clients[index].addr()
    }

    /// Routed multiply: hashes the lhs fingerprint to pick the endpoint,
    /// then performs a wire multiply there.
    pub fn multiply(&mut self, lhs: &CsrMatrix, rhs: &CsrMatrix) -> Result<WireResponse, NetError> {
        self.multiply_qos(lhs, rhs, Qos::none())
    }

    /// Routed multiply with a QoS envelope.
    pub fn multiply_qos(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        qos: Qos,
    ) -> Result<WireResponse, NetError> {
        self.multiply_shaped_qos(lhs, rhs, &crate::SubmitShape::Full, qos)
    }

    /// Routed `C = topk(lhs · rhs, k)` (see [`NetClient::multiply_topk`]).
    pub fn multiply_topk(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        k: u64,
    ) -> Result<WireResponse, NetError> {
        self.multiply_shaped_qos(lhs, rhs, &crate::SubmitShape::TopK(k), Qos::none())
    }

    /// Routed `C = (lhs · rhs) ∩ mask` (see
    /// [`NetClient::multiply_masked`]).
    pub fn multiply_masked(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        mask: &CsrMatrix,
    ) -> Result<WireResponse, NetError> {
        self.multiply_shaped_qos(lhs, rhs, &crate::SubmitShape::Masked(mask.clone()), Qos::none())
    }

    /// Routed multiply with an explicit output shape and QoS envelope.
    /// Routing depends only on the lhs fingerprint — a shaped request for
    /// an operand lands on the same endpoint as its full-product traffic,
    /// where the shard keeps a distinct cache entry per shape.
    pub fn multiply_shaped_qos(
        &mut self,
        lhs: &CsrMatrix,
        rhs: &CsrMatrix,
        shape: &crate::SubmitShape,
        qos: Qos,
    ) -> Result<WireResponse, NetError> {
        let idx = self.endpoint_for(lhs);
        self.clients[idx].multiply_shaped_qos(lhs, rhs, shape, qos)
    }

    /// The JSONL observability export of every endpoint, in table order.
    pub fn stats_jsonl_all(&mut self) -> Result<Vec<String>, NetError> {
        self.clients.iter_mut().map(NetClient::stats_jsonl).collect()
    }

    /// Asks every endpoint to drain and exit.
    pub fn shutdown_all(&mut self) -> Result<(), NetError> {
        for c in &mut self.clients {
            c.shutdown_server()?;
        }
        Ok(())
    }

    /// Direct access to the client for endpoint `index` (tests, targeted
    /// stats).
    pub fn client_mut(&mut self, index: usize) -> &mut NetClient {
        &mut self.clients[index]
    }
}
