//! `cw-serve` — serve SpGEMM traffic over the `CWNP` wire protocol.
//!
//! Binds a [`cw_net::NetServer`] over a fresh
//! [`cw_service::SpgemmService`], prints the bound address (parsed by
//! tests and the bench harness when `--addr` uses port 0), and runs until
//! a SHUTDOWN frame arrives. At exit the service's JSONL observability
//! export — including the `net.*` wire metrics — is written to `--obs-out`
//! when given.
//!
//! ```text
//! cw-serve [--addr HOST:PORT] [--shards N] [--queue-capacity N]
//!          [--window-ms MS] [--max-batch N] [--max-connections N]
//!          [--low-watermark N] [--pool-width N] [--seed N]
//!          [--tracing] [--obs-out PATH]
//! ```

use cw_net::{NetServer, NetServerConfig};
use cw_service::{ServiceConfig, SpgemmService};
use std::io::Write;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: cw-serve [--addr HOST:PORT] [--shards N] [--queue-capacity N] \
         [--window-ms MS] [--max-batch N] [--max-connections N] [--low-watermark N] \
         [--pool-width N] [--seed N] [--tracing] [--obs-out PATH]"
    );
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("cw-serve: bad or missing value for {flag}");
            usage()
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut service_config = ServiceConfig::default();
    let mut net_config = NetServerConfig::default();
    let mut obs_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--shards" => service_config.shards = parse("--shards", args.next()),
            "--queue-capacity" => {
                service_config.queue_capacity = parse("--queue-capacity", args.next())
            }
            "--window-ms" => {
                service_config.batch_window =
                    Duration::from_millis(parse("--window-ms", args.next()))
            }
            "--max-batch" => service_config.max_batch = parse("--max-batch", args.next()),
            "--max-connections" => {
                net_config.max_connections = parse("--max-connections", args.next())
            }
            "--low-watermark" => {
                service_config.low_priority_watermark = Some(parse("--low-watermark", args.next()))
            }
            "--pool-width" => service_config.pool_width = Some(parse("--pool-width", args.next())),
            "--seed" => service_config.seed = parse("--seed", args.next()),
            "--tracing" => service_config.tracing = true,
            "--obs-out" => obs_out = Some(parse("--obs-out", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("cw-serve: unknown argument {other}");
                usage()
            }
        }
    }

    let service = SpgemmService::new(service_config);
    let server = match NetServer::bind(service, addr.as_str(), net_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cw-serve: bind {addr}: {e}");
            std::process::exit(1)
        }
    };

    // Parsed by tests and the bench harness to discover the ephemeral
    // port; keep the format stable.
    println!("cw-serve listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();

    // Blocks until a SHUTDOWN frame flips the flag, then drains the
    // connections and the service.
    let stats = server.run();
    eprintln!("cw-serve: drained; {}", stats.summary());

    if let Some(path) = obs_out {
        let jsonl = server.service().export_jsonl();
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("cw-serve: write {path}: {e}");
            std::process::exit(1)
        }
    }
}
