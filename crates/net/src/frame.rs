//! The `CWNP` wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message on the wire is one frame: a fixed 28-byte little-endian
//! header followed by `payload_len` payload bytes. The header carries the
//! QoS envelope (priority class, relative deadline) so admission control
//! can act *before* touching the payload, and the payload formats reuse
//! the self-delimiting `CSRB` codec from [`cw_sparse::io`] so operand and
//! product bytes are identical to what out-of-core code reads and writes.
//!
//! Header layout (offsets in bytes):
//!
//! | off | size | field | meaning |
//! |-----|------|-------------|--------------------------------------------|
//! | 0   | 4    | magic       | `b"CWNP"` |
//! | 4   | 2    | version     | schema version, currently 2 |
//! | 6   | 1    | op          | [`OpCode`] |
//! | 7   | 1    | priority    | 0 = high, 1 = low |
//! | 8   | 2    | flags       | bit 0 = [`FLAG_NO_WAIT`] |
//! | 10  | 2    | reserved    | must be 0 |
//! | 12  | 8    | request_id  | client-chosen; echoed in every reply |
//! | 20  | 4    | deadline_ms | relative deadline, 0 = none |
//! | 24  | 4    | payload_len | payload bytes following the header |
//!
//! Version 2 adds the optional output-shape block to SUBMIT payloads
//! ([`SubmitShape`]) and the shape fields to [`WireReport`]. A version-1
//! SUBMIT (no shape block) still decodes — it means the full product —
//! so v1 clients keep working against a v2 server. The normative
//! byte-level specification lives in `docs/PROTOCOL.md` at the workspace
//! root; this module is its implementation.

use cw_engine::OutputShape;
use cw_service::{Priority, ServiceReport};
use cw_sparse::io::{decode_csr, encode_csr_into, CsrCodecError};
use cw_sparse::CsrMatrix;
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"CWNP";

/// Wire schema version emitted by this build; peers reject anything newer.
/// Version 2 added output shapes (the SUBMIT shape block and the
/// [`WireReport`] shape fields); version-1 frames are still accepted.
pub const FRAME_VERSION: u16 = 2;

/// Fixed header size in bytes.
pub const FRAME_HEADER_BYTES: usize = 28;

/// Frame flag: the SUBMIT does not want a synchronous reply body — the
/// server answers [`OpCode::Accepted`] immediately and the client fetches
/// the outcome later with [`OpCode::Poll`] on the same connection.
pub const FLAG_NO_WAIT: u16 = 1;

/// Frame operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Client → server: execute `C = shape(lhs · rhs)`. Payload: lhs
    /// `CSRB` blob, rhs `CSRB` blob, then an optional [`SubmitShape`]
    /// block (absent = full product, the version-1 payload).
    Submit = 1,
    /// Server → client: a served multiply. Payload: [`WireReport`]
    /// followed by the product `CSRB` blob.
    Result = 2,
    /// Server → client: the request was not served. Payload:
    /// [`RejectCode`] (u16) + message length (u32) + UTF-8 message.
    Reject = 3,
    /// Client → server: request the service's JSONL observability export.
    /// Empty payload.
    Stats = 4,
    /// Server → client: reply to [`OpCode::Stats`]. Payload: the JSONL
    /// bytes ([`cw_obs::export`] schema).
    StatsOk = 5,
    /// Client → server: ask the server to drain and exit. Empty payload.
    Shutdown = 6,
    /// Server → client: shutdown acknowledged; the server drains in-flight
    /// work and stops accepting connections. Empty payload.
    ShutdownOk = 7,
    /// Client → server: fetch the outcome of an earlier
    /// [`FLAG_NO_WAIT`] submit with the same `request_id`. Empty payload.
    Poll = 8,
    /// Server → client: the polled request is still in flight. Empty
    /// payload.
    Pending = 9,
    /// Server → client: a no-wait submit was admitted. Empty payload.
    Accepted = 10,
}

impl OpCode {
    /// Parses a wire byte.
    pub fn from_wire(b: u8) -> Option<OpCode> {
        Some(match b {
            1 => OpCode::Submit,
            2 => OpCode::Result,
            3 => OpCode::Reject,
            4 => OpCode::Stats,
            5 => OpCode::StatsOk,
            6 => OpCode::Shutdown,
            7 => OpCode::ShutdownOk,
            8 => OpCode::Poll,
            9 => OpCode::Pending,
            10 => OpCode::Accepted,
            _ => return None,
        })
    }
}

/// Why the server refused to serve a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum RejectCode {
    /// The service's bounded queue was full (backpressure — retry later).
    QueueFull = 1,
    /// The request's deadline expired before (or while) it could be
    /// admitted — shed at the front door, never enqueued.
    DeadlineExpired = 2,
    /// Operand shapes do not compose.
    ShapeMismatch = 3,
    /// The frame or its payload could not be decoded.
    Malformed = 4,
    /// The server is at its connection limit.
    Busy = 5,
    /// The server is draining for shutdown.
    ShuttingDown = 6,
    /// The request was admitted but the service dropped it unserved.
    Internal = 7,
    /// A POLL named a request id this connection never submitted (or one
    /// already redeemed).
    UnknownRequest = 8,
}

impl RejectCode {
    /// Parses a wire value.
    pub fn from_wire(v: u16) -> Option<RejectCode> {
        Some(match v {
            1 => RejectCode::QueueFull,
            2 => RejectCode::DeadlineExpired,
            3 => RejectCode::ShapeMismatch,
            4 => RejectCode::Malformed,
            5 => RejectCode::Busy,
            6 => RejectCode::ShuttingDown,
            7 => RejectCode::Internal,
            8 => RejectCode::UnknownRequest,
            _ => return None,
        })
    }
}

impl fmt::Display for RejectCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Priority class → wire byte.
pub fn priority_to_wire(p: Priority) -> u8 {
    match p {
        Priority::High => 0,
        Priority::Low => 1,
    }
}

/// Wire byte → priority class (unknown values are treated as high so a
/// newer client's finer-grained classes degrade safely).
pub fn priority_from_wire(b: u8) -> Priority {
    match b {
        1 => Priority::Low,
        _ => Priority::High,
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Operation.
    pub op: OpCode,
    /// QoS priority class (meaningful on SUBMIT; echoed elsewhere).
    pub priority: Priority,
    /// Header flags ([`FLAG_NO_WAIT`]).
    pub flags: u16,
    /// Client-chosen request id, echoed verbatim in replies.
    pub request_id: u64,
    /// Relative deadline in milliseconds from server receipt; 0 = none.
    pub deadline_ms: u32,
    /// Opaque payload (op-specific).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no QoS envelope and an empty payload.
    pub fn control(op: OpCode, request_id: u64) -> Frame {
        Frame {
            op,
            priority: Priority::High,
            flags: 0,
            request_id,
            deadline_ms: 0,
            payload: Vec::new(),
        }
    }

    /// Whether [`FLAG_NO_WAIT`] is set.
    pub fn no_wait(&self) -> bool {
        self.flags & FLAG_NO_WAIT != 0
    }

    /// Serializes header + payload into one buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + self.payload.len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        out.push(self.op as u8);
        out.push(priority_to_wire(self.priority));
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Writes the frame to `w` and flushes.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }
}

/// Errors while reading or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes short reads mid-frame
    /// and read timeouts).
    Io(io::Error),
    /// The first four bytes were not `b"CWNP"` — the stream is not (or no
    /// longer) frame-aligned and the connection must be dropped.
    BadMagic([u8; 4]),
    /// The peer speaks a newer schema.
    UnsupportedVersion(u16),
    /// Unknown [`OpCode`] byte.
    UnknownOp(u8),
    /// The declared payload length exceeds the reader's configured bound.
    Oversized {
        /// Declared payload bytes.
        len: usize,
        /// The reader's cap.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            FrameError::UnsupportedVersion(v) => {
                write!(f, "unsupported frame version {v} (max {FRAME_VERSION})")
            }
            FrameError::UnknownOp(b) => write!(f, "unknown op code {b}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one frame, blocking until the full header + payload arrive (or
/// the reader's timeout fires, surfacing as [`FrameError::Io`]).
pub fn read_frame<R: Read>(r: &mut R, max_payload: usize) -> Result<Frame, FrameError> {
    let mut first = [0u8; 1];
    r.read_exact(&mut first)?;
    read_frame_after_first_byte(first[0], r, max_payload)
}

/// Completes a frame whose first byte was already consumed — the server's
/// acceptor polls a single byte under a short timeout (so shutdown and
/// idle checks stay responsive without ever losing frame alignment), then
/// hands it here to read the rest under the full read timeout.
pub fn read_frame_after_first_byte<R: Read>(
    first: u8,
    r: &mut R,
    max_payload: usize,
) -> Result<Frame, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0] = first;
    r.read_exact(&mut header[1..])?;
    if header[0..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic(header[0..4].try_into().unwrap()));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version == 0 || version > FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let op = OpCode::from_wire(header[6]).ok_or(FrameError::UnknownOp(header[6]))?;
    let priority = priority_from_wire(header[7]);
    let flags = u16::from_le_bytes(header[8..10].try_into().unwrap());
    let request_id = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let deadline_ms = u32::from_le_bytes(header[20..24].try_into().unwrap());
    let payload_len = u32::from_le_bytes(header[24..28].try_into().unwrap()) as usize;
    if payload_len > max_payload {
        return Err(FrameError::Oversized { len: payload_len, max: max_payload });
    }
    let mut payload = vec![0u8; payload_len];
    r.read_exact(&mut payload)?;
    Ok(Frame { op, priority, flags, request_id, deadline_ms, payload })
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// Shape-block tag byte: masked output (a mask `CSRB` blob follows).
pub const SHAPE_TAG_MASKED: u8 = 1;

/// Shape-block tag byte: top-k output (a `u64` LE `k` follows).
pub const SHAPE_TAG_TOPK: u8 = 2;

/// Requested output shape of a SUBMIT, carrying the mask operand for
/// masked requests — the wire-side counterpart of
/// [`cw_service::RequestShape`].
///
/// On the wire this is the optional block *after* the two operand blobs:
///
/// * absent → [`SubmitShape::Full`] (exactly the version-1 payload, so
///   full-product submits are byte-identical across versions);
/// * `[SHAPE_TAG_MASKED]` + mask `CSRB` blob → [`SubmitShape::Masked`];
/// * `[SHAPE_TAG_TOPK]` + `k` as `u64` LE → [`SubmitShape::TopK`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SubmitShape {
    /// The complete product (encodes as no shape block).
    #[default]
    Full,
    /// Keep only product entries on the mask's sparsity pattern; the mask
    /// must match the product's dimensions (`lhs.nrows × rhs.ncols`).
    Masked(CsrMatrix),
    /// Keep each output row's `k` largest-magnitude entries.
    TopK(u64),
}

impl SubmitShape {
    /// The service-level request shape this decodes to.
    pub fn to_request_shape(&self) -> cw_service::RequestShape {
        match self {
            SubmitShape::Full => cw_service::RequestShape::Full,
            SubmitShape::Masked(m) => {
                cw_service::RequestShape::Masked(std::sync::Arc::new(m.clone()))
            }
            SubmitShape::TopK(k) => cw_service::RequestShape::TopK(*k as usize),
        }
    }
}

/// SUBMIT payload: the two operands as back-to-back `CSRB` blobs (the
/// version-1 form — equivalent to
/// [`encode_submit_payload_shaped`] with [`SubmitShape::Full`]).
pub fn encode_submit_payload(lhs: &CsrMatrix, rhs: &CsrMatrix) -> Vec<u8> {
    encode_submit_payload_shaped(lhs, rhs, &SubmitShape::Full)
}

/// SUBMIT payload with an output-shape block: lhs blob, rhs blob, then
/// the shape block ([`SubmitShape::Full`] encodes nothing, keeping
/// full-product payloads byte-identical to version 1).
pub fn encode_submit_payload_shaped(
    lhs: &CsrMatrix,
    rhs: &CsrMatrix,
    shape: &SubmitShape,
) -> Vec<u8> {
    let mut out = Vec::new();
    encode_csr_into(&mut out, lhs);
    encode_csr_into(&mut out, rhs);
    match shape {
        SubmitShape::Full => {}
        SubmitShape::Masked(mask) => {
            out.push(SHAPE_TAG_MASKED);
            encode_csr_into(&mut out, mask);
        }
        SubmitShape::TopK(k) => {
            out.push(SHAPE_TAG_TOPK);
            out.extend_from_slice(&k.to_le_bytes());
        }
    }
    out
}

/// Decodes a version-1 SUBMIT payload; **any** bytes after the second
/// blob — including a valid shape block — are a framing error. Servers
/// use [`decode_submit_payload_shaped`] instead.
pub fn decode_submit_payload(payload: &[u8]) -> Result<(CsrMatrix, CsrMatrix), CsrCodecError> {
    let (lhs, used) = decode_csr(payload)?;
    let (rhs, used2) = decode_csr(&payload[used..])?;
    if used + used2 != payload.len() {
        return Err(CsrCodecError::TrailingBytes(payload.len() - used - used2));
    }
    Ok((lhs, rhs))
}

/// Decodes a SUBMIT payload with an optional shape block. An absent block
/// (the version-1 payload) decodes as [`SubmitShape::Full`]; an unknown
/// tag byte or bytes trailing a complete block are framing errors.
pub fn decode_submit_payload_shaped(
    payload: &[u8],
) -> Result<(CsrMatrix, CsrMatrix, SubmitShape), CsrCodecError> {
    let (lhs, used) = decode_csr(payload)?;
    let (rhs, used2) = decode_csr(&payload[used..])?;
    let rest = &payload[used + used2..];
    let shape = match rest.first() {
        None => SubmitShape::Full,
        Some(&SHAPE_TAG_MASKED) => {
            let (mask, used3) = decode_csr(&rest[1..])?;
            if 1 + used3 != rest.len() {
                return Err(CsrCodecError::TrailingBytes(rest.len() - 1 - used3));
            }
            SubmitShape::Masked(mask)
        }
        Some(&SHAPE_TAG_TOPK) => {
            if rest.len() != 9 {
                return Err(if rest.len() < 9 {
                    CsrCodecError::Truncated { needed: 9, have: rest.len() }
                } else {
                    CsrCodecError::TrailingBytes(rest.len() - 9)
                });
            }
            SubmitShape::TopK(u64::from_le_bytes(rest[1..9].try_into().unwrap()))
        }
        // An unrecognized tag is indistinguishable from garbage: surface
        // it as trailing bytes so the server rejects it as Malformed.
        Some(_) => return Err(CsrCodecError::TrailingBytes(rest.len())),
    };
    Ok((lhs, rhs, shape))
}

/// REJECT payload: code + human-readable message.
pub fn encode_reject_payload(code: RejectCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + message.len());
    out.extend_from_slice(&(code as u16).to_le_bytes());
    out.extend_from_slice(&(message.len() as u32).to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes a REJECT payload. Unknown codes map to [`RejectCode::Internal`]
/// so a newer server's finer-grained rejects degrade safely.
pub fn decode_reject_payload(payload: &[u8]) -> Option<(RejectCode, String)> {
    if payload.len() < 6 {
        return None;
    }
    let code = u16::from_le_bytes(payload[0..2].try_into().unwrap());
    let len = u32::from_le_bytes(payload[2..6].try_into().unwrap()) as usize;
    if payload.len() != 6 + len {
        return None;
    }
    let message = String::from_utf8_lossy(&payload[6..]).into_owned();
    Some((RejectCode::from_wire(code).unwrap_or(RejectCode::Internal), message))
}

/// Serving telemetry carried in a RESULT frame — the wire projection of
/// [`ServiceReport`] (the engine's per-stage [`cw_engine::ExecutionReport`]
/// stays server-side; stats travel via the JSONL export instead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireReport {
    /// Worker shard that executed the request (on the *serving process*).
    pub shard: u32,
    /// Coalesced-batch size the request rode in.
    pub batch_size: u32,
    /// Queueing + batching-window wait, seconds.
    pub queue_seconds: f64,
    /// Worker execution time, seconds.
    pub execute_seconds: f64,
    /// In-process submit→response latency, seconds (excludes wire time).
    pub latency_seconds: f64,
    /// Whether the prepared lhs came from the shard's plan cache.
    pub cache_hit: bool,
    /// Index of the executing backend in [`cw_engine::BackendId::ALL`].
    pub backend: u8,
    /// Priority class the request was admitted under.
    pub priority: Priority,
    /// Deadline slack when the response was produced (`None` = no
    /// deadline was set).
    pub deadline_slack_seconds: Option<f64>,
    /// Output shape the request executed under (version 2; encoded as a
    /// tag byte — 0 full, [`SHAPE_TAG_MASKED`], [`SHAPE_TAG_TOPK`] —
    /// plus a `u64` LE `k`, zero unless top-k).
    pub shape: OutputShape,
}

/// Encoded size of a [`WireReport`] (44 bytes in version 1, plus the
/// 9-byte shape field added in version 2).
pub const WIRE_REPORT_BYTES: usize = 53;

impl WireReport {
    /// Projects a [`ServiceReport`] onto the wire schema.
    pub fn from_service(report: &ServiceReport) -> WireReport {
        let backend =
            cw_engine::BackendId::ALL.iter().position(|b| *b == report.backend).unwrap_or(0) as u8;
        WireReport {
            shard: report.shard as u32,
            batch_size: report.batch_size as u32,
            queue_seconds: report.queue_seconds,
            execute_seconds: report.execute_seconds,
            latency_seconds: report.latency_seconds,
            cache_hit: report.cache_hit,
            backend,
            priority: report.priority,
            deadline_slack_seconds: report.deadline_slack_seconds,
            shape: report.shape,
        }
    }

    /// The executing backend, when the wire index is in range.
    pub fn backend_id(&self) -> Option<cw_engine::BackendId> {
        cw_engine::BackendId::ALL.get(self.backend as usize).copied()
    }

    /// Appends the fixed-size encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.batch_size.to_le_bytes());
        out.extend_from_slice(&self.queue_seconds.to_bits().to_le_bytes());
        out.extend_from_slice(&self.execute_seconds.to_bits().to_le_bytes());
        out.extend_from_slice(&self.latency_seconds.to_bits().to_le_bytes());
        out.push(self.cache_hit as u8);
        out.push(self.backend);
        out.push(priority_to_wire(self.priority));
        out.push(self.deadline_slack_seconds.is_some() as u8);
        out.extend_from_slice(&self.deadline_slack_seconds.unwrap_or(0.0).to_bits().to_le_bytes());
        let (tag, k) = match self.shape {
            OutputShape::Full => (0u8, 0u64),
            OutputShape::Masked => (SHAPE_TAG_MASKED, 0),
            OutputShape::TopK(k) => (SHAPE_TAG_TOPK, k as u64),
        };
        out.push(tag);
        out.extend_from_slice(&k.to_le_bytes());
    }

    /// Decodes the fixed-size prefix; returns the report and bytes used.
    pub fn decode(buf: &[u8]) -> Option<(WireReport, usize)> {
        if buf.len() < WIRE_REPORT_BYTES {
            return None;
        }
        let f64_at =
            |at: usize| f64::from_bits(u64::from_le_bytes(buf[at..at + 8].try_into().unwrap()));
        let has_slack = buf[35] != 0;
        let k = u64::from_le_bytes(buf[45..53].try_into().unwrap()) as usize;
        let shape = match buf[44] {
            SHAPE_TAG_MASKED => OutputShape::Masked,
            SHAPE_TAG_TOPK => OutputShape::TopK(k),
            _ => OutputShape::Full,
        };
        Some((
            WireReport {
                shard: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
                batch_size: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
                queue_seconds: f64_at(8),
                execute_seconds: f64_at(16),
                latency_seconds: f64_at(24),
                cache_hit: buf[32] != 0,
                backend: buf[33],
                priority: priority_from_wire(buf[34]),
                deadline_slack_seconds: has_slack.then(|| f64_at(36)),
                shape,
            },
            WIRE_REPORT_BYTES,
        ))
    }
}

/// RESULT payload: [`WireReport`] followed by the product `CSRB` blob.
pub fn encode_result_payload(report: &WireReport, product: &CsrMatrix) -> Vec<u8> {
    let mut out = Vec::new();
    report.encode_into(&mut out);
    encode_csr_into(&mut out, product);
    out
}

/// Decodes a RESULT payload into the report and the product.
pub fn decode_result_payload(payload: &[u8]) -> Result<(WireReport, CsrMatrix), CsrCodecError> {
    let (report, used) = WireReport::decode(payload)
        .ok_or(CsrCodecError::Truncated { needed: WIRE_REPORT_BYTES, have: payload.len() })?;
    let (product, used2) = decode_csr(&payload[used..])?;
    if used + used2 != payload.len() {
        return Err(CsrCodecError::TrailingBytes(payload.len() - used - used2));
    }
    Ok((report, product))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn submit_frame() -> Frame {
        let a = CsrMatrix::identity(5);
        Frame {
            op: OpCode::Submit,
            priority: Priority::Low,
            flags: FLAG_NO_WAIT,
            request_id: 0xDEAD_BEEF_0042,
            deadline_ms: 1500,
            payload: encode_submit_payload(&a, &a),
        }
    }

    #[test]
    fn frame_round_trip() {
        let f = submit_frame();
        let bytes = f.encode();
        assert_eq!(bytes.len(), FRAME_HEADER_BYTES + f.payload.len());
        let back = read_frame(&mut Cursor::new(&bytes), 1 << 20).unwrap();
        assert_eq!(f, back);
        assert!(back.no_wait());
        let (lhs, rhs) = decode_submit_payload(&back.payload).unwrap();
        assert_eq!(lhs, CsrMatrix::identity(5));
        assert_eq!(rhs, CsrMatrix::identity(5));
    }

    #[test]
    fn control_frames_are_header_only() {
        let f = Frame::control(OpCode::Stats, 7);
        assert_eq!(f.encode().len(), FRAME_HEADER_BYTES);
        let back = read_frame(&mut Cursor::new(f.encode()), 0).unwrap();
        assert_eq!(back.op, OpCode::Stats);
        assert_eq!(back.request_id, 7);
        assert_eq!(back.deadline_ms, 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = submit_frame().encode();
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes), 1 << 20),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = submit_frame().encode();
        bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes), 1 << 20),
            Err(FrameError::UnsupportedVersion(7))
        ));
    }

    #[test]
    fn version_one_frames_are_still_accepted() {
        let mut bytes = submit_frame().encode();
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        let back = read_frame(&mut Cursor::new(bytes), 1 << 20).unwrap();
        assert_eq!(back.op, OpCode::Submit);
        assert_eq!(back.request_id, 0xDEAD_BEEF_0042);
    }

    #[test]
    fn unknown_op_is_rejected() {
        let mut bytes = submit_frame().encode();
        bytes[6] = 200;
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes), 1 << 20),
            Err(FrameError::UnknownOp(200))
        ));
    }

    #[test]
    fn oversized_payload_is_rejected_before_allocation() {
        let bytes = submit_frame().encode();
        let cap = 8;
        match read_frame(&mut Cursor::new(bytes), cap) {
            Err(FrameError::Oversized { len, max }) => {
                assert!(len > cap);
                assert_eq!(max, cap);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn short_read_is_an_io_error() {
        let bytes = submit_frame().encode();
        let cut = bytes.len() - 3;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes[..cut]), 1 << 20),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn submit_payload_rejects_trailing_bytes() {
        let a = CsrMatrix::identity(3);
        let mut p = encode_submit_payload(&a, &a);
        p.push(0);
        assert!(matches!(decode_submit_payload(&p), Err(CsrCodecError::TrailingBytes(1))));
    }

    #[test]
    fn shaped_submit_payload_round_trips_every_shape() {
        let a = CsrMatrix::identity(4);
        let mask = CsrMatrix::identity(4);
        for shape in [SubmitShape::Full, SubmitShape::TopK(3), SubmitShape::Masked(mask)] {
            let p = encode_submit_payload_shaped(&a, &a, &shape);
            let (lhs, rhs, back) = decode_submit_payload_shaped(&p).unwrap();
            assert_eq!(lhs, a);
            assert_eq!(rhs, a);
            assert_eq!(back, shape);
        }
    }

    #[test]
    fn full_shaped_payload_is_byte_identical_to_v1() {
        let a = CsrMatrix::identity(6);
        assert_eq!(
            encode_submit_payload(&a, &a),
            encode_submit_payload_shaped(&a, &a, &SubmitShape::Full)
        );
        // And a v1 payload decodes shaped as Full.
        let (_, _, shape) = decode_submit_payload_shaped(&encode_submit_payload(&a, &a)).unwrap();
        assert_eq!(shape, SubmitShape::Full);
    }

    #[test]
    fn shaped_submit_payload_rejects_malformed_blocks() {
        let a = CsrMatrix::identity(3);
        // Unknown tag.
        let mut p = encode_submit_payload(&a, &a);
        p.push(99);
        assert!(decode_submit_payload_shaped(&p).is_err());
        // Truncated top-k block.
        let mut p = encode_submit_payload(&a, &a);
        p.push(SHAPE_TAG_TOPK);
        p.extend_from_slice(&[0u8; 4]);
        assert!(decode_submit_payload_shaped(&p).is_err());
        // Trailing garbage after a complete top-k block.
        let mut p = encode_submit_payload_shaped(&a, &a, &SubmitShape::TopK(1));
        p.push(0);
        assert!(decode_submit_payload_shaped(&p).is_err());
        // Trailing garbage after a complete mask block.
        let mut p =
            encode_submit_payload_shaped(&a, &a, &SubmitShape::Masked(CsrMatrix::identity(3)));
        p.push(0);
        assert!(decode_submit_payload_shaped(&p).is_err());
        // The strict v1 decoder rejects any shape block.
        let p = encode_submit_payload_shaped(&a, &a, &SubmitShape::TopK(1));
        assert!(matches!(decode_submit_payload(&p), Err(CsrCodecError::TrailingBytes(9))));
    }

    #[test]
    fn submit_shape_maps_to_request_shape() {
        assert!(matches!(SubmitShape::Full.to_request_shape(), cw_service::RequestShape::Full));
        assert!(matches!(
            SubmitShape::TopK(5).to_request_shape(),
            cw_service::RequestShape::TopK(5)
        ));
        let m = CsrMatrix::identity(2);
        match SubmitShape::Masked(m.clone()).to_request_shape() {
            cw_service::RequestShape::Masked(mask) => assert_eq!(*mask, m),
            other => panic!("expected Masked, got {other:?}"),
        }
    }

    #[test]
    fn reject_payload_round_trip() {
        let p = encode_reject_payload(RejectCode::DeadlineExpired, "too late");
        let (code, msg) = decode_reject_payload(&p).unwrap();
        assert_eq!(code, RejectCode::DeadlineExpired);
        assert_eq!(msg, "too late");
        assert!(decode_reject_payload(&p[..3]).is_none());
        // Unknown codes degrade to Internal instead of failing.
        let mut future = encode_reject_payload(RejectCode::Busy, "x");
        future[0..2].copy_from_slice(&999u16.to_le_bytes());
        assert_eq!(decode_reject_payload(&future).unwrap().0, RejectCode::Internal);
    }

    #[test]
    fn wire_report_round_trip() {
        let r = WireReport {
            shard: 3,
            batch_size: 17,
            queue_seconds: 1.5e-3,
            execute_seconds: 2.25e-4,
            latency_seconds: 1.8e-3,
            cache_hit: true,
            backend: 1,
            priority: Priority::Low,
            deadline_slack_seconds: Some(-0.25),
            shape: OutputShape::TopK(12),
        };
        let mut buf = Vec::new();
        r.encode_into(&mut buf);
        assert_eq!(buf.len(), WIRE_REPORT_BYTES);
        let (back, used) = WireReport::decode(&buf).unwrap();
        assert_eq!(used, WIRE_REPORT_BYTES);
        assert_eq!(r, back);

        let none_slack = WireReport { deadline_slack_seconds: None, ..r };
        let mut buf = Vec::new();
        none_slack.encode_into(&mut buf);
        assert_eq!(WireReport::decode(&buf).unwrap().0.deadline_slack_seconds, None);
    }

    #[test]
    fn result_payload_round_trip() {
        let product = CsrMatrix::identity(9);
        let report = WireReport {
            shard: 0,
            batch_size: 1,
            queue_seconds: 0.0,
            execute_seconds: 0.0,
            latency_seconds: 0.0,
            cache_hit: false,
            backend: 0,
            priority: Priority::High,
            deadline_slack_seconds: None,
            shape: OutputShape::Full,
        };
        let p = encode_result_payload(&report, &product);
        let (r2, p2) = decode_result_payload(&p).unwrap();
        assert_eq!(report, r2);
        assert_eq!(product, p2);
        assert_eq!(r2.backend_id(), Some(cw_engine::BackendId::ALL[0]));
    }
}
