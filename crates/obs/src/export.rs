//! Exporters: a versioned JSON-lines trace/metrics document plus a
//! human-readable snapshot.
//!
//! The JSON-lines form follows the workspace's `calibrate::json` writer
//! conventions — hand-formatted strings, floats in Rust's shortest
//! round-trip (`{:?}`) form, strings escaped with the same table — so
//! `cw_engine::calibrate::json::parse` reads every line back. Layout:
//!
//! ```text
//! {"schema_version":1,"kind":"obs"}                 header, always first
//! {"kind":"trace","trace_id":N,"spans":[...]}       one line per trace
//! {"kind":"metrics","counters":{...},...}           one line, always last
//! ```
//!
//! Each span is `{"name":s,"start_ns":N,"end_ns":N,"depth":N}`; each
//! histogram is exported sparsely as
//! `{"count":N,"sum":x,"min":x,"max":x,"buckets":[[slot,count],...]}`.
//! Bump [`OBS_SCHEMA_VERSION`] on any layout change — the golden-file
//! test pins the current shape.

use std::fmt::Write as _;

use crate::flight::RequestTrace;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Version of the JSON-lines layout documented in this module.
pub const OBS_SCHEMA_VERSION: u32 = 1;

/// Escapes `s` for embedding in a JSON string literal (same table as
/// `cw_engine::calibrate::json::escape`; duplicated because `cw-obs`
/// deliberately depends on nothing).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_trace_line(out: &mut String, trace: &RequestTrace) {
    let _ = write!(out, "{{\"kind\":\"trace\",\"trace_id\":{},\"spans\":[", trace.trace_id);
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"depth\":{}}}",
            escape(s.name),
            s.start_ns,
            s.end_ns,
            s.depth
        );
    }
    out.push_str("]}\n");
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{:?},\"min\":{:?},\"max\":{:?},\"buckets\":[",
        h.count, h.sum, h.min, h.max
    );
    for (i, (slot, count)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{slot},{count}]");
    }
    out.push_str("]}");
}

fn write_metrics_line(out: &mut String, metrics: &MetricsSnapshot) {
    out.push_str("{\"kind\":\"metrics\",\"counters\":{");
    for (i, (name, v)) in metrics.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(name), v);
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in metrics.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(name), v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in metrics.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(name));
        write_histogram(out, h);
    }
    out.push_str("}}\n");
}

/// Render traces + metrics as the versioned JSON-lines document described
/// in the module docs. Every line is one standalone JSON object.
pub fn export_jsonl(traces: &[RequestTrace], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{\"schema_version\":{OBS_SCHEMA_VERSION},\"kind\":\"obs\"}}");
    for trace in traces {
        write_trace_line(&mut out, trace);
    }
    write_metrics_line(&mut out, metrics);
    out
}

/// Render traces + metrics as an indented, human-readable snapshot —
/// what `dump_flight_recorder` prints on shard panic and what the
/// example shows on screen.
pub fn render_human(traces: &[RequestTrace], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== obs snapshot (schema v{OBS_SCHEMA_VERSION}) ==");
    if !metrics.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &metrics.counters {
            let _ = writeln!(out, "  {name} = {v}");
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &metrics.gauges {
            let _ = writeln!(out, "  {name} = {v}");
        }
    }
    if !metrics.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &metrics.histograms {
            let _ = writeln!(
                out,
                "  {name}: count={} mean={:.3e} p50={:.3e} p99={:.3e} p999={:.3e} min={:.3e} max={:.3e}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.quantile(0.999),
                h.min,
                h.max
            );
        }
    }
    let _ = writeln!(out, "flight recorder: {} trace(s)", traces.len());
    for trace in traces {
        let _ = writeln!(
            out,
            "  trace {} ({} ns{})",
            trace.trace_id,
            trace.duration_ns(),
            if trace.root().is_none() { ", partial" } else { "" }
        );
        let mut spans = trace.spans.clone();
        spans.sort_by_key(|s| (s.start_ns, s.depth));
        for s in &spans {
            let _ = writeln!(
                out,
                "    {:indent$}{:<12} {:>12} ns .. {:>12} ns  ({} ns)",
                "",
                s.name,
                s.start_ns,
                s.end_ns,
                s.duration_ns(),
                indent = 2 * s.depth as usize
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::trace::SpanRecord;

    fn sample_trace() -> RequestTrace {
        RequestTrace {
            trace_id: 4711,
            spans: vec![
                SpanRecord { name: "queue", start_ns: 0, end_ns: 100, depth: 1 },
                SpanRecord { name: "serve", start_ns: 100, end_ns: 900, depth: 1 },
                SpanRecord { name: "request", start_ns: 0, end_ns: 1000, depth: 0 },
            ],
        }
    }

    #[test]
    fn jsonl_layout_is_stable() {
        let registry = MetricsRegistry::new();
        registry.counter("requests").add(3);
        registry.gauge("queue_depth").set(-1);
        let text = export_jsonl(&[sample_trace()], &registry.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"schema_version\":1,\"kind\":\"obs\"}");
        assert!(lines[1].starts_with("{\"kind\":\"trace\",\"trace_id\":4711,"));
        assert!(lines[1].contains("\"name\":\"queue\",\"start_ns\":0,\"end_ns\":100,\"depth\":1"));
        assert!(lines[2].starts_with("{\"kind\":\"metrics\","));
        assert!(lines[2].contains("\"requests\":3"));
        assert!(lines[2].contains("\"queue_depth\":-1"));
    }

    #[test]
    fn histogram_export_is_sparse() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("latency_s");
        h.record(0.001);
        h.record(0.001);
        let text = export_jsonl(&[], &registry.snapshot());
        let metrics_line = text.lines().last().unwrap();
        assert!(metrics_line.contains("\"latency_s\":{\"count\":2,"));
        // exactly one occupied bucket with both samples
        let snap = registry.snapshot();
        let hs = snap.histogram("latency_s").unwrap();
        assert_eq!(hs.nonzero_buckets(), vec![(hs.nonzero_buckets()[0].0, 2)]);
        assert!(metrics_line.contains(&format!("[{},2]", hs.nonzero_buckets()[0].0)));
    }

    #[test]
    fn human_render_mentions_everything() {
        let registry = MetricsRegistry::new();
        registry.counter("requests").inc();
        registry.histogram("latency_s").record(0.25);
        let text = render_human(&[sample_trace()], &registry.snapshot());
        for needle in
            ["obs snapshot", "requests = 1", "latency_s:", "trace 4711", "request", "serve"]
        {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
