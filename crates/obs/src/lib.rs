//! **cw-obs** — the observability substrate threaded through
//! plan → prepare → execute → serve.
//!
//! The paper's whole argument is a per-stage accounting exercise
//! (reordering cost vs. cluster-wise kernel savings), and the workspace
//! has repeatedly learned that it can only trust what it measures —
//! calibration exposed the vendored parallel path as *slower* than serial,
//! a fact no hand-tuned constant would have surfaced. This crate is the
//! telemetry layer that makes such facts routinely visible, designed for
//! the offline build container: **std only, no tokio, no external
//! crates**, and cheap enough to leave compiled into every hot path.
//!
//! Three pieces:
//!
//! * **Structured span tracing** ([`Tracer`], [`Span`]) — explicit RAII
//!   span guards over a thread-local depth stack, with monotonic
//!   nanosecond timestamps from one per-tracer origin. Disabled tracing
//!   costs one `AtomicBool` load per span site and performs **zero
//!   allocation**; enabling it at runtime flips the flag. Spans either
//!   attach to the current request trace (see [`Tracer::begin_trace`]) or
//!   land in a bounded ambient buffer. Retroactive recording
//!   ([`Tracer::record_span`]) lets callers that already measured a stage
//!   (queue waits, engine stage timings) emit spans whose durations
//!   reconcile *exactly* with their reports.
//! * **Mergeable metrics** ([`MetricsRegistry`], [`Counter`], [`Gauge`],
//!   [`LogHistogram`]) — named counters/gauges plus log-bucketed
//!   histograms whose snapshots merge exactly (bucket counts add), so
//!   per-shard histograms compose into service-wide p50/p99/p999 with a
//!   bounded relative quantile error (see [`LogHistogram`]).
//! * **Flight recorder** ([`FlightRecorder`], [`RequestTrace`]) — a
//!   fixed-capacity ring of recent completed request traces, dumpable on
//!   demand and on shard panic/shutdown.
//!
//! The [`export`] module renders everything as a versioned JSON-lines
//! document ([`export::OBS_SCHEMA_VERSION`]) plus a human-readable
//! snapshot; `cw_engine::calibrate::json` parses it back.
//!
//! ```
//! use cw_obs::{MetricsRegistry, Tracer};
//! use std::sync::Arc;
//!
//! let tracer = Arc::new(Tracer::new(16));
//! tracer.set_enabled(true);
//!
//! tracer.begin_trace(7);
//! {
//!     let _serve = tracer.span("serve");
//!     // ... nested work records child spans ...
//! }
//! let queue_start = 0;
//! tracer.record_span_at("queue", queue_start, tracer.now_ns(), 1);
//! tracer.end_trace(7, "request", queue_start);
//!
//! let trace = tracer.flight_traces().pop().unwrap();
//! assert_eq!(trace.trace_id, 7);
//! assert!(trace.span("serve").is_some() && trace.span("request").is_some());
//! assert!(trace.nests_correctly());
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("requests").inc();
//! registry.histogram("latency_s").record(0.004);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters[0], ("requests".to_string(), 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
mod flight;
mod metrics;
mod trace;

pub use flight::{FlightRecorder, RequestTrace};
pub use metrics::{
    Counter, Gauge, HistogramSnapshot, LogHistogram, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_MAX_RELATIVE_ERROR, SUB_BUCKETS_PER_OCTAVE,
};
pub use trace::{Span, SpanRecord, Tracer, AMBIENT_SPAN_CAPACITY};
