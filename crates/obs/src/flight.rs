//! The flight recorder: a bounded ring of recent completed request
//! traces, kept cheap enough to leave on in production and dumped on
//! demand or on shard panic/shutdown.

use std::collections::VecDeque;

use crate::trace::SpanRecord;

/// One request's complete trace: every span recorded between
/// `begin_trace` and `end_trace`, including the retroactive depth-0
/// `request` root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request id this trace belongs to.
    pub trace_id: u64,
    /// All recorded spans, in recording order (root last).
    pub spans: Vec<SpanRecord>,
}

impl RequestTrace {
    /// The first span named `name`, if any.
    pub fn span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The depth-0 root span, if the trace completed normally.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.depth == 0)
    }

    /// End-to-end duration in nanoseconds (0 for a partial trace with no
    /// root).
    pub fn duration_ns(&self) -> u64 {
        self.root().map_or(0, SpanRecord::duration_ns)
    }

    /// Structural validity check: exactly one depth-0 root, every span's
    /// interval is well-formed, and every span at depth `d + 1` is
    /// contained within some span at depth `d`.
    pub fn nests_correctly(&self) -> bool {
        let mut roots = 0usize;
        for s in &self.spans {
            if s.end_ns < s.start_ns {
                return false;
            }
            if s.depth == 0 {
                roots += 1;
            }
        }
        if roots != 1 {
            return false;
        }
        self.spans.iter().filter(|s| s.depth > 0).all(|s| {
            self.spans
                .iter()
                .any(|p| p.depth + 1 == s.depth && p.start_ns <= s.start_ns && s.end_ns <= p.end_ns)
        })
    }
}

/// A fixed-capacity ring of recent [`RequestTrace`]s. Pushing past
/// capacity evicts the oldest trace and bumps the eviction counter, so
/// memory stays bounded no matter how long the service runs.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<RequestTrace>,
    evicted: u64,
}

impl FlightRecorder {
    /// Default ring capacity when none is configured.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// A recorder keeping at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            evicted: 0,
        }
    }

    /// Append a completed trace, evicting the oldest if full.
    pub fn push(&mut self, trace: RequestTrace) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(trace);
    }

    /// The held traces, oldest first.
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.ring.iter().cloned().collect()
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no traces are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of traces evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start_ns: u64, end_ns: u64, depth: u32) -> SpanRecord {
        SpanRecord { name, start_ns, end_ns, depth }
    }

    #[test]
    fn nesting_check_accepts_a_well_formed_trace() {
        let tr = RequestTrace {
            trace_id: 1,
            spans: vec![
                span("queue", 0, 10, 1),
                span("coalesce", 10, 12, 1),
                span("serve", 12, 40, 1),
                span("plan", 13, 20, 2),
                span("execute", 20, 39, 2),
                span("request", 0, 41, 0),
            ],
        };
        assert!(tr.nests_correctly());
        assert_eq!(tr.duration_ns(), 41);
        assert_eq!(tr.root().unwrap().name, "request");
    }

    #[test]
    fn nesting_check_rejects_escapes_and_missing_roots() {
        // child escapes its parent's interval
        let escaped = RequestTrace {
            trace_id: 2,
            spans: vec![
                span("serve", 10, 20, 1),
                span("execute", 15, 25, 2),
                span("request", 0, 30, 0),
            ],
        };
        assert!(!escaped.nests_correctly());
        // two roots
        let two_roots = RequestTrace {
            trace_id: 3,
            spans: vec![span("request", 0, 10, 0), span("request", 0, 10, 0)],
        };
        assert!(!two_roots.nests_correctly());
        // no root (partial trace flushed by set_enabled(false))
        let partial = RequestTrace { trace_id: 4, spans: vec![span("queue", 0, 10, 1)] };
        assert!(!partial.nests_correctly());
        assert_eq!(partial.duration_ns(), 0);
    }

    #[test]
    fn zero_length_spans_nest() {
        // cache hits emit zero-length plan/prepare spans
        let tr = RequestTrace {
            trace_id: 5,
            spans: vec![
                span("serve", 10, 20, 1),
                span("plan", 12, 12, 2),
                span("request", 0, 25, 0),
            ],
        };
        assert!(tr.nests_correctly());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut fr = FlightRecorder::new(2);
        for id in 0..4 {
            fr.push(RequestTrace { trace_id: id, spans: Vec::new() });
        }
        assert_eq!(fr.len(), 2);
        assert_eq!(fr.capacity(), 2);
        assert_eq!(fr.evicted(), 2);
        let ids: Vec<u64> = fr.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, [2, 3]);
        assert!(!fr.is_empty());
    }
}
