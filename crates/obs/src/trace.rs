//! Structured span tracing with explicit RAII guards and a thread-local
//! depth stack.
//!
//! A [`Tracer`] hands out [`Span`] guards: creating one stamps a
//! monotonic start time and pushes one level of nesting on the current
//! thread; dropping it records a [`SpanRecord`]. Spans emitted between
//! [`Tracer::begin_trace`] and [`Tracer::end_trace`] attach to that
//! request's trace, which lands in the built-in flight recorder;
//! spans emitted outside any request go to a bounded *ambient* buffer.
//!
//! Stages that are already timed elsewhere (queue waits stamped by the
//! dispatcher, the engine's per-stage `StageTimings` measurements)
//! are recorded **retroactively** with [`Tracer::record_span`] /
//! [`Tracer::record_span_at`] from the same measured durations, so span
//! durations reconcile *exactly* with the numbers in
//! `ExecutionReport`/`ServiceReport`.
//!
//! Disabled tracing (the default) costs a single relaxed `AtomicBool`
//! load per call site and performs **zero allocation** — no `Arc` clone,
//! no mutex, no vec push.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::flight::{FlightRecorder, RequestTrace};

/// Maximum spans kept in the ambient (outside-any-request) buffer before
/// new ones are dropped.
pub const AMBIENT_SPAN_CAPACITY: usize = 1024;

thread_local! {
    /// Request trace the current thread is contributing spans to.
    static CURRENT_TRACE: Cell<Option<u64>> = const { Cell::new(None) };
    /// Nesting depth the *next* span created on this thread will get.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// One recorded span: a named `[start, end]` interval at a nesting depth,
/// in nanoseconds since the owning tracer's origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"queue"`, `"plan"`, `"execute"`).
    pub name: &'static str,
    /// Start, in nanoseconds since the tracer's origin.
    pub start_ns: u64,
    /// End, in nanoseconds since the tracer's origin.
    pub end_ns: u64,
    /// Nesting depth: the root `request` span is 0, its children 1, …
    pub depth: u32,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Span duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.duration_ns() as f64 / 1e9
    }
}

#[derive(Debug)]
struct TracerInner {
    /// Spans collected so far for each in-flight request trace.
    active: HashMap<u64, Vec<SpanRecord>>,
    flight: FlightRecorder,
    ambient: Vec<SpanRecord>,
    ambient_dropped: u64,
}

/// The span sink: an enable flag, a monotonic time origin, and the flight
/// recorder of completed request traces.
///
/// Cheap to share (`Arc<Tracer>`); all hot-path entry points early-return
/// on a relaxed atomic load while disabled.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    origin: Instant,
    inner: Mutex<TracerInner>,
}

fn lock(m: &Mutex<TracerInner>) -> MutexGuard<'_, TracerInner> {
    // The flight recorder is dumped from panic paths; recover from poison.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(FlightRecorder::DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// A disabled tracer whose flight recorder keeps the most recent
    /// `flight_capacity` completed request traces.
    pub fn new(flight_capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            origin: Instant::now(),
            inner: Mutex::new(TracerInner {
                active: HashMap::new(),
                flight: FlightRecorder::new(flight_capacity),
                ambient: Vec::new(),
                ambient_dropped: 0,
            }),
        }
    }

    /// Whether spans are currently being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off at runtime. Turning it *off* flushes any
    /// in-flight request traces into the flight recorder (marked by their
    /// missing root span) so nothing leaks in the active map.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        if !on {
            let mut inner = lock(&self.inner);
            let ids: Vec<u64> = inner.active.keys().copied().collect();
            for id in ids {
                if let Some(spans) = inner.active.remove(&id) {
                    inner.flight.push(RequestTrace { trace_id: id, spans });
                }
            }
        }
    }

    /// Nanoseconds elapsed since this tracer's origin.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Convert an externally captured [`Instant`] (e.g. a request's
    /// submission time) to nanoseconds on this tracer's clock.
    pub fn ns_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin).as_nanos() as u64
    }

    /// Open an explicit span guard. While the guard lives, spans created
    /// on this thread nest one level deeper; dropping it records the
    /// interval. When tracing is disabled this is a branch and an unarmed
    /// guard — no allocation, no lock, no `Arc` clone.
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.enabled() {
            return Span { armed: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Span { armed: Some(SpanArmed { tracer: self, name, start_ns: self.now_ns(), depth }) }
    }

    /// Start collecting spans for request `trace_id` on this thread.
    /// Spans recorded until [`Tracer::end_trace`] attach to it; nesting
    /// starts at depth 1 so the retroactive root recorded by `end_trace`
    /// is the only depth-0 span.
    pub fn begin_trace(&self, trace_id: u64) {
        if !self.enabled() {
            return;
        }
        CURRENT_TRACE.with(|c| c.set(Some(trace_id)));
        DEPTH.with(|d| d.set(1));
        lock(&self.inner).active.entry(trace_id).or_default();
    }

    /// Finish request `trace_id`: record its depth-0 root span
    /// (`root_name`, spanning `start_ns..now`) and move the completed
    /// trace into the flight recorder. Always clears this thread's trace
    /// context, even when tracing is disabled.
    pub fn end_trace(&self, trace_id: u64, root_name: &'static str, start_ns: u64) {
        CURRENT_TRACE.with(|c| c.set(None));
        DEPTH.with(|d| d.set(0));
        if !self.enabled() {
            return;
        }
        let end_ns = self.now_ns();
        let mut inner = lock(&self.inner);
        let mut spans = inner.active.remove(&trace_id).unwrap_or_default();
        spans.push(SpanRecord { name: root_name, start_ns, end_ns, depth: 0 });
        inner.flight.push(RequestTrace { trace_id, spans });
    }

    /// Retroactively record a span at the current thread's nesting depth,
    /// from timestamps the caller already measured. This is how stages
    /// timed elsewhere (queue waits, engine stage timings) become spans
    /// whose durations reconcile exactly with the reports.
    pub fn record_span(&self, name: &'static str, start_ns: u64, end_ns: u64) {
        if !self.enabled() {
            return;
        }
        let depth = DEPTH.with(Cell::get);
        self.record_span_at(name, start_ns, end_ns, depth);
    }

    /// Retroactively record a span at an explicit depth.
    pub fn record_span_at(&self, name: &'static str, start_ns: u64, end_ns: u64, depth: u32) {
        if !self.enabled() {
            return;
        }
        let record = SpanRecord { name, start_ns, end_ns: end_ns.max(start_ns), depth };
        let current = CURRENT_TRACE.with(Cell::get);
        let mut inner = lock(&self.inner);
        if let Some(id) = current {
            if let Some(spans) = inner.active.get_mut(&id) {
                spans.push(record);
                return;
            }
        }
        if inner.ambient.len() < AMBIENT_SPAN_CAPACITY {
            inner.ambient.push(record);
        } else {
            inner.ambient_dropped += 1;
        }
    }

    /// The completed request traces currently held by the flight
    /// recorder, oldest first.
    pub fn flight_traces(&self) -> Vec<RequestTrace> {
        lock(&self.inner).flight.traces()
    }

    /// Number of completed traces the flight recorder has evicted to
    /// stay within capacity.
    pub fn flight_evicted(&self) -> u64 {
        lock(&self.inner).flight.evicted()
    }

    /// Spans recorded outside any request trace (bounded at
    /// [`AMBIENT_SPAN_CAPACITY`]).
    pub fn ambient_spans(&self) -> Vec<SpanRecord> {
        lock(&self.inner).ambient.clone()
    }

    /// How many ambient spans were dropped because the buffer was full.
    pub fn ambient_dropped(&self) -> u64 {
        lock(&self.inner).ambient_dropped
    }
}

struct SpanArmed<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    start_ns: u64,
    depth: u32,
}

/// RAII span guard returned by [`Tracer::span`]. Records the interval on
/// drop; unarmed (free) when tracing was disabled at creation.
pub struct Span<'a> {
    armed: Option<SpanArmed<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.armed.take() {
            DEPTH.with(|d| d.set(s.depth));
            let end_ns = s.tracer.now_ns();
            s.tracer.record_span_at(s.name, s.start_ns, end_ns, s.depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        t.begin_trace(1);
        {
            let _s = t.span("serve");
        }
        t.record_span("queue", 0, 10);
        t.end_trace(1, "request", 0);
        assert!(t.flight_traces().is_empty());
        assert!(t.ambient_spans().is_empty());
    }

    #[test]
    fn guards_nest_and_land_in_the_flight_recorder() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        t.begin_trace(42);
        {
            let _serve = t.span("serve");
            {
                let _plan = t.span("plan");
            }
            {
                let _exec = t.span("execute");
            }
        }
        t.record_span_at("queue", 0, 5, 1);
        t.end_trace(42, "request", 0);

        let traces = t.flight_traces();
        assert_eq!(traces.len(), 1);
        let tr = &traces[0];
        assert_eq!(tr.trace_id, 42);
        assert_eq!(tr.span("request").unwrap().depth, 0);
        assert_eq!(tr.span("serve").unwrap().depth, 1);
        assert_eq!(tr.span("plan").unwrap().depth, 2);
        assert_eq!(tr.span("execute").unwrap().depth, 2);
        assert_eq!(tr.span("queue").unwrap().depth, 1);
        assert!(tr.nests_correctly(), "trace must nest: {tr:?}");
        // sibling guards are ordered
        let plan = tr.span("plan").unwrap();
        let exec = tr.span("execute").unwrap();
        assert!(plan.end_ns <= exec.start_ns);
    }

    #[test]
    fn retroactive_spans_reconcile_exactly() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        t.begin_trace(7);
        t.record_span("kernel", 1_000, 3_500);
        t.end_trace(7, "request", 500);
        let tr = &t.flight_traces()[0];
        let k = tr.span("kernel").unwrap();
        assert_eq!(k.duration_ns(), 2_500);
        assert!((k.duration_seconds() - 2.5e-6).abs() < 1e-15);
    }

    #[test]
    fn spans_outside_requests_go_ambient() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        {
            let _s = t.span("standalone");
        }
        assert!(t.flight_traces().is_empty());
        let ambient = t.ambient_spans();
        assert_eq!(ambient.len(), 1);
        assert_eq!(ambient[0].name, "standalone");
        assert_eq!(t.ambient_dropped(), 0);
    }

    #[test]
    fn disabling_flushes_in_flight_traces() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        t.begin_trace(9);
        t.record_span("queue", 0, 1);
        t.set_enabled(false);
        let traces = t.flight_traces();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].span("request").is_none()); // partial: no root
        t.end_trace(9, "request", 0); // cleans thread state, records nothing
        assert_eq!(t.flight_traces().len(), 1);
    }

    #[test]
    fn flight_recorder_is_bounded() {
        let t = Tracer::new(2);
        t.set_enabled(true);
        for id in 0..5 {
            t.begin_trace(id);
            t.end_trace(id, "request", 0);
        }
        let traces = t.flight_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].trace_id, 3);
        assert_eq!(traces[1].trace_id, 4);
        assert_eq!(t.flight_evicted(), 3);
    }

    #[test]
    fn traces_are_per_thread_but_share_one_recorder() {
        let t = Arc::new(Tracer::new(8));
        t.set_enabled(true);
        let mut handles = Vec::new();
        for id in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                t.begin_trace(id);
                {
                    let _s = t.span("serve");
                }
                t.end_trace(id, "request", 0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let traces = t.flight_traces();
        assert_eq!(traces.len(), 4);
        for tr in &traces {
            assert!(tr.nests_correctly());
        }
    }

    #[test]
    fn disabled_span_guard_is_cheap() {
        // Overhead guard (satellite): with tracing disabled a span site
        // must be a branch — no allocation, no locking. A generous per-op
        // bound catches accidental Arc clones / mutex grabs without
        // flaking on slow CI machines.
        let t = Tracer::new(8);
        let iters = 1_000_000u32;
        let start = Instant::now();
        for _ in 0..iters {
            let _s = t.span("hot");
        }
        let per_op = start.elapsed().as_nanos() as f64 / f64::from(iters);
        assert!(
            per_op < 200.0,
            "disabled span guard costs {per_op:.1} ns/op — expected branch-only"
        );
        assert!(t.ambient_spans().is_empty());
    }
}
