//! Named counters, gauges, and log-bucketed mergeable histograms.
//!
//! Everything here is lock-free on the hot path: counters and gauges are
//! single atomics, and a [`LogHistogram`] records into one of a fixed set
//! of atomic buckets. The registry itself ([`MetricsRegistry`]) takes a
//! mutex only on name lookup / snapshot, so callers cache the returned
//! `Arc` handles and never touch the map per event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of histogram sub-buckets per power-of-two octave.
///
/// Bucket boundaries grow geometrically by `γ = 2^(1/16) ≈ 1.044`, so a
/// value is bucketed with its neighbours within ±2.2% (see
/// [`HISTOGRAM_MAX_RELATIVE_ERROR`]).
pub const SUB_BUCKETS_PER_OCTAVE: usize = 16;

/// Worst-case relative error of a [`HistogramSnapshot::quantile`] estimate
/// versus the exact order statistic: the geometric midpoint of a bucket is
/// at most `2^(1/32) − 1 ≈ 2.2%` away from any value in that bucket.
pub const HISTOGRAM_MAX_RELATIVE_ERROR: f64 = 0.022;

/// Smallest resolvable magnitude: `2^MIN_EXP` seconds ≈ 0.93 ns.
const MIN_EXP: i32 = -30;
/// Largest resolvable magnitude: `2^MAX_EXP` seconds ≈ 4.5 hours.
const MAX_EXP: i32 = 14;
const LOG_BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUB_BUCKETS_PER_OCTAVE;
/// Total slots: index 0 is the underflow bucket (`v < 2^MIN_EXP`, including
/// zero), `1..=LOG_BUCKETS` are the geometric buckets, and the last slot is
/// the overflow bucket.
const SLOTS: usize = LOG_BUCKETS + 2;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Telemetry must stay readable after a worker panic (the flight
    // recorder is dumped from exactly that path), so recover from poison.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An atomic event counter.
///
/// Counters are monotonically increasing except for [`Counter::sub`],
/// which exists for the rare bookkeeping paths that retroactively
/// reclassify an event (e.g. the plan cache demoting a fingerprint hit to
/// a miss when the checksum collides).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrement by `n` (reclassification paths only; wraps if misused).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic signed gauge (a value that goes up *and* down: queue depth,
/// cached bytes, tracked operands).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is currently lower (running maximum).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Map a non-negative sample to its slot index.
fn bucket_index(v: f64) -> usize {
    if v <= 0.0 {
        return 0; // zero and negatives land in the underflow bucket
    }
    let l = v.log2();
    if l < f64::from(MIN_EXP) {
        return 0;
    }
    let i = ((l - f64::from(MIN_EXP)) * SUB_BUCKETS_PER_OCTAVE as f64) as usize;
    if i >= LOG_BUCKETS {
        SLOTS - 1
    } else {
        i + 1
    }
}

/// Representative (geometric midpoint) value of a slot, used when reading
/// quantiles back out. Underflow maps to the bottom of the range and
/// overflow to the top; callers clamp to the observed min/max anyway.
pub fn bucket_value(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    if index >= SLOTS - 1 {
        return f64::from(MAX_EXP).exp2();
    }
    let exp = f64::from(MIN_EXP) + (index as f64 - 0.5) / SUB_BUCKETS_PER_OCTAVE as f64;
    exp.exp2()
}

/// A log-bucketed histogram of non-negative samples (seconds, bytes,
/// batch sizes) with lock-free recording and *exactly mergeable*
/// snapshots.
///
/// Buckets are geometric with [`SUB_BUCKETS_PER_OCTAVE`] sub-buckets per
/// power of two, spanning `2^-30` (≈1 ns when recording seconds) to
/// `2^14` (≈4.5 h); values outside land in dedicated underflow/overflow
/// buckets. Because a merge is plain bucket-count addition, merging
/// per-shard snapshots is associative and gives *identical* quantiles to
/// recording the whole stream into one histogram — the property the
/// seeded `LatencyReservoir` could only approximate.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    // f64 bit patterns order like the floats themselves for non-negative
    // values, so fetch_min/fetch_max on the bits is exact.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one sample. Non-finite samples are ignored; negative ones
    /// clamp to zero (the underflow bucket).
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let v = v.max(0.0);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.min_bits.fetch_min(v.to_bits(), Ordering::Relaxed);
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An owned, mergeable snapshot of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// An owned histogram state: mergeable, queryable, exportable.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-slot sample counts (underflow, geometric buckets, overflow).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        Self { buckets: vec![0; SLOTS], count: 0, sum: 0.0, min: 0.0, max: 0.0 }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another snapshot into this one. Bucket counts add, so the
    /// merge is exact and associative: merging per-shard snapshots yields
    /// the same quantiles as one whole-stream histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        if other.count > 0 {
            self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`), accurate to
    /// [`HISTOGRAM_MAX_RELATIVE_ERROR`] and clamped to the observed
    /// `[min, max]`. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The non-empty buckets as `(slot index, count)` pairs — the sparse
    /// form used by the JSON-lines exporter.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }

    /// Rebuild a snapshot from the sparse exporter form.
    pub fn from_parts(parts: &[(usize, u64)], sum: f64, min: f64, max: f64) -> Self {
        let mut s = Self::empty();
        for &(i, c) in parts {
            if i < SLOTS {
                s.buckets[i] += c;
                s.count += c;
            }
        }
        s.sum = sum;
        s.min = min;
        s.max = max;
        s
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<LogHistogram>>,
}

/// A registry of named metrics.
///
/// Lookup (`counter`/`gauge`/`histogram`) takes a mutex and allocates the
/// metric on first sight; callers hold the returned `Arc` and record
/// through it lock-free. Existing atomics owned by other structs (e.g. the
/// plan cache's counters) can be *adopted* under a name with the `bind_*`
/// methods so legacy accessors and the registry observe the same cells.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = lock(&self.inner);
        Arc::clone(
            inner.counters.entry(name.to_string()).or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = lock(&self.inner);
        Arc::clone(inner.gauges.entry(name.to_string()).or_insert_with(|| Arc::new(Gauge::new())))
    }

    /// Get or create the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        let mut inner = lock(&self.inner);
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(LogHistogram::new())),
        )
    }

    /// Adopt an existing counter under `name` (replacing any previous
    /// binding), so external owners and the registry share one cell.
    pub fn bind_counter(&self, name: &str, counter: Arc<Counter>) {
        lock(&self.inner).counters.insert(name.to_string(), counter);
    }

    /// Adopt an existing gauge under `name`.
    pub fn bind_gauge(&self, name: &str, gauge: Arc<Gauge>) {
        lock(&self.inner).gauges.insert(name.to_string(), gauge);
    }

    /// Adopt an existing histogram under `name`.
    pub fn bind_histogram(&self, name: &str, histogram: Arc<LogHistogram>) {
        lock(&self.inner).histograms.insert(name.to_string(), histogram);
    }

    /// A point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock(&self.inner);
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// A point-in-time view of a [`MetricsRegistry`], sorted by name
/// (deterministic export order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (no external crates in cw-obs).
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.max(1);
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // top 53 bits → uniform in [0, 1)
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(5);
        c.sub(2);
        assert_eq!(c.get(), 4);
        let g = Gauge::new();
        g.set(10);
        g.add(3);
        g.sub(20);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn quantiles_match_exact_sort_within_bound() {
        let mut next = lcg(42);
        let h = LogHistogram::new();
        let mut exact: Vec<f64> = Vec::new();
        for _ in 0..10_000 {
            // log-uniform latencies from ~1 µs to ~1 s
            let v = 1e-6 * 1e6f64.powf(next());
            h.record(v);
            exact.push(v);
        }
        exact.sort_by(f64::total_cmp);
        let snap = h.snapshot();
        assert_eq!(snap.count, 10_000);
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let est = snap.quantile(q);
            let idx = ((q * exact.len() as f64).ceil() as usize).max(1) - 1;
            let truth = exact[idx];
            let rel = (est - truth).abs() / truth;
            assert!(rel <= 0.05, "q={q}: est {est} vs exact {truth} (rel err {rel})");
        }
        assert!((snap.mean() - exact.iter().sum::<f64>() / 1e4).abs() < 1e-9);
        assert_eq!(snap.min, *exact.first().unwrap());
        assert_eq!(snap.max, *exact.last().unwrap());
    }

    #[test]
    fn sharded_merge_equals_whole_stream() {
        let mut next = lcg(7);
        let whole = LogHistogram::new();
        let shards: Vec<LogHistogram> = (0..4).map(|_| LogHistogram::new()).collect();
        for i in 0..5_000 {
            let v = 1e-5 * 1e4f64.powf(next());
            whole.record(v);
            shards[i % 4].record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        for s in &shards {
            merged.merge(&s.snapshot());
        }
        let whole = whole.snapshot();
        assert_eq!(merged.buckets, whole.buckets);
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
        for &q in &[0.5, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), whole.quantile(q));
        }
        assert!((merged.sum - whole.sum).abs() < 1e-9 * whole.sum.abs().max(1.0));
    }

    #[test]
    fn merge_order_does_not_change_quantiles() {
        let mut next = lcg(99);
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let c = LogHistogram::new();
        for _ in 0..1_000 {
            a.record(next());
            b.record(10.0 * next());
            c.record(0.01 * next());
        }
        let (sa, sb, sc) = (a.snapshot(), b.snapshot(), c.snapshot());
        let mut abc = sa.clone();
        abc.merge(&sb);
        abc.merge(&sc);
        let mut cba = sc.clone();
        cba.merge(&sb);
        cba.merge(&sa);
        assert_eq!(abc.buckets, cba.buckets);
        assert_eq!(abc.quantile(0.5), cba.quantile(0.5));
        assert_eq!(abc.quantile(0.999), cba.quantile(0.999));
    }

    #[test]
    fn edge_samples_land_in_sentinel_buckets() {
        let h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0); // clamps to zero
        h.record(1e-12); // below 2^-30
        h.record(1e9); // above 2^14
        h.record(f64::NAN); // ignored
        h.record(f64::INFINITY); // ignored
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 3);
        assert_eq!(*s.buckets.last().unwrap(), 1);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1e9);
        // quantiles stay inside the observed range even for sentinels
        assert!(s.quantile(0.999) <= s.max);
    }

    #[test]
    fn sparse_round_trip_preserves_quantiles() {
        let mut next = lcg(3);
        let h = LogHistogram::new();
        for _ in 0..2_000 {
            h.record(1e-4 * 100f64.powf(next()));
        }
        let s = h.snapshot();
        let rebuilt = HistogramSnapshot::from_parts(&s.nonzero_buckets(), s.sum, s.min, s.max);
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn registry_get_or_create_and_bind() {
        let r = MetricsRegistry::new();
        r.counter("a").add(2);
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 3);
        let external = Arc::new(Counter::new());
        external.add(41);
        r.bind_counter("b", Arc::clone(&external));
        external.inc();
        r.gauge("depth").set(5);
        r.histogram("lat").record(0.25);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.counter("b"), Some(42));
        assert_eq!(snap.gauge("depth"), Some(5));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        // BTreeMap ⇒ sorted, deterministic order
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
