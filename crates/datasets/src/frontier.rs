//! BC BFS-frontier generation — the tall-skinny `B` matrices of §4.4.
//!
//! Betweenness centrality runs many simultaneous BFS traversals; expressed
//! in matrix algebra, iteration `i` multiplies the adjacency matrix by a
//! *frontier matrix* `F_i` whose column `j` marks the vertices at BFS level
//! `i` from source `j`. The paper takes the first 10 forward frontiers
//! produced by CombBLAS; this module reproduces them with a batched BFS.

use cw_sparse::{CooMatrix, CsrMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates the first `max_iters` BFS frontier matrices of a batched BFS
/// from `sources` random sources over the graph of `a` (pattern, directed
/// as stored). Each returned matrix is `n × sources`; entry `(v, j) = 1`
/// iff vertex `v` is at level `i` of source `j`'s BFS.
///
/// Frontiers stop early (fewer than `max_iters` matrices) once every BFS is
/// exhausted. `F_0` (the sources themselves) is *not* returned — the first
/// returned matrix is the level-1 frontier, matching "forward frontier"
/// counting.
pub fn bc_frontiers(a: &CsrMatrix, sources: usize, max_iters: usize, seed: u64) -> Vec<CsrMatrix> {
    assert_eq!(a.nrows, a.ncols, "BC frontiers need a square adjacency matrix");
    let n = a.nrows;
    let sources = sources.min(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Sample distinct sources.
    let mut pool: Vec<u32> = (0..n as u32).collect();
    for i in 0..sources {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    let srcs = &pool[..sources];

    // visited[j] bitset per source; frontier as per-source vertex lists.
    let mut visited: Vec<Vec<bool>> = vec![vec![false; n]; sources];
    let mut frontier: Vec<Vec<u32>> = Vec::with_capacity(sources);
    for (j, &s) in srcs.iter().enumerate() {
        visited[j][s as usize] = true;
        frontier.push(vec![s]);
    }

    let mut result = Vec::with_capacity(max_iters);
    for _iter in 0..max_iters {
        // Advance every source's frontier one level.
        let mut next: Vec<Vec<u32>> = vec![Vec::new(); sources];
        let mut total = 0usize;
        for j in 0..sources {
            for &v in &frontier[j] {
                for &u in a.row_cols(v as usize) {
                    let u = u as usize;
                    if !visited[j][u] {
                        visited[j][u] = true;
                        next[j].push(u as u32);
                    }
                }
            }
            next[j].sort_unstable();
            total += next[j].len();
        }
        if total == 0 {
            break;
        }
        // Assemble the n × sources frontier matrix.
        let mut coo = CooMatrix::with_capacity(n, sources, total);
        for (j, level) in next.iter().enumerate() {
            for &v in level {
                coo.push(v as usize, j, 1.0);
            }
        }
        result.push(coo.to_csr());
        frontier = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::grid::poisson2d;
    use cw_sparse::gen::rmat::{rmat, RmatParams};

    #[test]
    fn frontier_shapes_and_disjointness() {
        let a = poisson2d(12, 12);
        let fs = bc_frontiers(&a, 8, 10, 1);
        assert!(!fs.is_empty());
        for f in &fs {
            assert_eq!(f.nrows, 144);
            assert_eq!(f.ncols, 8);
            f.validate().unwrap();
        }
        // A vertex appears at most once per source across all frontiers.
        let mut seen = vec![vec![false; 8]; 144];
        for f in &fs {
            for (v, j, _) in f.iter() {
                assert!(!seen[v][j], "vertex {v} revisited for source {j}");
                seen[v][j] = true;
            }
        }
    }

    #[test]
    fn first_frontier_is_neighbors_of_sources() {
        let a = poisson2d(5, 5);
        let fs = bc_frontiers(&a, 1, 3, 7);
        let f1 = &fs[0];
        // Level-1 frontier of the single source: its stencil neighbors
        // (diagonal entry keeps the source itself visited, not re-added).
        let col_nnz = f1.nnz();
        assert!((2..=4).contains(&col_nnz), "level-1 size {col_nnz}");
    }

    #[test]
    fn grid_bfs_levels_grow_then_shrink() {
        let a = poisson2d(16, 16);
        let fs = bc_frontiers(&a, 1, 30, 3);
        let sizes: Vec<usize> = fs.iter().map(|f| f.nnz()).collect();
        // Diamond-shaped BFS wave: grows to a peak then shrinks.
        let peak = sizes.iter().copied().max().unwrap();
        let peak_pos = sizes.iter().position(|&s| s == peak).unwrap();
        assert!(peak_pos > 0 && peak_pos < sizes.len() - 1, "sizes {sizes:?}");
        // Total visited = all reachable vertices (level 0 excluded).
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 256 - 1);
    }

    #[test]
    fn powerlaw_bfs_exhausts_quickly() {
        let a = rmat(9, 8, RmatParams::default(), 5);
        let fs = bc_frontiers(&a, 4, 10, 2);
        // Small-world graphs have tiny diameters: far fewer than 10 levels.
        assert!(fs.len() < 10, "{} levels", fs.len());
    }

    #[test]
    fn deterministic() {
        let a = poisson2d(8, 8);
        let f1 = bc_frontiers(&a, 4, 5, 9);
        let f2 = bc_frontiers(&a, 4, 5, 9);
        assert_eq!(f1.len(), f2.len());
        for (x, y) in f1.iter().zip(&f2) {
            assert!(x.approx_eq(y, 0.0));
        }
    }
}
