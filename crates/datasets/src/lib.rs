//! The evaluation corpus: 110 synthetic matrices mirroring the structural
//! families of the paper's SuiteSparse selection (§4.1), the ten
//! "representative" datasets of Figs. 8–9, the tall-skinny suite of
//! Tables 3–4, and the BC BFS-frontier workload generator.
//!
//! The paper selects real matrices with >8M nonzeros; those inputs are not
//! redistributable, so every dataset here is generated (seeded,
//! deterministic) with the structural property that drives its family's
//! behaviour under reordering and clustering — see `cw_sparse::gen` for the
//! family ↔ generator mapping, and DESIGN.md §3 for the substitution
//! rationale. Sizes scale with [`Scale`] so the full corpus stays runnable
//! on a laptop (`Small`) or stresses bigger footprints (`Large`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frontier;

use cw_sparse::gen::{
    banded::{banded, block_diagonal, grouped_rows},
    er::erdos_renyi,
    grid::{anisotropic2d, grid4d, poisson2d, poisson3d, stencil9},
    kkt::kkt,
    mesh::{patched_mesh, tri_mesh},
    rmat::{rmat, RmatParams},
    road::road,
};
use cw_sparse::CsrMatrix;

/// Corpus sizing. `Small` keeps the full 110-matrix × 12-ordering sweep in
/// CI territory; `Medium`/`Large` grow linear dimensions ~2×/~4×.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// ~1–6k rows per matrix.
    #[default]
    Small,
    /// ~4–25k rows per matrix.
    Medium,
    /// ~16–100k rows per matrix.
    Large,
}

impl Scale {
    /// Linear-dimension multiplier.
    pub fn factor(&self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Medium => 2,
            Scale::Large => 4,
        }
    }

    /// Parses `"small" | "medium" | "large"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" | "s" => Some(Scale::Small),
            "medium" | "m" => Some(Scale::Medium),
            "large" | "l" => Some(Scale::Large),
            _ => None,
        }
    }
}

/// Structural family of a dataset (mirrors the SuiteSparse groups the paper
/// draws from).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Triangulated / patched 2D surface meshes (DIMACS10-style).
    Mesh2d,
    /// 3D volume stencils.
    Mesh3d,
    /// 4D lattice (QCD-style).
    Lattice,
    /// Power-law graphs (SNAP-style).
    PowerLaw,
    /// Road networks.
    Road,
    /// Banded chemistry/circuit matrices.
    Banded,
    /// Dense diagonal-block matrices.
    BlockDiag,
    /// Supernodal / grouped-row structure.
    GroupedRows,
    /// KKT saddle-point systems.
    Kkt,
    /// Unstructured uniform random.
    Random,
}

/// A named, reproducible matrix recipe.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Unique name (paper-analogue names for the representative ten).
    pub name: &'static str,
    /// Structural family.
    pub category: Category,
    /// Generator index (internal dispatch).
    spec: Spec,
}

#[derive(Debug, Clone, Copy)]
enum Spec {
    TriMesh { nx: usize, ny: usize, seed: u64 },
    PatchedMesh { nx: usize, ny: usize, patches: usize, seed: u64 },
    Poisson2d { nx: usize, ny: usize },
    Stencil9 { nx: usize, ny: usize },
    Poisson3d { n: usize },
    Aniso2d { nx: usize, ny: usize, seed: u64 },
    Grid4d { dim: usize },
    Rmat { scale_exp: u32, ef: usize, a: f64, seed: u64 },
    Road { nx: usize, ny: usize, keep: f64, shortcuts: usize, seed: u64 },
    Banded { n: usize, bw: usize, fill: f64, seed: u64 },
    BlockDiag { n: usize, lo: usize, hi: usize, bridge: f64, seed: u64 },
    Grouped { n: usize, group: usize, nnz: usize, seed: u64 },
    Kkt { nv: usize, nc: usize, band: usize, g: usize, seed: u64 },
    Er { n: usize, deg: usize, seed: u64 },
}

impl Dataset {
    /// Builds the matrix at the requested scale. Deterministic.
    pub fn build(&self, scale: Scale) -> CsrMatrix {
        let f = scale.factor();
        match self.spec {
            Spec::TriMesh { nx, ny, seed } => tri_mesh(nx * f, ny * f, true, seed),
            Spec::PatchedMesh { nx, ny, patches, seed } => {
                patched_mesh(nx * f, ny * f, patches, seed)
            }
            Spec::Poisson2d { nx, ny } => poisson2d(nx * f, ny * f),
            Spec::Stencil9 { nx, ny } => stencil9(nx * f, ny * f),
            Spec::Poisson3d { n } => {
                // Scale 3D dims by cbrt-ish growth to keep nnz comparable.
                let g = match scale {
                    Scale::Small => n,
                    Scale::Medium => n + n / 3,
                    Scale::Large => n * 2,
                };
                poisson3d(g, g, g)
            }
            Spec::Aniso2d { nx, ny, seed } => anisotropic2d(nx * f, ny * f, seed),
            Spec::Grid4d { dim } => {
                let g = match scale {
                    Scale::Small => dim,
                    Scale::Medium => dim + 1,
                    Scale::Large => dim + 3,
                };
                grid4d(g)
            }
            Spec::Rmat { scale_exp, ef, a, seed } => {
                let extra = match scale {
                    Scale::Small => 0,
                    Scale::Medium => 1,
                    Scale::Large => 2,
                };
                let rest = (1.0 - a) / 3.0;
                rmat(scale_exp + extra, ef, RmatParams { a, b: rest, c: rest }, seed)
            }
            Spec::Road { nx, ny, keep, shortcuts, seed } => {
                road(nx * f, ny * f, keep, shortcuts, seed)
            }
            Spec::Banded { n, bw, fill, seed } => banded(n * f * f, bw, fill, seed),
            Spec::BlockDiag { n, lo, hi, bridge, seed } => {
                block_diagonal(n * f * f, (lo, hi), bridge, seed)
            }
            Spec::Grouped { n, group, nnz, seed } => grouped_rows(n * f * f, group, nnz, seed),
            Spec::Kkt { nv, nc, band, g, seed } => kkt(nv * f * f, nc * f * f, band, g, seed),
            Spec::Er { n, deg, seed } => erdos_renyi(n * f * f, deg, seed),
        }
    }
}

/// The ten representative datasets of paper Figs. 8–9, mapped to synthetic
/// analogues of the same structural families:
///
/// | paper | here | family |
/// |---|---|---|
/// | cage12 (DNA electrophoresis) | `cage12-like` | banded |
/// | poisson3Da | `poi3D-like` | 3D stencil |
/// | conf5_4-8x8-05 (lattice QCD) | `conf5-like` | 4D torus stencil |
/// | pdb1HYS (protein) | `pdb1-like` | dense blocks |
/// | rma10 (3D CFD) | `rma10-like` | irregular mesh |
/// | webbase-1M | `wb-like` | power-law |
/// | AS365 (helicopter mesh) | `AS365-like` | patched 2D mesh |
/// | hugetric | `huget-like` | large triangulation |
/// | M6 | `M6-like` | triangulation |
/// | NLR | `NLR-like` | triangulation |
pub fn representative(_scale: Scale) -> Vec<Dataset> {
    vec![
        Dataset {
            name: "cage12-like",
            category: Category::Banded,
            spec: Spec::Banded { n: 1600, bw: 12, fill: 0.45, seed: 12 },
        },
        Dataset { name: "poi3D-like", category: Category::Mesh3d, spec: Spec::Poisson3d { n: 13 } },
        Dataset { name: "conf5-like", category: Category::Lattice, spec: Spec::Grid4d { dim: 7 } },
        Dataset {
            name: "pdb1-like",
            category: Category::BlockDiag,
            spec: Spec::BlockDiag { n: 1500, lo: 6, hi: 8, bridge: 0.02, seed: 36 },
        },
        Dataset {
            name: "rma10-like",
            category: Category::Mesh2d,
            spec: Spec::Aniso2d { nx: 48, ny: 40, seed: 7 },
        },
        Dataset {
            name: "wb-like",
            category: Category::PowerLaw,
            spec: Spec::Rmat { scale_exp: 11, ef: 6, a: 0.6, seed: 8 },
        },
        Dataset {
            name: "AS365-like",
            category: Category::Mesh2d,
            spec: Spec::PatchedMesh { nx: 24, ny: 20, patches: 4, seed: 365 },
        },
        Dataset {
            name: "huget-like",
            category: Category::Mesh2d,
            spec: Spec::TriMesh { nx: 52, ny: 48, seed: 17 },
        },
        Dataset {
            name: "M6-like",
            category: Category::Mesh2d,
            spec: Spec::TriMesh { nx: 48, ny: 44, seed: 6 },
        },
        Dataset {
            name: "NLR-like",
            category: Category::Mesh2d,
            spec: Spec::TriMesh { nx: 60, ny: 36, seed: 11 },
        },
    ]
}

/// The tall-skinny evaluation suite of paper Tables 3–4 (names map to the
/// same families as [`representative`]).
pub fn tall_skinny_suite(_scale: Scale) -> Vec<Dataset> {
    vec![
        Dataset {
            name: "webbase-like",
            category: Category::PowerLaw,
            spec: Spec::Rmat { scale_exp: 11, ef: 5, a: 0.62, seed: 21 },
        },
        Dataset {
            name: "patents-like",
            category: Category::PowerLaw,
            spec: Spec::Rmat { scale_exp: 11, ef: 4, a: 0.45, seed: 22 },
        },
        Dataset {
            name: "AS365-like",
            category: Category::Mesh2d,
            spec: Spec::PatchedMesh { nx: 24, ny: 20, patches: 4, seed: 365 },
        },
        Dataset {
            name: "LiveJournal-like",
            category: Category::PowerLaw,
            spec: Spec::Rmat { scale_exp: 11, ef: 8, a: 0.57, seed: 23 },
        },
        Dataset {
            name: "europe-osm-like",
            category: Category::Road,
            spec: Spec::Road { nx: 50, ny: 44, keep: 0.92, shortcuts: 3, seed: 24 },
        },
        Dataset {
            name: "GAP-road-like",
            category: Category::Road,
            spec: Spec::Road { nx: 48, ny: 48, keep: 0.88, shortcuts: 6, seed: 25 },
        },
        Dataset {
            name: "kkt-power-like",
            category: Category::Kkt,
            spec: Spec::Kkt { nv: 1700, nc: 500, band: 3, g: 3, seed: 26 },
        },
        Dataset {
            name: "M6-like",
            category: Category::Mesh2d,
            spec: Spec::TriMesh { nx: 48, ny: 44, seed: 6 },
        },
        Dataset {
            name: "NLR-like",
            category: Category::Mesh2d,
            spec: Spec::TriMesh { nx: 60, ny: 36, seed: 11 },
        },
        Dataset {
            name: "wikipedia-like",
            category: Category::PowerLaw,
            spec: Spec::Rmat { scale_exp: 11, ef: 7, a: 0.55, seed: 27 },
        },
    ]
}

/// The full 110-matrix corpus: the representative ten plus 100 additional
/// recipes spread across the families, echoing the paper's distribution
/// (many DIMACS10 meshes and SNAP graphs, fewer of the niche families).
pub fn corpus(scale: Scale) -> Vec<Dataset> {
    let mut v = representative(scale);
    // --- 2D meshes: 16 (DIMACS10 is the paper's biggest group) ---
    static MESH_NAMES: [&str; 16] = [
        "mesh2d-00",
        "mesh2d-01",
        "mesh2d-02",
        "mesh2d-03",
        "mesh2d-04",
        "mesh2d-05",
        "mesh2d-06",
        "mesh2d-07",
        "mesh2d-08",
        "mesh2d-09",
        "mesh2d-10",
        "mesh2d-11",
        "mesh2d-12",
        "mesh2d-13",
        "mesh2d-14",
        "mesh2d-15",
    ];
    for (i, name) in MESH_NAMES.iter().enumerate() {
        let nx = 30 + 4 * (i % 7);
        let ny = 28 + 3 * (i % 5);
        v.push(Dataset {
            name,
            category: Category::Mesh2d,
            spec: Spec::TriMesh { nx, ny, seed: 100 + i as u64 },
        });
    }
    // --- natural-order stencils: 12 (well-ordered inputs where reordering
    //     should NOT help much) ---
    static STENCIL_NAMES: [&str; 12] = [
        "poisson2d-00",
        "poisson2d-01",
        "poisson2d-02",
        "poisson2d-03",
        "stencil9-00",
        "stencil9-01",
        "stencil9-02",
        "stencil9-03",
        "poisson3d-00",
        "poisson3d-01",
        "poisson3d-02",
        "poisson3d-03",
    ];
    for (i, name) in STENCIL_NAMES.iter().enumerate() {
        let spec = match i / 4 {
            0 => Spec::Poisson2d { nx: 40 + 6 * (i % 4), ny: 36 + 4 * (i % 4) },
            1 => Spec::Stencil9 { nx: 36 + 5 * (i % 4), ny: 32 + 5 * (i % 4) },
            _ => Spec::Poisson3d { n: 11 + (i % 4) },
        };
        let category = if i / 4 == 2 { Category::Mesh3d } else { Category::Mesh2d };
        v.push(Dataset { name, category, spec });
    }
    // --- power-law graphs: 16 (SNAP) ---
    static RMAT_NAMES: [&str; 16] = [
        "rmat-00", "rmat-01", "rmat-02", "rmat-03", "rmat-04", "rmat-05", "rmat-06", "rmat-07",
        "rmat-08", "rmat-09", "rmat-10", "rmat-11", "rmat-12", "rmat-13", "rmat-14", "rmat-15",
    ];
    for (i, name) in RMAT_NAMES.iter().enumerate() {
        v.push(Dataset {
            name,
            category: Category::PowerLaw,
            spec: Spec::Rmat {
                scale_exp: 10 + (i % 2) as u32,
                ef: 4 + i % 6,
                a: 0.45 + 0.02 * (i % 8) as f64,
                seed: 200 + i as u64,
            },
        });
    }
    // --- road networks: 10 ---
    static ROAD_NAMES: [&str; 10] = [
        "road-00", "road-01", "road-02", "road-03", "road-04", "road-05", "road-06", "road-07",
        "road-08", "road-09",
    ];
    for (i, name) in ROAD_NAMES.iter().enumerate() {
        v.push(Dataset {
            name,
            category: Category::Road,
            spec: Spec::Road {
                nx: 40 + 3 * (i % 5),
                ny: 38 + 2 * (i % 7),
                keep: 0.85 + 0.02 * (i % 6) as f64,
                shortcuts: 2 + i % 6,
                seed: 300 + i as u64,
            },
        });
    }
    // --- banded: 10 ---
    static BAND_NAMES: [&str; 10] = [
        "banded-00",
        "banded-01",
        "banded-02",
        "banded-03",
        "banded-04",
        "banded-05",
        "banded-06",
        "banded-07",
        "banded-08",
        "banded-09",
    ];
    for (i, name) in BAND_NAMES.iter().enumerate() {
        v.push(Dataset {
            name,
            category: Category::Banded,
            spec: Spec::Banded {
                n: 1200 + 150 * (i % 4),
                bw: 6 + 3 * (i % 4),
                fill: 0.35 + 0.12 * (i % 5) as f64,
                seed: 400 + i as u64,
            },
        });
    }
    // --- dense block diagonals: 12 (the fixed-length clustering sweet spot) ---
    static BLOCK_NAMES: [&str; 12] = [
        "blocks-00",
        "blocks-01",
        "blocks-02",
        "blocks-03",
        "blocks-04",
        "blocks-05",
        "blocks-06",
        "blocks-07",
        "blocks-08",
        "blocks-09",
        "blocks-10",
        "blocks-11",
    ];
    for (i, name) in BLOCK_NAMES.iter().enumerate() {
        v.push(Dataset {
            name,
            category: Category::BlockDiag,
            spec: Spec::BlockDiag {
                n: 1100 + 130 * (i % 5),
                lo: 2 + i % 4,
                hi: 5 + i % 4,
                bridge: 0.01 * (i % 4) as f64,
                seed: 500 + i as u64,
            },
        });
    }
    // --- grouped rows (supernodal): 10 ---
    static GROUP_NAMES: [&str; 10] = [
        "grouped-00",
        "grouped-01",
        "grouped-02",
        "grouped-03",
        "grouped-04",
        "grouped-05",
        "grouped-06",
        "grouped-07",
        "grouped-08",
        "grouped-09",
    ];
    for (i, name) in GROUP_NAMES.iter().enumerate() {
        v.push(Dataset {
            name,
            category: Category::GroupedRows,
            spec: Spec::Grouped {
                n: 1300 + 140 * (i % 4),
                group: 3 + i % 6,
                nnz: 6 + i % 8,
                seed: 600 + i as u64,
            },
        });
    }
    // --- KKT systems: 8 ---
    static KKT_NAMES: [&str; 8] =
        ["kkt-00", "kkt-01", "kkt-02", "kkt-03", "kkt-04", "kkt-05", "kkt-06", "kkt-07"];
    for (i, name) in KKT_NAMES.iter().enumerate() {
        v.push(Dataset {
            name,
            category: Category::Kkt,
            spec: Spec::Kkt {
                nv: 1200 + 160 * (i % 4),
                nc: 320 + 60 * (i % 4),
                band: 2 + i % 3,
                g: 2 + i % 4,
                seed: 700 + i as u64,
            },
        });
    }
    // --- unstructured random: 6 (reordering-resistant control group) ---
    static ER_NAMES: [&str; 6] = ["er-00", "er-01", "er-02", "er-03", "er-04", "er-05"];
    for (i, name) in ER_NAMES.iter().enumerate() {
        v.push(Dataset {
            name,
            category: Category::Random,
            spec: Spec::Er { n: 1300 + 170 * (i % 3), deg: 5 + i % 5, seed: 800 + i as u64 },
        });
    }
    assert_eq!(v.len(), 110, "corpus must contain exactly 110 datasets");
    v
}

/// An SpGEMM workload (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Square the matrix: `A²`.
    ASquared,
    /// Multiply by BC BFS-frontier matrices: `A × F_i` for `i = 1..iters`.
    TallSkinny {
        /// Number of BFS sources (columns of each frontier).
        sources: usize,
        /// Number of frontier iterations to keep.
        iters: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn corpus_has_110_unique_names() {
        let c = corpus(Scale::Small);
        assert_eq!(c.len(), 110);
        let names: HashSet<&str> = c.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 110, "duplicate dataset names");
    }

    #[test]
    fn corpus_covers_all_categories() {
        let c = corpus(Scale::Small);
        let cats: HashSet<_> = c.iter().map(|d| d.category).collect();
        assert!(cats.len() >= 9, "only {} categories", cats.len());
    }

    #[test]
    fn representative_ten_build_and_are_square() {
        for d in representative(Scale::Small) {
            let a = d.build(Scale::Small);
            assert_eq!(a.nrows, a.ncols, "{}", d.name);
            assert!(a.nnz() > 1000, "{} too small: {} nnz", d.name, a.nnz());
            a.validate().unwrap();
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let d = &corpus(Scale::Small)[20];
        let a = d.build(Scale::Small);
        let b = d.build(Scale::Small);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn scale_grows_matrices() {
        let d = &representative(Scale::Small)[8]; // M6-like
        let s = d.build(Scale::Small);
        let m = d.build(Scale::Medium);
        assert!(m.nrows >= 3 * s.nrows, "{} -> {}", s.nrows, m.nrows);
    }

    #[test]
    fn tall_skinny_suite_has_ten() {
        let suite = tall_skinny_suite(Scale::Small);
        assert_eq!(suite.len(), 10);
        for d in suite {
            let a = d.build(Scale::Small);
            assert_eq!(a.nrows, a.ncols);
        }
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("M"), Some(Scale::Medium));
        assert_eq!(Scale::parse("Large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }
}
