//! Gray-code ordering (Zhao et al., ICCD 2020).
//!
//! Each row is summarized by a bitmask over column blocks; rows are sorted
//! so that consecutive signatures follow the binary-reflected Gray sequence,
//! meaning adjacent rows differ in as few blocks as possible. Following the
//! paper, rows are first split into a *dense* and a *sparse* group (dense
//! rows are ordered first) so that heavyweight rows don't interleave with
//! light ones.

use cw_sparse::{CsrMatrix, Permutation};

/// Number of column blocks used for the signature (one bit each).
const SIG_BITS: usize = 64;

/// Decodes a binary-reflected Gray code to its rank in the Gray sequence.
///
/// Sorting masks by `gray_rank(mask)` lists them in Gray-code order, where
/// consecutive entries differ by one bit.
#[inline]
pub fn gray_rank(gray: u64) -> u64 {
    let mut b = gray;
    let mut shift = 1;
    while shift < 64 {
        b ^= b >> shift;
        shift <<= 1;
    }
    b
}

/// Bitmask signature of a row: bit `k` set iff the row has a nonzero in
/// column block `k` (blocks partition `0..ncols` evenly into [`SIG_BITS`]).
fn signature(a: &CsrMatrix, row: usize) -> u64 {
    let ncols = a.ncols.max(1);
    let mut sig = 0u64;
    for &c in a.row_cols(row) {
        let block = (c as usize * SIG_BITS) / ncols;
        sig |= 1u64 << block.min(SIG_BITS - 1);
    }
    sig
}

/// Computes the Gray-code row ordering.
pub fn gray_order(a: &CsrMatrix) -> Permutation {
    let n = a.nrows;
    // Dense/sparse split at 4x the mean row density (paper: "splitting
    // sparse and dense rows").
    let avg = if n == 0 { 0.0 } else { a.nnz() as f64 / n as f64 };
    let dense_threshold = (4.0 * avg).max(1.0) as usize;
    let mut keyed: Vec<(bool, u64, u32)> = (0..n)
        .map(|i| {
            let is_sparse = a.row_nnz(i) <= dense_threshold;
            (is_sparse, gray_rank(signature(a, i)), i as u32)
        })
        .collect();
    // Dense group (is_sparse = false) first, each group in Gray order.
    keyed.sort_unstable();
    let order: Vec<u32> = keyed.into_iter().map(|(_, _, i)| i).collect();
    Permutation::from_new_to_old(order).expect("gray ordering produced a non-permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::banded::grouped_rows;
    use cw_sparse::stats::avg_consecutive_jaccard;

    #[test]
    fn gray_rank_inverts_gray_code() {
        // Gray sequence of rank r is r ^ (r >> 1); decoding must invert it.
        for r in 0..256u64 {
            let gray = r ^ (r >> 1);
            assert_eq!(gray_rank(gray), r);
        }
    }

    #[test]
    fn identical_rows_stay_adjacent() {
        // Rows alternate between two patterns; Gray ordering groups them.
        let mut rows = Vec::new();
        for i in 0..20 {
            if i % 2 == 0 {
                rows.push(vec![(0usize, 1.0), (1, 1.0)]);
            } else {
                rows.push(vec![(18usize, 1.0), (19, 1.0)]);
            }
        }
        let a = CsrMatrix::from_row_lists(20, rows);
        let p = gray_order(&a);
        let b = p.permute_rows(&a);
        // After ordering, consecutive-row similarity should be near 1
        // (only one boundary between the two groups).
        assert!(avg_consecutive_jaccard(&b) > 0.9);
    }

    #[test]
    fn dense_rows_come_first() {
        let mut rows = vec![vec![(0usize, 1.0)]; 12];
        // One very dense row at the end.
        rows.push((0..40usize).map(|c| (c, 1.0)).collect());
        let a = CsrMatrix::from_row_lists(40, rows);
        let p = gray_order(&a);
        assert_eq!(p.old_of(0), 12, "dense row should be ordered first");
    }

    #[test]
    fn gray_improves_similarity_on_shuffled_groups() {
        let a = grouped_rows(64, 4, 6, 3);
        let shuffled = crate::random_permutation(64, 1).permute_rows(&a);
        let before = avg_consecutive_jaccard(&shuffled);
        let p = gray_order(&shuffled);
        let after = avg_consecutive_jaccard(&p.permute_rows(&shuffled));
        assert!(after > before, "consecutive jaccard {before} -> {after}");
    }

    #[test]
    fn gray_deterministic_and_valid() {
        let a = grouped_rows(50, 5, 4, 8);
        let p1 = gray_order(&a);
        let p2 = gray_order(&a);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 50);
    }
}
