//! The ten sparse-matrix row-reordering algorithms of paper Table 1.
//!
//! Every algorithm produces a [`Permutation`] (`new → old`). For the `A²`
//! workload the evaluation applies it symmetrically (`P·A·Pᵀ`); for the
//! tall-skinny workload it permutes rows of `A` and correspondingly rows of
//! `B`.
//!
//! | variant | paper row | algorithm |
//! |---|---|---|
//! | [`Reordering::Original`] | Original | identity |
//! | [`Reordering::Random`] | Random/Shuffled | seeded Fisher–Yates |
//! | [`Reordering::Rcm`] | RCM | reverse Cuthill–McKee with George–Liu pseudo-peripheral roots |
//! | [`Reordering::Amd`] | AMD | minimum-degree on the quotient graph with element absorption |
//! | [`Reordering::Nd`] | ND | nested dissection (multilevel bisection + separators) |
//! | [`Reordering::Gp`] | GP | multilevel k-way graph partitioning, rows grouped by part |
//! | [`Reordering::Hp`] | HP | multilevel k-way hypergraph partitioning (column-net, cut-net) |
//! | [`Reordering::Gray`] | Gray | Gray-code ordering over column-block signatures with dense-row split |
//! | [`Reordering::Rabbit`] | Rabbit | community aggregation by modularity gain + dendrogram DFS |
//! | [`Reordering::Degree`] | Degree | descending degree |
//! | [`Reordering::SlashBurn`] | SlashBurn | iterative hub removal, hubs front / spokes back |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod amd;
pub mod gray;
pub mod rabbit;
pub mod rcm;
pub mod slashburn;

use cw_partition::{
    nested_dissection_order, partition_graph, partition_hypergraph, Graph, Hypergraph,
};
use cw_sparse::{CsrMatrix, Permutation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// A row-reordering algorithm (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reordering {
    /// Keep the input order.
    Original,
    /// Random shuffle — the adversarial baseline.
    Random,
    /// Reverse Cuthill–McKee (bandwidth reduction).
    Rcm,
    /// Approximate minimum degree (fill reduction).
    Amd,
    /// Nested dissection (fill reduction / parallelism).
    Nd,
    /// Graph partitioning into `k` parts (METIS-style, edge-cut objective).
    Gp(usize),
    /// Hypergraph partitioning into `k` parts (PaToH-style, cut-net metric).
    Hp(usize),
    /// Gray-code ordering of row sparsity signatures.
    Gray,
    /// Rabbit order (community-based hierarchical reordering).
    Rabbit,
    /// Descending degree order.
    Degree,
    /// SlashBurn hub/spoke ordering.
    SlashBurn,
}

impl Reordering {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Reordering::Original => "Original",
            Reordering::Random => "Shuffled",
            Reordering::Rcm => "RCM",
            Reordering::Amd => "AMD",
            Reordering::Nd => "ND",
            Reordering::Gp(_) => "GP",
            Reordering::Hp(_) => "HP",
            Reordering::Gray => "Gray",
            Reordering::Rabbit => "Rabbit",
            Reordering::Degree => "Degree",
            Reordering::SlashBurn => "SlashBurn",
        }
    }

    /// The ten studied algorithms (paper Table 1 order), with default
    /// partition counts for GP/HP.
    pub fn all_ten() -> Vec<Reordering> {
        vec![
            Reordering::Random,
            Reordering::Rabbit,
            Reordering::Amd,
            Reordering::Rcm,
            Reordering::Nd,
            Reordering::Gp(16),
            Reordering::Hp(16),
            Reordering::Gray,
            Reordering::Degree,
            Reordering::SlashBurn,
        ]
    }

    /// Computes the row permutation for `a`. `seed` feeds every randomized
    /// step; results are deterministic per `(algorithm, matrix, seed)`.
    pub fn compute(&self, a: &CsrMatrix, seed: u64) -> Permutation {
        assert_eq!(a.nrows, a.ncols, "reordering studies square matrices");
        let n = a.nrows;
        match self {
            Reordering::Original => Permutation::identity(n),
            Reordering::Random => random_permutation(n, seed),
            Reordering::Rcm => rcm::rcm_order(a),
            Reordering::Amd => amd::amd_order(a),
            Reordering::Nd => {
                let g = Graph::from_matrix(a);
                let order = nested_dissection_order(&g, 64, seed);
                Permutation::from_new_to_old(order).expect("ND produced a non-permutation")
            }
            Reordering::Gp(k) => {
                let g = Graph::from_matrix(a);
                let parts = partition_graph(&g, effective_k(*k, n), seed);
                order_by_parts(&parts)
            }
            Reordering::Hp(k) => {
                let hg = Hypergraph::column_net_model(a);
                let parts = partition_hypergraph(&hg, effective_k(*k, n), seed);
                order_by_parts(&parts)
            }
            Reordering::Gray => gray::gray_order(a),
            Reordering::Rabbit => rabbit::rabbit_order(a),
            Reordering::Degree => degree_order(a),
            Reordering::SlashBurn => slashburn::slashburn_order(a, slashburn::default_k(n)),
        }
    }
}

/// Caps the requested part count so parts keep a sensible minimum size.
fn effective_k(k: usize, n: usize) -> usize {
    k.clamp(1, (n / 16).max(1))
}

/// Result of [`compute_timed`]: the permutation plus preprocessing seconds
/// (the quantity Fig. 10 amortizes against SpGEMM runs).
#[derive(Debug, Clone)]
pub struct TimedReordering {
    /// The computed permutation.
    pub perm: Permutation,
    /// Wall-clock preprocessing time in seconds.
    pub seconds: f64,
}

/// Computes a reordering and measures its preprocessing time.
pub fn compute_timed(algo: Reordering, a: &CsrMatrix, seed: u64) -> TimedReordering {
    let t0 = Instant::now();
    let perm = algo.compute(a, seed);
    TimedReordering { perm, seconds: t0.elapsed().as_secs_f64() }
}

/// Seeded Fisher–Yates shuffle.
pub fn random_permutation(n: usize, seed: u64) -> Permutation {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    Permutation::from_new_to_old(perm).unwrap()
}

/// Descending-degree ordering (stable: ties keep original order), packing
/// high-degree rows together to share cache lines (paper §2.3).
pub fn degree_order(a: &CsrMatrix) -> Permutation {
    let mut order: Vec<u32> = (0..a.nrows as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(a.row_nnz(v as usize)), v));
    Permutation::from_new_to_old(order).unwrap()
}

/// Orders vertices by `(part id, original index)` — how GP/HP partitions
/// become row orders.
pub fn order_by_parts(parts: &[u32]) -> Permutation {
    let mut order: Vec<u32> = (0..parts.len() as u32).collect();
    order.sort_by_key(|&v| (parts[v as usize], v));
    Permutation::from_new_to_old(order).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::grid::poisson2d;
    use cw_sparse::gen::mesh::tri_mesh;
    use cw_sparse::stats::bandwidth;

    #[test]
    fn every_algorithm_yields_valid_permutation() {
        let a = tri_mesh(8, 8, true, 3);
        for algo in Reordering::all_ten() {
            let p = algo.compute(&a, 7);
            assert_eq!(p.len(), a.nrows, "{}", algo.name());
            // Permutation::from_new_to_old already validated bijectivity;
            // additionally check symmetric application preserves nnz.
            let b = p.permute_symmetric(&a);
            assert_eq!(b.nnz(), a.nnz(), "{}", algo.name());
        }
    }

    #[test]
    fn original_is_identity() {
        let a = poisson2d(5, 5);
        assert!(Reordering::Original.compute(&a, 0).is_identity());
    }

    #[test]
    fn random_depends_on_seed_only() {
        let a = poisson2d(6, 6);
        let p1 = Reordering::Random.compute(&a, 1);
        let p2 = Reordering::Random.compute(&a, 1);
        let p3 = Reordering::Random.compute(&a, 2);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert!(!p1.is_identity());
    }

    #[test]
    fn degree_order_is_descending() {
        let a = tri_mesh(6, 6, true, 1);
        let p = degree_order(&a);
        let b = p.permute_rows(&a);
        for i in 0..b.nrows - 1 {
            assert!(b.row_nnz(i) >= b.row_nnz(i + 1));
        }
    }

    #[test]
    fn gp_reduces_scrambled_mesh_bandwidth_vs_random() {
        let a = tri_mesh(12, 12, true, 5);
        let gp = Reordering::Gp(8).compute(&a, 1);
        let reordered = gp.permute_symmetric(&a);
        // Partition grouping should bring most neighbors nearby: strictly
        // better profile than the scrambled input in aggregate.
        let before = cw_sparse::stats::profile(&a);
        let after = cw_sparse::stats::profile(&reordered);
        assert!(after < before, "profile {before} -> {after}");
    }

    #[test]
    fn effective_k_clamps() {
        assert_eq!(effective_k(16, 64), 4);
        assert_eq!(effective_k(16, 10_000), 16);
        assert_eq!(effective_k(0, 100), 1);
    }

    #[test]
    fn rcm_beats_random_on_bandwidth() {
        let a = tri_mesh(10, 10, true, 9);
        let rcm = Reordering::Rcm.compute(&a, 0);
        let rand = Reordering::Random.compute(&a, 0);
        let bw_rcm = bandwidth(&rcm.permute_symmetric(&a));
        let bw_rand = bandwidth(&rand.permute_symmetric(&a));
        assert!(bw_rcm * 2 < bw_rand, "rcm {bw_rcm} vs random {bw_rand}");
    }

    #[test]
    fn timed_reordering_reports_positive_time() {
        let a = poisson2d(10, 10);
        let t = compute_timed(Reordering::Rcm, &a, 0);
        assert!(t.seconds >= 0.0);
        assert_eq!(t.perm.len(), 100);
    }

    #[test]
    fn order_by_parts_groups_labels() {
        let parts = vec![2u32, 0, 1, 0, 2, 1];
        let p = order_by_parts(&parts);
        let labels: Vec<u32> = (0..6).map(|new| parts[p.old_of(new)]).collect();
        assert_eq!(labels, vec![0, 0, 1, 1, 2, 2]);
    }
}
