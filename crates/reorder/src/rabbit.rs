//! Rabbit order (Arai et al., IPDPS 2016): community detection by
//! incremental aggregation, followed by a dendrogram DFS that gives
//! community members consecutive ids.
//!
//! Aggregation visits vertices in ascending degree and merges each into the
//! neighbor with the largest positive modularity gain
//! `ΔQ ∝ w(u,v)/(2m) − d(u)·d(v)/(2m)²`. Merging builds a forest
//! (dendrogram); the final ordering is a depth-first traversal, so every
//! community — at every level of the hierarchy — occupies a contiguous
//! index range.

use cw_partition::Graph;
use cw_sparse::{CsrMatrix, Permutation};
use std::collections::HashMap;

/// Computes the Rabbit ordering of a square matrix.
pub fn rabbit_order(a: &CsrMatrix) -> Permutation {
    let g = Graph::from_matrix(a);
    let n = g.nvtx();
    if n == 0 {
        return Permutation::identity(0);
    }
    let two_m: f64 = (g.adjwgt.iter().sum::<u64>() as f64).max(1.0);

    // Mutable aggregated adjacency: cluster -> (cluster -> weight).
    let mut adj: Vec<HashMap<u32, f64>> = (0..n)
        .map(|v| {
            let (nbrs, wgts) = g.neighbors(v);
            let mut m = HashMap::with_capacity(nbrs.len());
            for (&u, &w) in nbrs.iter().zip(wgts) {
                *m.entry(u).or_insert(0.0) += w as f64;
            }
            m
        })
        .collect();
    let mut deg_w: Vec<f64> = (0..n).map(|v| g.neighbors(v).1.iter().sum::<u64>() as f64).collect();
    let mut alive = vec![true; n];
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];

    // Visit vertices in ascending original degree (Rabbit's heuristic:
    // absorb low-degree fringe first).
    let mut visit: Vec<u32> = (0..n as u32).collect();
    visit.sort_by_key(|&v| (g.degree(v as usize), v));

    for &vu in &visit {
        let v = vu as usize;
        if !alive[v] || adj[v].is_empty() {
            continue;
        }
        // Best merge target by modularity gain.
        let mut best: Option<(f64, u32)> = None;
        for (&u, &w) in &adj[v] {
            if u as usize == v || !alive[u as usize] {
                continue;
            }
            let dq = w / two_m - (deg_w[v] * deg_w[u as usize]) / (two_m * two_m) * 2.0;
            match best {
                Some((bq, bu)) if (dq, std::cmp::Reverse(u)) <= (bq, std::cmp::Reverse(bu)) => {}
                _ => best = Some((dq, u)),
            }
        }
        let Some((dq, u)) = best else { continue };
        if dq <= 0.0 {
            continue;
        }
        let u = u as usize;
        // Merge v into u.
        alive[v] = false;
        children[u].push(vu);
        let v_adj = std::mem::take(&mut adj[v]);
        for (nbr, w) in v_adj {
            let nb = nbr as usize;
            if nb == u || nb == v {
                continue;
            }
            *adj[u].entry(nbr).or_insert(0.0) += w;
            // Redirect nbr's edge from v to u.
            if let Some(wv) = adj[nb].remove(&vu) {
                *adj[nb].entry(u as u32).or_insert(0.0) += wv;
            }
        }
        adj[u].remove(&vu);
        deg_w[u] += deg_w[v];
    }

    // DFS over the dendrogram: roots in ascending id, children in merge
    // order, parent first. Iterative to handle deep chains.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut stack: Vec<u32> = Vec::new();
    for (root, &is_alive) in alive.iter().enumerate().take(n) {
        if !is_alive {
            continue;
        }
        stack.push(root as u32);
        while let Some(x) = stack.pop() {
            order.push(x);
            // Push children reversed so the first-merged child is visited first.
            for &c in children[x as usize].iter().rev() {
                stack.push(c);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_new_to_old(order).expect("rabbit produced a non-permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::banded::block_diagonal;
    use cw_sparse::gen::rmat::{rmat, RmatParams};

    #[test]
    fn rabbit_is_valid_permutation() {
        let a = rmat(7, 6, RmatParams::default(), 2);
        let p = rabbit_order(&a);
        assert_eq!(p.len(), a.nrows);
    }

    #[test]
    fn communities_end_up_contiguous() {
        // Two disjoint dense blocks scrambled across the index space:
        // rabbit should place each block contiguously.
        let a = block_diagonal(24, (12, 12), 0.0, 1);
        let shuffle = crate::random_permutation(24, 7);
        let scrambled = shuffle.permute_symmetric(&a);
        let p = rabbit_order(&scrambled);
        // Identify which original block each new position belongs to.
        let block_of_scrambled: Vec<usize> = (0..24).map(|new| shuffle.old_of(new) / 12).collect();
        let seq: Vec<usize> = (0..24).map(|new| block_of_scrambled[p.old_of(new)]).collect();
        // Count transitions between blocks; contiguous grouping = 1.
        let transitions = seq.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(transitions <= 2, "sequence {seq:?}");
    }

    #[test]
    fn rabbit_deterministic() {
        let a = rmat(6, 5, RmatParams::default(), 3);
        assert_eq!(rabbit_order(&a), rabbit_order(&a));
    }

    #[test]
    fn rabbit_handles_edgeless_matrix() {
        let a = CsrMatrix::identity(6);
        let p = rabbit_order(&a);
        assert_eq!(p.len(), 6);
        assert!(p.is_identity()); // nothing merges, roots in id order
    }
}
