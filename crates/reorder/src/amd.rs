//! Minimum-degree ordering on the quotient graph with element absorption —
//! the AMD family (Amestoy, Davis & Duff 2004, "Algorithm 837"), implemented
//! in its approximate-external-degree form.
//!
//! The quotient graph represents eliminated vertices implicitly: each
//! elimination creates an *element* whose boundary is the new clique. A
//! variable's degree is approximated by `|adjacent variables| + Σ |element
//! boundaries|` (an upper bound — the same bound AMD uses before its tighter
//! corrections). Elements reachable from the pivot are absorbed, keeping the
//! structure near-linear in practice.

use cw_partition::Graph;
use cw_sparse::{CsrMatrix, Permutation};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes a minimum-degree elimination ordering of `a`'s symmetrized
/// pattern. The returned permutation lists vertices in elimination order
/// (first eliminated = first row).
pub fn amd_order(a: &CsrMatrix) -> Permutation {
    let g = Graph::from_matrix(a);
    let n = g.nvtx();
    // Variable-variable adjacency (shrinks as elements absorb edges).
    let mut adj: Vec<Vec<u32>> = (0..n).map(|v| g.neighbors(v).0.to_vec()).collect();
    // Elements adjacent to each variable.
    let mut velems: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Element boundaries (live variables only, lazily pruned).
    let mut boundary: Vec<Vec<u32>> = Vec::new();
    let mut absorbed: Vec<bool> = Vec::new();
    let mut eliminated = vec![false; n];
    let mut degree: Vec<usize> = (0..n).map(|v| adj[v].len()).collect();

    let mut heap: BinaryHeap<Reverse<(usize, u32)>> =
        (0..n).map(|v| Reverse((degree[v], v as u32))).collect();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    // Scratch marker for set unions.
    let mut mark = vec![false; n];

    while let Some(Reverse((deg, p))) = heap.pop() {
        let p = p as usize;
        if eliminated[p] || deg != degree[p] {
            continue; // stale heap entry
        }
        eliminated[p] = true;
        order.push(p as u32);

        // L_p = (adj[p] ∪ ∪_{e ∋ p} boundary[e]) \ {p, eliminated}.
        let mut lp: Vec<u32> = Vec::new();
        for &v in &adj[p] {
            let v = v as usize;
            if !eliminated[v] && !mark[v] {
                mark[v] = true;
                lp.push(v as u32);
            }
        }
        for &e in &velems[p] {
            let e = e as usize;
            if absorbed[e] {
                continue;
            }
            for &v in &boundary[e] {
                let v = v as usize;
                if !eliminated[v] && !mark[v] {
                    mark[v] = true;
                    lp.push(v as u32);
                }
            }
            absorbed[e] = true; // every element touching p is absorbed
        }
        for &v in &lp {
            mark[v as usize] = false;
        }

        if lp.is_empty() {
            continue;
        }
        let e_new = boundary.len() as u32;
        boundary.push(lp.clone());
        absorbed.push(false);

        // Update every boundary variable.
        for &vu in &lp {
            mark[vu as usize] = true;
        }
        for &vu in &lp {
            let v = vu as usize;
            // Prune adj[v]: drop eliminated vertices and vertices now covered
            // by e_new (they are all in lp).
            adj[v].retain(|&u| {
                let u = u as usize;
                !eliminated[u] && !mark[u]
            });
            // Drop absorbed elements, add the new one.
            velems[v].retain(|&e| !absorbed[e as usize]);
            velems[v].push(e_new);
            // Approximate (external-degree upper bound) update.
            let mut d = adj[v].len();
            for &e in &velems[v] {
                d += boundary[e as usize].len().saturating_sub(1);
            }
            d = d.min(n - order.len()); // cannot exceed remaining vertices
            if d != degree[v] {
                degree[v] = d;
                heap.push(Reverse((d, vu)));
            }
        }
        for &vu in &lp {
            mark[vu as usize] = false;
        }
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_new_to_old(order).expect("AMD produced a non-permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::grid::poisson2d;
    use cw_sparse::gen::mesh::tri_mesh;

    /// Counts fill-in of a symbolic Cholesky factorization under the given
    /// elimination order (quadratic reference implementation).
    fn fill_in(a: &CsrMatrix, perm: &Permutation) -> usize {
        let p = perm.permute_symmetric(a);
        let g = Graph::from_matrix(&p);
        let n = g.nvtx();
        let mut adj: Vec<std::collections::BTreeSet<u32>> =
            (0..n).map(|v| g.neighbors(v).0.iter().copied().collect()).collect();
        let mut fill = 0usize;
        for v in 0..n {
            let nbrs: Vec<u32> = adj[v].iter().copied().filter(|&u| (u as usize) > v).collect();
            for i in 0..nbrs.len() {
                for j in i + 1..nbrs.len() {
                    let (x, y) = (nbrs[i] as usize, nbrs[j] as usize);
                    if adj[x].insert(nbrs[j]) {
                        adj[y].insert(nbrs[i]);
                        fill += 1;
                    }
                }
            }
        }
        fill
    }

    #[test]
    fn amd_is_a_permutation() {
        let a = tri_mesh(8, 8, true, 1);
        let p = amd_order(&a);
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn amd_reduces_fill_vs_random() {
        let a = poisson2d(8, 8);
        let amd = amd_order(&a);
        let rand = crate::random_permutation(64, 5);
        let f_amd = fill_in(&a, &amd);
        let f_rand = fill_in(&a, &rand);
        assert!(f_amd < f_rand, "amd fill {f_amd} vs random fill {f_rand}");
    }

    #[test]
    fn amd_on_star_eliminates_leaves_first() {
        // Star: center 0 connected to 1..=6. Min degree must pick leaves
        // before the hub.
        let mut rows = vec![vec![(0, 1.0)]];
        for leaf in 1..7usize {
            rows[0].push((leaf, 1.0));
            rows.push(vec![(0, 1.0), (leaf, 1.0)]);
        }
        let a = CsrMatrix::from_row_lists(7, rows);
        let p = amd_order(&a);
        // The hub (vertex 0) must be eliminated after most leaves. (It can
        // tie with the final leaf once its degree drops to 1, so "last or
        // second-to-last" is the exact MD guarantee.)
        let hub_pos = (0..7).find(|&new| p.old_of(new) == 0).unwrap();
        assert!(hub_pos >= 5, "hub eliminated at position {hub_pos}");
    }

    #[test]
    fn amd_deterministic() {
        let a = tri_mesh(7, 9, true, 4);
        assert_eq!(amd_order(&a), amd_order(&a));
    }

    #[test]
    fn amd_handles_diagonal_only() {
        let a = CsrMatrix::identity(5);
        let p = amd_order(&a);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn amd_path_graph_linear_fill() {
        // A path has a perfect elimination ordering with zero fill; MD finds
        // one (eliminate endpoints inward).
        let n = 16;
        let mut rows = Vec::new();
        for i in 0..n {
            let mut r = vec![(i, 2.0)];
            if i > 0 {
                r.push((i - 1, 1.0));
            }
            if i + 1 < n {
                r.push((i + 1, 1.0));
            }
            rows.push(r);
        }
        let a = CsrMatrix::from_row_lists(n, rows);
        let p = amd_order(&a);
        assert_eq!(fill_in(&a, &p), 0);
    }
}
