//! Reordering advisor — a rule-based realization of the paper's future-work
//! item ("using machine learning to predict the best choice of reordering
//! combined with the best clustering scheme", §5).
//!
//! The evaluation's empirical findings reduce to a small decision surface
//! over cheap structural statistics:
//!
//! * rows already similar in order (high consecutive Jaccard) → clustering
//!   alone, no reordering;
//! * mesh-like matrices with destroyed locality (low bandwidth ratio is
//!   recoverable, bounded degree) → RCM / GP (paper Fig. 9);
//! * power-law degree distributions → Degree / SlashBurn families;
//! * unstructured uniform sparsity → nothing helps, keep Original
//!   (paper: "no one-size-fits-all reordering method");
//! * everything else → hierarchical clustering, the balanced default.
//!
//! The advisor returns a ranked list so callers can fall through under a
//! preprocessing budget.

use crate::Reordering;
use cw_sparse::stats::{stats, MatrixStats};
use cw_sparse::CsrMatrix;

/// What the advisor suggests doing with the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suggestion {
    /// Apply this reordering before row-wise or cluster-wise SpGEMM.
    Reorder(Reordering),
    /// Skip reordering; apply variable-length clustering directly.
    ClusterInPlace,
    /// Use hierarchical clustering (reorders and clusters together).
    Hierarchical,
    /// Leave the matrix alone; no technique is predicted to pay off.
    LeaveOriginal,
}

/// Structural profile driving the decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Degree skew: max row nnz over mean row nnz.
    pub degree_skew: f64,
    /// Bandwidth as a fraction of n.
    pub relative_bandwidth: f64,
    /// Mean Jaccard similarity of consecutive rows.
    pub consecutive_jaccard: f64,
    /// Mean nonzeros per row.
    pub avg_row_nnz: f64,
}

/// One advisor suggestion with its ranking rationale made explicit: how
/// strongly the profile matches the rule that fired (`affinity`) and why.
/// Downstream cost models use `affinity` as the predicted-payoff feature
/// for the suggested technique instead of re-deriving the decision surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedSuggestion {
    /// The suggested technique.
    pub suggestion: Suggestion,
    /// How strongly the profile matches the rule, in `[0, 1]`: `0` means
    /// "fallback, no structural evidence", values near `1` mean the profile
    /// sits deep inside the rule's winning region (paper Figs. 8–9).
    pub affinity: f64,
    /// One-line explanation of why this suggestion ranked where it did.
    pub why: &'static str,
}

/// The advisor's full output: the profile it measured and the ranked
/// suggestions with their rationale, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// The structural profile the ranking was derived from.
    pub profile: Profile,
    /// Ranked suggestions, best first; never empty.
    pub ranked: Vec<RankedSuggestion>,
}

/// Computes the advisor's input profile from matrix statistics.
pub fn profile(a: &CsrMatrix) -> Profile {
    let s: MatrixStats = stats(a);
    let mean = s.avg_row_nnz.max(1e-9);
    Profile {
        degree_skew: s.max_row_nnz as f64 / mean,
        relative_bandwidth: if s.nrows == 0 { 0.0 } else { s.bandwidth as f64 / s.nrows as f64 },
        consecutive_jaccard: s.avg_consecutive_jaccard,
        avg_row_nnz: s.avg_row_nnz,
    }
}

/// Ranked suggestions (best first) for accelerating SpGEMM on `a`.
/// Shorthand for [`advise_profiled`] when only the ordering matters.
pub fn advise(a: &CsrMatrix) -> Vec<Suggestion> {
    advise_profiled(a).ranked.into_iter().map(|r| r.suggestion).collect()
}

/// Ranked suggestions for `a` with the profile and per-suggestion rationale
/// attached. The order is identical to [`advise`]; the extra `affinity`
/// feature quantifies how deeply the profile sits inside the winning rule's
/// region, which cost models consume as the technique's predicted payoff.
pub fn advise_profiled(a: &CsrMatrix) -> Advice {
    let p = profile(a);
    let mut out = Vec::with_capacity(4);
    let rank = |s, affinity: f64, why| RankedSuggestion {
        suggestion: s,
        affinity: affinity.clamp(0.0, 1.0),
        why,
    };

    if p.consecutive_jaccard >= 0.5 {
        // Rows are already grouped: clustering without reordering captures
        // the structure; reordering risks destroying it (paper: shuffling a
        // good order has GM 0.43).
        out.push(rank(
            Suggestion::ClusterInPlace,
            p.consecutive_jaccard,
            "consecutive rows already similar; cluster in place",
        ));
        out.push(rank(Suggestion::LeaveOriginal, 0.0, "fallback: order is already good"));
        return Advice { profile: p, ranked: out };
    }

    if p.degree_skew >= 8.0 {
        // Heavy-tailed graphs: hub-grouping orders; partitioners struggle
        // (no small separators), meshes' RCM irrelevant.
        let a_skew = (p.degree_skew - 8.0) / p.degree_skew;
        out.push(rank(
            Suggestion::Reorder(Reordering::Degree),
            a_skew,
            "heavy-tailed degrees; group hubs by degree",
        ));
        out.push(rank(
            Suggestion::Reorder(Reordering::SlashBurn),
            a_skew * 0.8,
            "heavy-tailed degrees; SlashBurn hub/spoke order",
        ));
        out.push(rank(Suggestion::Hierarchical, 0.3, "fallback: balanced default"));
        return Advice { profile: p, ranked: out };
    }

    if p.avg_row_nnz <= 16.0 && p.relative_bandwidth > 0.25 {
        // Bounded-degree, scattered numbering: the scrambled-mesh case
        // where RCM/GP/HP win up to an order of magnitude (paper Fig. 9).
        let a_bw = p.relative_bandwidth.min(0.9);
        out.push(rank(
            Suggestion::Reorder(Reordering::Rcm),
            a_bw,
            "bounded degree, scattered numbering; RCM recovers the band",
        ));
        out.push(rank(
            Suggestion::Reorder(Reordering::Gp(16)),
            a_bw * 0.9,
            "bounded degree, scattered numbering; partition for locality",
        ));
        out.push(rank(Suggestion::Hierarchical, 0.3, "fallback: balanced default"));
        return Advice { profile: p, ranked: out };
    }

    if p.relative_bandwidth <= 0.05 {
        // Already banded: nothing to recover.
        out.push(rank(Suggestion::LeaveOriginal, 0.0, "already banded; nothing to recover"));
        out.push(rank(
            Suggestion::ClusterInPlace,
            p.consecutive_jaccard,
            "banded rows may still overlap enough to cluster",
        ));
        return Advice { profile: p, ranked: out };
    }

    // Default: the paper's balanced recommendation.
    out.push(rank(Suggestion::Hierarchical, 0.4, "no dominant structure; balanced default"));
    out.push(rank(
        Suggestion::Reorder(Reordering::Gp(16)),
        0.3,
        "no dominant structure; partitioning sometimes pays",
    ));
    out.push(rank(Suggestion::LeaveOriginal, 0.0, "fallback: leave the matrix alone"));
    Advice { profile: p, ranked: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen;

    #[test]
    fn grouped_rows_suggest_in_place_clustering() {
        let a = gen::banded::block_diagonal(128, (6, 8), 0.0, 1);
        assert_eq!(advise(&a)[0], Suggestion::ClusterInPlace);
    }

    #[test]
    fn scrambled_mesh_suggests_rcm_family() {
        let a = gen::mesh::tri_mesh(24, 24, true, 3);
        let first = advise(&a)[0];
        assert!(
            matches!(first, Suggestion::Reorder(Reordering::Rcm | Reordering::Gp(_))),
            "{first:?}"
        );
    }

    #[test]
    fn powerlaw_suggests_hub_orders() {
        let a = gen::rmat::rmat(10, 8, gen::rmat::RmatParams::default(), 3);
        let first = advise(&a)[0];
        assert!(
            matches!(first, Suggestion::Reorder(Reordering::Degree | Reordering::SlashBurn)),
            "{first:?}"
        );
    }

    #[test]
    fn natural_band_suggests_leaving_alone() {
        let a = gen::grid::poisson2d(64, 4); // bandwidth 64 of 256 rows... narrow band
        let s = advise(&a);
        assert!(
            s.contains(&Suggestion::LeaveOriginal) || s.contains(&Suggestion::ClusterInPlace),
            "{s:?}"
        );
    }

    #[test]
    fn advice_is_never_empty_and_deterministic() {
        for (i, a) in [
            gen::er::erdos_renyi(100, 5, 1),
            gen::kkt::kkt(80, 20, 2, 3, 2),
            gen::road::road(12, 12, 0.9, 4, 5),
        ]
        .into_iter()
        .enumerate()
        {
            let s1 = advise(&a);
            let s2 = advise(&a);
            assert!(!s1.is_empty(), "case {i}");
            assert_eq!(s1, s2, "case {i}");
        }
    }

    #[test]
    fn advise_profiled_matches_advise_order_with_sane_features() {
        for a in [
            gen::banded::block_diagonal(128, (6, 8), 0.0, 1),
            gen::mesh::tri_mesh(24, 24, true, 3),
            gen::rmat::rmat(10, 8, gen::rmat::RmatParams::default(), 3),
            gen::er::erdos_renyi(100, 5, 1),
        ] {
            let advice = advise_profiled(&a);
            let order: Vec<Suggestion> = advice.ranked.iter().map(|r| r.suggestion).collect();
            assert_eq!(order, advise(&a), "advise must be the projection of advise_profiled");
            for r in &advice.ranked {
                assert!((0.0..=1.0).contains(&r.affinity), "{:?}: {}", r.suggestion, r.affinity);
                assert!(!r.why.is_empty());
            }
            // The top suggestion carries at least as much structural
            // evidence as the trailing fallback.
            assert!(advice.ranked[0].affinity >= advice.ranked.last().unwrap().affinity);
        }
    }

    #[test]
    fn affinity_grows_with_structural_evidence() {
        // Nearly identical grouped rows beat loosely overlapping ones.
        let tight = gen::banded::block_diagonal(128, (6, 8), 0.0, 1);
        let loose = gen::banded::block_diagonal(128, (6, 8), 0.35, 1);
        let (ta, la) = (advise_profiled(&tight), advise_profiled(&loose));
        if ta.ranked[0].suggestion == Suggestion::ClusterInPlace
            && la.ranked[0].suggestion == Suggestion::ClusterInPlace
        {
            assert!(ta.ranked[0].affinity >= la.ranked[0].affinity);
        }
    }

    #[test]
    fn profile_fields_are_sane() {
        let a = gen::grid::poisson2d(10, 10);
        let p = profile(&a);
        assert!(p.degree_skew >= 1.0);
        assert!((0.0..=1.0).contains(&p.consecutive_jaccard));
        assert!(p.avg_row_nnz > 0.0);
    }
}
