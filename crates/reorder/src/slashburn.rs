//! SlashBurn ordering (Lim, Kang & Faloutsos, TKDE 2014).
//!
//! Designed for graphs *without* good separators (power-law networks):
//! repeatedly "slash" the `k` highest-degree hubs (ordered to the front),
//! "burn" the small disconnected components that fall off (ordered to the
//! back), and recurse on the giant connected component. Hubs cluster at low
//! ids and spokes at high ids, giving dense top-left / bottom-right blocks.

use cw_partition::Graph;
use cw_sparse::{CsrMatrix, Permutation};
use std::collections::VecDeque;

/// Default hub count per iteration: 0.5% of vertices, at least 1
/// (the paper's recommended `k = 0.005·n`).
pub fn default_k(n: usize) -> usize {
    (n / 200).max(1)
}

/// Computes the SlashBurn ordering with `k` hubs removed per iteration.
pub fn slashburn_order(a: &CsrMatrix, k: usize) -> Permutation {
    let g = Graph::from_matrix(a);
    let n = g.nvtx();
    let k = k.max(1);
    let mut removed = vec![false; n];
    // Degrees restricted to the live subgraph, updated on removal.
    let mut live_degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut front: Vec<u32> = Vec::new(); // hubs, in removal order
    let mut back: Vec<u32> = Vec::new(); // spokes, reversed at the end
    let mut live: Vec<u32> = (0..n as u32).collect();

    while !live.is_empty() {
        if live.len() <= k {
            let mut rest = live.clone();
            rest.sort_by_key(|&v| (std::cmp::Reverse(live_degree[v as usize]), v));
            front.extend_from_slice(&rest);
            break;
        }
        // Slash: remove the k highest-degree live vertices.
        let mut by_degree = live.clone();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(live_degree[v as usize]), v));
        for &hub in by_degree.iter().take(k) {
            removed[hub as usize] = true;
            front.push(hub);
            let (nbrs, _) = g.neighbors(hub as usize);
            for &u in nbrs {
                live_degree[u as usize] = live_degree[u as usize].saturating_sub(1);
            }
        }
        // Burn: find components of the remainder.
        let mut comp = vec![u32::MAX; n];
        let mut comps: Vec<Vec<u32>> = Vec::new();
        for &s in &live {
            let s = s as usize;
            if removed[s] || comp[s] != u32::MAX {
                continue;
            }
            let id = comps.len() as u32;
            let mut members = Vec::new();
            let mut queue = VecDeque::from([s as u32]);
            comp[s] = id;
            while let Some(v) = queue.pop_front() {
                members.push(v);
                let (nbrs, _) = g.neighbors(v as usize);
                for &u in nbrs {
                    let ui = u as usize;
                    if !removed[ui] && comp[ui] == u32::MAX {
                        comp[ui] = id;
                        queue.push_back(u);
                    }
                }
            }
            comps.push(members);
        }
        if comps.is_empty() {
            break;
        }
        // The giant component survives; everything else is a spoke.
        let giant = comps
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (c.len(), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap();
        // Spokes ordered by ascending component size (paper's convention),
        // members by descending degree within each.
        let mut spoke_ids: Vec<usize> = (0..comps.len()).filter(|&i| i != giant).collect();
        spoke_ids.sort_by_key(|&i| (comps[i].len(), i));
        for i in spoke_ids {
            let mut members = std::mem::take(&mut comps[i]);
            members.sort_by_key(|&v| (std::cmp::Reverse(live_degree[v as usize]), v));
            for &v in &members {
                removed[v as usize] = true;
            }
            // Pushed now, reversed later: earlier-burned spokes end up at
            // the very end of the ordering.
            back.extend(members);
        }
        live = std::mem::take(&mut comps[giant]);
    }
    back.reverse();
    front.extend_from_slice(&back);
    debug_assert_eq!(front.len(), n);
    Permutation::from_new_to_old(front).expect("slashburn produced a non-permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::rmat::{rmat, RmatParams};

    #[test]
    fn hubs_ordered_first() {
        // Star graph plus a pendant path: hub must receive id 0.
        let mut rows = vec![vec![(0usize, 1.0)]];
        for leaf in 1..8usize {
            rows[0].push((leaf, 1.0));
            rows.push(vec![(0, 1.0), (leaf, 1.0)]);
        }
        let a = CsrMatrix::from_row_lists(8, rows);
        let p = slashburn_order(&a, 1);
        assert_eq!(p.old_of(0), 0, "hub should be first");
    }

    #[test]
    fn order_is_valid_on_powerlaw() {
        let a = rmat(8, 6, RmatParams::default(), 4);
        let p = slashburn_order(&a, default_k(a.nrows));
        assert_eq!(p.len(), a.nrows);
    }

    #[test]
    fn first_positions_have_high_degree() {
        let a = rmat(9, 8, RmatParams::default(), 6);
        let p = slashburn_order(&a, default_k(a.nrows));
        let avg_deg = a.nnz() as f64 / a.nrows as f64;
        // The first 1% of positions should hold far-above-average degrees.
        let head = (a.nrows / 100).max(2);
        for new in 0..head {
            let d = a.row_nnz(p.old_of(new));
            assert!(d as f64 > avg_deg, "position {new} holds degree {d} < avg {avg_deg}");
        }
    }

    #[test]
    fn deterministic() {
        let a = rmat(7, 5, RmatParams::default(), 1);
        assert_eq!(slashburn_order(&a, 3), slashburn_order(&a, 3));
    }

    #[test]
    fn small_matrix_edge_case() {
        let a = CsrMatrix::identity(3);
        let p = slashburn_order(&a, 5);
        assert_eq!(p.len(), 3);
    }
}
