//! Reverse Cuthill–McKee ordering (Cuthill & McKee 1969; Liu & Sherman
//! 1976) with George–Liu pseudo-peripheral starting vertices.
//!
//! CM performs a BFS from a peripheral vertex, visiting each level's
//! vertices in ascending degree; RCM reverses the resulting sequence, which
//! Liu & Sherman showed never increases (and usually decreases) fill. The
//! effect the paper cares about: nonzeros concentrate near the diagonal, so
//! consecutive rows of `A` touch overlapping column ranges of `B`.

use cw_partition::Graph;
use cw_sparse::{CsrMatrix, Permutation};
use std::collections::VecDeque;

/// Computes the RCM permutation of a square matrix (pattern symmetrized).
pub fn rcm_order(a: &CsrMatrix) -> Permutation {
    let g = Graph::from_matrix(a);
    let n = g.nvtx();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    let mut nbr_buf: Vec<u32> = Vec::new();

    // Process components in order of their smallest vertex (deterministic).
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let root = g.pseudo_peripheral(start);
        visited[root] = true;
        queue.push_back(root as u32);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let (nbrs, _) = g.neighbors(v as usize);
            nbr_buf.clear();
            nbr_buf.extend(nbrs.iter().copied().filter(|&u| !visited[u as usize]));
            // CM rule: enqueue unvisited neighbors by ascending degree.
            nbr_buf.sort_by_key(|&u| (g.degree(u as usize), u));
            for &u in &nbr_buf {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order.reverse(); // the "R" in RCM
    Permutation::from_new_to_old(order).expect("RCM produced a non-permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::grid::poisson2d;
    use cw_sparse::gen::mesh::tri_mesh;
    use cw_sparse::stats::bandwidth;
    use cw_sparse::Permutation as P;

    #[test]
    fn rcm_is_a_permutation_on_disconnected_graphs() {
        // Block-diagonal disconnected matrix.
        let a = cw_sparse::gen::banded::block_diagonal(40, (5, 5), 0.0, 1);
        let p = rcm_order(&a);
        assert_eq!(p.len(), 40);
    }

    #[test]
    fn rcm_restores_scrambled_grid_bandwidth() {
        let natural = poisson2d(12, 12);
        let bw_natural = bandwidth(&natural);
        // Scramble, then RCM.
        let shuffle = crate::random_permutation(144, 3);
        let scrambled = shuffle.permute_symmetric(&natural);
        assert!(bandwidth(&scrambled) > 3 * bw_natural);
        let p = rcm_order(&scrambled);
        let restored = p.permute_symmetric(&scrambled);
        // RCM should get within ~2x of the natural grid bandwidth.
        assert!(
            bandwidth(&restored) <= 2 * bw_natural + 2,
            "restored bandwidth {} vs natural {}",
            bandwidth(&restored),
            bw_natural
        );
    }

    #[test]
    fn rcm_on_path_is_monotone() {
        // Path graph: RCM must produce an end-to-end sweep (bandwidth 1).
        let n = 20;
        let mut rows = Vec::new();
        for i in 0..n {
            let mut r = vec![(i, 2.0)];
            if i > 0 {
                r.push((i - 1, 1.0));
            }
            if i + 1 < n {
                r.push((i + 1, 1.0));
            }
            rows.push(r);
        }
        let a = CsrMatrix::from_row_lists(n, rows);
        let shuffled = crate::random_permutation(n, 9).permute_symmetric(&a);
        let p = rcm_order(&shuffled);
        assert_eq!(bandwidth(&p.permute_symmetric(&shuffled)), 1);
    }

    #[test]
    fn rcm_deterministic() {
        let a = tri_mesh(9, 9, true, 2);
        assert_eq!(rcm_order(&a), rcm_order(&a));
    }

    #[test]
    fn rcm_identity_sized_edge_cases() {
        let a = CsrMatrix::identity(1);
        assert_eq!(rcm_order(&a), P::identity(1));
        let empty = CsrMatrix::zeros(0, 0);
        assert_eq!(rcm_order(&empty).len(), 0);
    }
}
