//! Two-level cache hierarchy (L1 → L2), modelling the evaluation
//! platform's per-core path more faithfully than a single level.
//!
//! Accesses hit L1 first; L1 misses go to L2; L2 misses go to memory. Both
//! levels fill on miss (inclusive-ish behaviour — good enough for relative
//! trace comparisons, which is all the experiments need).

use crate::cache::{Cache, CacheConfig, CacheStats};
use cw_sparse::CsrMatrix;

/// An L1 + L2 cache pair.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
}

/// Counters of a hierarchy replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 counters (all accesses).
    pub l1: CacheStats,
    /// L2 counters (only L1 misses reach it).
    pub l2: CacheStats,
}

impl HierarchyStats {
    /// Accesses that had to go to memory.
    pub fn memory_accesses(&self) -> u64 {
        self.l2.misses
    }
}

impl Hierarchy {
    /// Creates a hierarchy. Defaults model a Zen3 core: 32 KiB 8-way L1,
    /// 512 KiB 8-way L2.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        Hierarchy { l1: Cache::new(l1), l2: Cache::new(l2) }
    }

    /// Zen3-like default geometry.
    pub fn zen3() -> Self {
        Hierarchy::new(
            CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 8 },
            CacheConfig { size_bytes: 512 * 1024, line_bytes: 64, ways: 8 },
        )
    }

    /// Accesses one address through both levels.
    #[inline]
    pub fn access(&mut self, addr: u64) {
        if !self.l1.access(addr) {
            self.l2.access(addr);
        }
    }

    /// Accesses every line of a byte range.
    pub fn access_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let line = 64u64;
        let first = addr / line;
        let last = (addr + len - 1) / line;
        for l in first..=last {
            self.access(l * line);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats { l1: self.l1.stats(), l2: self.l2.stats() }
    }
}

/// Replays a B-row trace through a two-level hierarchy (same memory layout
/// convention as [`crate::replay::replay_b_row_trace`]).
pub fn replay_b_row_trace_hierarchy(
    b: &CsrMatrix,
    trace: &[u32],
    mut h: Hierarchy,
) -> HierarchyStats {
    let col_base: u64 = 1 << 40;
    let val_base: u64 = 1 << 44;
    for &row in trace {
        let r = row as usize;
        let lo = b.row_ptr[r] as u64;
        let hi = b.row_ptr[r + 1] as u64;
        h.access_range(col_base + lo * 4, (hi - lo) * 4);
        h.access_range(val_base + lo * 8, (hi - lo) * 8);
    }
    h.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::er::erdos_renyi;

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = Hierarchy::zen3();
        h.access(0);
        h.access(0); // L1 hit, L2 untouched
        let s = h.stats();
        assert_eq!(s.l1.accesses(), 2);
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l2.accesses(), 1);
        assert_eq!(s.memory_accesses(), 1);
    }

    #[test]
    fn working_set_between_l1_and_l2_hits_in_l2() {
        let mut h = Hierarchy::new(
            CacheConfig { size_bytes: 1024, line_bytes: 64, ways: 4 }, // 16 lines
            CacheConfig { size_bytes: 64 * 1024, line_bytes: 64, ways: 8 },
        );
        // Touch 64 lines (4 KiB): fits L2, not L1.
        for round in 0..3 {
            for i in 0..64u64 {
                h.access(i * 64);
            }
            let _ = round;
        }
        let s = h.stats();
        // After the cold round, L1 thrashes but L2 absorbs everything.
        assert_eq!(s.memory_accesses(), 64, "only compulsory misses reach memory");
        assert!(s.l2.hits >= 128);
    }

    #[test]
    fn hierarchy_replay_runs() {
        let b = erdos_renyi(300, 6, 1);
        let trace: Vec<u32> = (0..600u32).map(|i| i % 300).collect();
        let s = replay_b_row_trace_hierarchy(&b, &trace, Hierarchy::zen3());
        assert!(s.l1.accesses() > 0);
        assert!(s.memory_accesses() <= s.l1.misses);
    }
}
