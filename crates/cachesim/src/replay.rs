//! Replaying B-row access traces through the cache model.
//!
//! A "B-row access" in SpGEMM reads the row's slice of `col_idx` (4 B per
//! entry) and `vals` (8 B per entry). The replay lays `B` out exactly as
//! [`cw_sparse::CsrMatrix`] does — `col_idx` and `vals` as two contiguous
//! arrays — and streams the slices of each accessed row through the cache.

use crate::cache::{Cache, CacheConfig, CacheStats};
use cw_sparse::CsrMatrix;

/// Outcome of replaying a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayStats {
    /// Row accesses in the trace.
    pub row_accesses: usize,
    /// Cache-line level counters.
    pub cache: CacheStats,
    /// Bytes transferred from memory (`misses × line`).
    pub bytes_from_memory: u64,
}

/// Replays a sequence of B-row ids against the memory layout of `b`.
///
/// The cache starts cold; compulsory misses are included (they are the
/// same for every ordering, so *differences* between traces isolate the
/// reuse effect).
pub fn replay_b_row_trace(b: &CsrMatrix, trace: &[u32], cfg: CacheConfig) -> ReplayStats {
    let mut cache = Cache::new(cfg);
    // Virtual base addresses for B's arrays, line-aligned and far apart so
    // they never overlap.
    let col_base: u64 = 1 << 40;
    let val_base: u64 = 1 << 44;
    for &row in trace {
        let r = row as usize;
        let lo = b.row_ptr[r] as u64;
        let hi = b.row_ptr[r + 1] as u64;
        cache.access_range(col_base + lo * 4, (hi - lo) * 4);
        cache.access_range(val_base + lo * 8, (hi - lo) * 8);
    }
    let stats = cache.stats();
    ReplayStats {
        row_accesses: trace.len(),
        cache: stats,
        bytes_from_memory: stats.misses * cfg.line_bytes as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::er::erdos_renyi;
    use cw_sparse::gen::grid::poisson2d;

    fn small_cache() -> CacheConfig {
        CacheConfig { size_bytes: 4 * 1024, line_bytes: 64, ways: 4 }
    }

    #[test]
    fn repeated_row_hits_after_first() {
        let b = poisson2d(8, 8);
        let trace = vec![5u32; 10];
        let s = replay_b_row_trace(&b, &trace, small_cache());
        assert_eq!(s.row_accesses, 10);
        // Row 5 has 4 entries: <=2 col lines + <=2 val lines cold misses,
        // everything after is a hit.
        assert!(s.cache.misses <= 4, "misses {}", s.cache.misses);
        assert!(s.cache.hits > s.cache.misses);
    }

    #[test]
    fn sorted_trace_beats_scattered_trace() {
        // Scattered accesses to a large B thrash a small cache; sorted
        // (clustered) accesses reuse lines.
        let b = erdos_renyi(2000, 8, 1);
        let scattered: Vec<u32> =
            (0..4000u32).map(|i| (i.wrapping_mul(1103515245).wrapping_add(777)) % 2000).collect();
        let mut sorted = scattered.clone();
        sorted.sort_unstable();
        let cfg = small_cache();
        let s_scat = replay_b_row_trace(&b, &scattered, cfg);
        let s_sort = replay_b_row_trace(&b, &sorted, cfg);
        assert!(
            s_sort.cache.misses < s_scat.cache.misses,
            "sorted {} vs scattered {}",
            s_sort.cache.misses,
            s_scat.cache.misses
        );
    }

    #[test]
    fn bytes_from_memory_is_misses_times_line() {
        let b = poisson2d(4, 4);
        let s = replay_b_row_trace(&b, &[0, 1, 2, 3], small_cache());
        assert_eq!(s.bytes_from_memory, s.cache.misses * 64);
    }

    #[test]
    fn empty_trace() {
        let b = poisson2d(3, 3);
        let s = replay_b_row_trace(&b, &[], small_cache());
        assert_eq!(s.row_accesses, 0);
        assert_eq!(s.cache.accesses(), 0);
    }

    #[test]
    fn empty_rows_cost_nothing() {
        let b = CsrMatrix::zeros(10, 10);
        let s = replay_b_row_trace(&b, &[1, 2, 3], small_cache());
        assert_eq!(s.cache.accesses(), 0);
    }
}
