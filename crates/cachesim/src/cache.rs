//! Set-associative LRU cache model.

/// Cache geometry. Defaults model a per-core L2 slice like the evaluation
/// platform's EPYC 7763 (512 KiB, 8-way, 64-byte lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { size_bytes: 512 * 1024, line_bytes: 64, ways: 8 }
    }
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let t = self.accesses();
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags per set are kept in recency order (most recent last); sets are
/// small (`ways` entries) so linear scans beat fancier structures.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<u64>>,
    set_mask: u64,
    line_shift: u32,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache. `line_bytes` and `sets` must be powers of two.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two (got {sets})");
        assert!(cfg.ways >= 1);
        Cache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways); sets],
            set_mask: sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses one byte address; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tags = &mut self.sets[set];
        if let Some(pos) = tags.iter().position(|&t| t == line) {
            // Move to MRU position.
            let t = tags.remove(pos);
            tags.push(t);
            self.stats.hits += 1;
            true
        } else {
            if tags.len() == self.cfg.ways {
                tags.remove(0); // evict LRU
            }
            tags.push(line);
            self.stats.misses += 1;
            false
        }
    }

    /// Accesses every line in the byte range `[addr, addr + len)` once
    /// (streaming read of a contiguous array slice).
    pub fn access_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr >> self.line_shift;
        let last = (addr + len - 1) >> self.line_shift;
        for line in first..=last {
            self.access(line << self.line_shift);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Empties the cache and zeroes counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig { size_bytes: 512, line_bytes: 64, ways: 2 })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines mapping to set 0: line numbers 0, 4, 8 (set = line & 3).
        let l = |line: u64| line * 64;
        c.access(l(0));
        c.access(l(4));
        // Touch line 0 -> it becomes MRU; line 4 is now LRU.
        assert!(c.access(l(0)));
        c.access(l(8)); // evicts line 4
        assert!(c.access(l(0)), "line 0 should survive");
        assert!(!c.access(l(4)), "line 4 should have been evicted");
    }

    #[test]
    fn access_range_touches_each_line_once() {
        let mut c = tiny();
        c.access_range(0, 256); // 4 lines
        assert_eq!(c.stats().accesses(), 4);
        assert_eq!(c.stats().misses, 4);
        c.access_range(0, 1); // 1 line, within capacity? set0 ways...
        assert_eq!(c.stats().accesses(), 5);
    }

    #[test]
    fn fully_associative_behaves_as_lru_stack() {
        let mut c = Cache::new(CacheConfig { size_bytes: 256, line_bytes: 64, ways: 4 });
        assert_eq!(c.config().sets(), 1);
        for i in 0..4u64 {
            c.access(i * 64);
        }
        // Working set of 4 lines fits: all re-accesses hit.
        for i in 0..4u64 {
            assert!(c.access(i * 64));
        }
        // A 5th line evicts the LRU (line 0).
        c.access(4 * 64);
        assert!(!c.access(0));
    }

    #[test]
    fn miss_ratio_and_reset() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "reset must empty the cache");
    }

    #[test]
    fn zero_length_range_is_noop() {
        let mut c = tiny();
        c.access_range(128, 0);
        assert_eq!(c.stats().accesses(), 0);
    }
}
