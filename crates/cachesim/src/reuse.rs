//! Exact LRU stack-distance (reuse-distance) analysis.
//!
//! The reuse distance of an access is the number of *distinct* items
//! referenced since the previous access to the same item (∞ for first
//! accesses). An access hits in a fully-associative LRU cache of capacity
//! `C` iff its reuse distance is `< C`, so the histogram characterizes
//! locality for **every** cache size at once — the cleanest way to compare
//! row-wise vs cluster-wise traces.
//!
//! Implementation: the classic Bennett–Kruskal algorithm. A Fenwick tree
//! marks the trace positions that are the *most recent* access of some
//! item; the distance of an access is the count of marked positions after
//! the item's previous access. `O(T log T)` time, `O(T + N)` space.

/// Histogram of reuse distances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseHistogram {
    /// `counts[d]` = number of accesses with reuse distance exactly `d`
    /// (capped at `counts.len() - 1`; the last bucket aggregates the tail).
    pub counts: Vec<u64>,
    /// First-ever accesses (infinite distance — compulsory misses).
    pub cold: u64,
}

impl ReuseHistogram {
    /// Total finite-distance accesses.
    pub fn reuses(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of accesses that would hit in a fully-associative LRU cache
    /// holding `capacity` items.
    pub fn hits_at_capacity(&self, capacity: usize) -> u64 {
        self.counts.iter().take(capacity.min(self.counts.len())).sum()
    }

    /// Mean finite reuse distance (`None` when there are no reuses).
    pub fn mean_distance(&self) -> Option<f64> {
        let n = self.reuses();
        if n == 0 {
            return None;
        }
        let total: f64 = self.counts.iter().enumerate().map(|(d, &c)| d as f64 * c as f64).sum();
        Some(total / n as f64)
    }
}

/// Fenwick (binary indexed) tree over trace positions.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Adds `delta` at position `i` (0-based).
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based inclusive).
    fn prefix(&self, i: usize) -> u32 {
        let mut i = i + 1;
        let mut s = 0u32;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Computes the reuse-distance histogram of `trace` over items `0..nitems`.
///
/// Distances at or beyond `max_distance` are folded into the final bucket.
pub fn reuse_distance_histogram(
    trace: &[u32],
    nitems: usize,
    max_distance: usize,
) -> ReuseHistogram {
    let t = trace.len();
    let cap = max_distance.max(1);
    let mut counts = vec![0u64; cap + 1];
    let mut cold = 0u64;
    let mut last_pos: Vec<i64> = vec![-1; nitems];
    let mut fen = Fenwick::new(t);
    let mut marked = 0u32; // number of currently marked positions
    for (pos, &item) in trace.iter().enumerate() {
        let item = item as usize;
        let prev = last_pos[item];
        if prev < 0 {
            cold += 1;
        } else {
            // Distinct items seen strictly after prev = marked positions in
            // (prev, pos) = total marked - marked in [0, prev].
            let d = (marked - fen.prefix(prev as usize)) as usize;
            // The item itself was marked at prev, inside [0, prev]; every
            // other marked position after prev is a distinct item.
            counts[d.min(cap)] += 1;
            fen.add(prev as usize, -1);
            marked -= 1;
        }
        fen.add(pos, 1);
        marked += 1;
        last_pos[item] = pos as i64;
    }
    ReuseHistogram { counts, cold }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let h = reuse_distance_histogram(&[3, 3, 3], 4, 8);
        assert_eq!(h.cold, 1);
        assert_eq!(h.counts[0], 2);
    }

    #[test]
    fn classic_abcabc() {
        // a b c a b c: second round all distance 2.
        let h = reuse_distance_histogram(&[0, 1, 2, 0, 1, 2], 3, 8);
        assert_eq!(h.cold, 3);
        assert_eq!(h.counts[2], 3);
        assert_eq!(h.reuses(), 3);
        // LRU cache of capacity 3 hits all reuses; capacity 2 hits none.
        assert_eq!(h.hits_at_capacity(3), 3);
        assert_eq!(h.hits_at_capacity(2), 0);
    }

    #[test]
    fn interleaving_increases_distance() {
        // a x a with distinct x: distance 1.
        let h = reuse_distance_histogram(&[0, 1, 0], 2, 8);
        assert_eq!(h.counts[1], 1);
        // a x y a: distance 2.
        let h2 = reuse_distance_histogram(&[0, 1, 2, 0], 3, 8);
        assert_eq!(h2.counts[2], 1);
    }

    #[test]
    fn duplicate_interleaver_counts_once() {
        // a x x a: only ONE distinct item between the two a's.
        let h = reuse_distance_histogram(&[0, 1, 1, 0], 2, 8);
        assert_eq!(h.counts[1], 1, "{:?}", h.counts);
    }

    #[test]
    fn tail_folds_into_last_bucket() {
        // 0 .. 9 then 0: distance 9 folded into bucket 4 (cap 4).
        let trace: Vec<u32> = (0..10).chain([0]).collect();
        let h = reuse_distance_histogram(&trace, 10, 4);
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.cold, 10);
    }

    #[test]
    fn mean_distance() {
        let h = reuse_distance_histogram(&[0, 1, 0, 1], 2, 8);
        // Both reuses at distance 1.
        assert_eq!(h.mean_distance(), Some(1.0));
        let empty = reuse_distance_histogram(&[0, 1], 2, 8);
        assert_eq!(empty.mean_distance(), None);
    }

    #[test]
    fn matches_naive_on_random_trace() {
        // Naive O(T^2) reference.
        fn naive(trace: &[u32], cap: usize) -> (Vec<u64>, u64) {
            let mut counts = vec![0u64; cap + 1];
            let mut cold = 0u64;
            for (pos, &it) in trace.iter().enumerate() {
                let prev = trace[..pos].iter().rposition(|&x| x == it);
                match prev {
                    None => cold += 1,
                    Some(p) => {
                        let mut distinct: Vec<u32> = trace[p + 1..pos].to_vec();
                        distinct.sort_unstable();
                        distinct.dedup();
                        counts[distinct.len().min(cap)] += 1;
                    }
                }
            }
            (counts, cold)
        }
        let trace: Vec<u32> = (0..500u32).map(|i| (i.wrapping_mul(2654435761)) % 37).collect();
        let h = reuse_distance_histogram(&trace, 37, 16);
        let (counts, cold) = naive(&trace, 16);
        assert_eq!(h.counts, counts);
        assert_eq!(h.cold, cold);
    }
}
