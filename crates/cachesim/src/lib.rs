//! Deterministic cache simulation for SpGEMM access traces.
//!
//! The paper measures locality effects with wall-clock speedups on
//! Perlmutter. That hardware is not reproducible here, so this crate makes
//! the locality argument *deterministic*: kernels export their `B`-row
//! access sequences (`cw_spgemm::trace`, `cw_core::trace`), and this crate
//! replays them through
//!
//! * [`cache`] — a set-associative LRU cache model with configurable size /
//!   line / associativity, and
//! * [`reuse`] — exact LRU stack (reuse) distance histograms, the
//!   cache-size-independent characterization of temporal locality.
//!
//! If reordering or clustering improves locality, the replayed miss count
//! and the reuse-distance mass below cache capacity improve with it — same
//! claim as the paper's speedups, minus the noise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod replay;
pub mod reuse;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{replay_b_row_trace_hierarchy, Hierarchy, HierarchyStats};
pub use replay::{replay_b_row_trace, ReplayStats};
pub use reuse::{reuse_distance_histogram, ReuseHistogram};
