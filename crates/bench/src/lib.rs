//! Experiment harness regenerating every figure and table of the paper's
//! evaluation (§4).
//!
//! * [`stats`] — geometric means, the GM / Pos.% / +GM summary of Table 2,
//!   box-plot quantiles (Figs. 2–3), performance profiles (Fig. 10), CDFs
//!   (Fig. 11).
//! * [`runner`] — wall-clock timing (median-of-N with warmup) and the
//!   shared per-dataset measurement pipeline.
//! * [`report`] — markdown, CSV, and machine-readable `BENCH_*.json`
//!   emission (the perf trajectory the CI perf gate diffs).
//! * [`experiments`] — one module per paper artifact: `fig2`, `fig3`,
//!   `fig8`, `fig9`, `fig10`, `fig11`, `table2`, `table3`, `table4` — plus
//!   `engine` (adaptive pipeline vs fixed, plan-cache amortization),
//!   `planner` (static advisor vs cost model vs feedback-converged plan
//!   selection), `backends` (per-backend timings and feedback-driven
//!   backend selection), `calibrate` (cost-model fitting: sweep →
//!   [`cw_engine::Calibrator`] → held-out prediction error and
//!   first-choice plan agreement), and `serving` (service offered-load
//!   sweep).
//!
//! The `paper` binary (`cargo run -p cw-bench --release --bin paper`) drives
//! them; the `perf_gate` binary diffs emitted `BENCH_*.json` against
//! `ci/bench_baseline.json` in CI (see `docs/ARCHITECTURE.md`, "The CI
//! perf gate"); criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod stats;
