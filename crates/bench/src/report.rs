//! Markdown, CSV, and machine-readable JSON emission for experiment
//! results.
//!
//! Tables and notes render for humans; [`Metric`]s render as
//! `BENCH_<id>.json` — the machine-readable perf trajectory the CI
//! perf-gate diffs against `ci/bench_baseline.json` (see the `perf_gate`
//! binary). The JSON is hand-rolled (no serde in the offline container)
//! and parsed back with `cw_engine::calibrate::json`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Version stamped into every `BENCH_*.json`; the perf gate refuses to
/// compare documents with mismatched schema versions.
pub const BENCH_JSON_SCHEMA_VERSION: u64 = 1;

/// A rectangular table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ =
            writeln!(s, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        s
    }

    /// Renders CSV (naive quoting: fields containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |f: &str| {
            if f.contains(',') || f.contains('"') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.to_string()
            }
        };
        let mut s = String::new();
        let _ =
            writeln!(s, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.iter().map(|f| esc(f)).collect::<Vec<_>>().join(","));
        }
        s
    }
}

/// Whether larger or smaller metric values are better — how the perf gate
/// orients its tolerance band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Timings, error rates: regression = value grew.
    LowerIsBetter,
    /// Agreement fractions, speedups: regression = value shrank.
    HigherIsBetter,
}

impl Direction {
    /// Stable serialized name (`"lower"` / `"higher"`).
    pub fn name(&self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
        }
    }

    /// Inverse of [`Direction::name`].
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "lower" => Some(Direction::LowerIsBetter),
            "higher" => Some(Direction::HigherIsBetter),
            _ => None,
        }
    }
}

/// One machine-readable scalar result of an experiment.
///
/// Naming convention: `category/qualifier[/qualifier…]`, e.g.
/// `warm_kernel_s/poi3D-like/parallel-cpu`. Metrics whose name starts
/// with `warm` and ends in `_s` are warm-path timings: the perf gate
/// normalizes them by the experiment's `anchor_s` probe before comparing
/// across machines.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (stable across runs — it is the diff key).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Which way regressions point.
    pub direction: Direction,
}

/// A complete experiment report: a title, commentary, tables, and
/// machine-readable metrics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id (e.g. `fig2`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Free-form notes (expected paper shape, caveats).
    pub notes: Vec<String>,
    /// Named tables.
    pub tables: Vec<(String, Table)>,
    /// Machine-readable metrics (emitted as `BENCH_<id>.json` when
    /// non-empty).
    pub metrics: Vec<Metric>,
    /// Extra artifacts written verbatim alongside the report
    /// (`(filename, contents)` — e.g. the fitted calibration profile).
    pub attachments: Vec<(String, String)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str) -> Self {
        Report { id: id.into(), title: title.into(), ..Default::default() }
    }

    /// Adds a commentary line.
    pub fn note<S: Into<String>>(&mut self, s: S) {
        self.notes.push(s.into());
    }

    /// Adds a named table.
    pub fn add_table<S: Into<String>>(&mut self, name: S, t: Table) {
        self.tables.push((name.into(), t));
    }

    /// Adds one machine-readable metric (non-finite values are dropped —
    /// a NaN in the baseline would poison every future diff).
    pub fn add_metric<S: Into<String>>(&mut self, name: S, value: f64, direction: Direction) {
        if value.is_finite() {
            self.metrics.push(Metric { name: name.into(), value, direction });
        }
    }

    /// Renders the metrics as the `BENCH_<id>.json` document (empty
    /// string when there are no metrics).
    pub fn metrics_json(&self) -> String {
        if self.metrics.is_empty() {
            return String::new();
        }
        let esc = cw_engine::calibrate::json::escape;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema_version\": {BENCH_JSON_SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"experiment\": \"{}\",", esc(&self.id));
        let _ = writeln!(s, "  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"value\": {:?}, \"direction\": \"{}\"}}{comma}",
                esc(&m.name),
                m.value,
                m.direction.name()
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Renders the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## {} — {}\n", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(s, "> {n}");
        }
        if !self.notes.is_empty() {
            let _ = writeln!(s);
        }
        for (name, t) in &self.tables {
            let _ = writeln!(s, "### {name}\n");
            let _ = writeln!(s, "{}", t.to_markdown());
        }
        s
    }

    /// Writes `<id>.md` plus one CSV per table — and, when the report
    /// carries metrics, the machine-readable `BENCH_<id>.json` — into
    /// `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut md = std::fs::File::create(dir.join(format!("{}.md", self.id)))?;
        md.write_all(self.to_markdown().as_bytes())?;
        if !self.metrics.is_empty() {
            std::fs::write(dir.join(format!("BENCH_{}.json", self.id)), self.metrics_json())?;
        }
        for (name, contents) in &self.attachments {
            std::fs::write(dir.join(name), contents)?;
        }
        for (i, (name, t)) in self.tables.iter().enumerate() {
            let safe: String = name
                .chars()
                .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect();
            let mut f = std::fs::File::create(dir.join(format!("{}_{}_{}.csv", self.id, i, safe)))?;
            f.write_all(t.to_csv().as_bytes())?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (speedups, ratios).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats seconds with adaptive precision.
pub fn secs(x: f64) -> String {
    if x < 1e-3 {
        format!("{:.1}µs", x * 1e6)
    } else if x < 1.0 {
        format!("{:.2}ms", x * 1e3)
    } else {
        format!("{x:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_and_csv() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "x,y"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | x,y |"));
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn report_renders_and_writes() {
        let mut r = Report::new("figX", "Test");
        r.note("a note");
        let mut t = Table::new(vec!["c"]);
        t.push_row(vec!["v"]);
        r.add_table("main", t);
        let md = r.to_markdown();
        assert!(md.contains("## figX — Test"));
        assert!(md.contains("> a note"));
        let dir = std::env::temp_dir().join("cw_bench_report_test");
        r.write_to(&dir).unwrap();
        assert!(dir.join("figX.md").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_emit_and_parse_back() {
        let mut r = Report::new("calibration", "Test");
        r.add_metric("warm_kernel_s/dataset-a/parallel-cpu", 1.5e-4, Direction::LowerIsBetter);
        r.add_metric("plan_agreement/calibrated", 0.8, Direction::HigherIsBetter);
        r.add_metric("bad", f64::NAN, Direction::LowerIsBetter); // dropped
        assert_eq!(r.metrics.len(), 2);

        let doc = cw_engine::calibrate::json::parse(&r.metrics_json()).unwrap();
        assert_eq!(
            doc.get("schema_version").unwrap().as_f64(),
            Some(BENCH_JSON_SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("calibration"));
        let metrics = doc.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].get("value").unwrap().as_f64(), Some(1.5e-4));
        assert_eq!(metrics[1].get("direction").unwrap().as_str(), Some("higher"));

        let dir = std::env::temp_dir().join("cw_bench_metrics_test");
        r.write_to(&dir).unwrap();
        assert!(dir.join("BENCH_calibration.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_without_metrics_emit_no_json() {
        let r = Report::new("figX", "Test");
        assert!(r.metrics_json().is_empty());
        let dir = std::env::temp_dir().join("cw_bench_nometrics_test");
        r.write_to(&dir).unwrap();
        assert!(!dir.join("BENCH_figX.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn direction_names_round_trip() {
        for d in [Direction::LowerIsBetter, Direction::HigherIsBetter] {
            assert_eq!(Direction::parse(d.name()), Some(d));
        }
        assert_eq!(Direction::parse("sideways"), None);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert!(secs(0.5e-3).ends_with("µs") || secs(0.5e-3).ends_with("ms"));
        assert_eq!(secs(2.0), "2.00s");
    }
}
