//! Markdown and CSV emission for experiment results.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A rectangular table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ =
            writeln!(s, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        s
    }

    /// Renders CSV (naive quoting: fields containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |f: &str| {
            if f.contains(',') || f.contains('"') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.to_string()
            }
        };
        let mut s = String::new();
        let _ =
            writeln!(s, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.iter().map(|f| esc(f)).collect::<Vec<_>>().join(","));
        }
        s
    }
}

/// A complete experiment report: a title, commentary, and tables.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id (e.g. `fig2`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Free-form notes (expected paper shape, caveats).
    pub notes: Vec<String>,
    /// Named tables.
    pub tables: Vec<(String, Table)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str) -> Self {
        Report { id: id.into(), title: title.into(), ..Default::default() }
    }

    /// Adds a commentary line.
    pub fn note<S: Into<String>>(&mut self, s: S) {
        self.notes.push(s.into());
    }

    /// Adds a named table.
    pub fn add_table<S: Into<String>>(&mut self, name: S, t: Table) {
        self.tables.push((name.into(), t));
    }

    /// Renders the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## {} — {}\n", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(s, "> {n}");
        }
        if !self.notes.is_empty() {
            let _ = writeln!(s);
        }
        for (name, t) in &self.tables {
            let _ = writeln!(s, "### {name}\n");
            let _ = writeln!(s, "{}", t.to_markdown());
        }
        s
    }

    /// Writes `<id>.md` plus one CSV per table into `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut md = std::fs::File::create(dir.join(format!("{}.md", self.id)))?;
        md.write_all(self.to_markdown().as_bytes())?;
        for (i, (name, t)) in self.tables.iter().enumerate() {
            let safe: String = name
                .chars()
                .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect();
            let mut f = std::fs::File::create(dir.join(format!("{}_{}_{}.csv", self.id, i, safe)))?;
            f.write_all(t.to_csv().as_bytes())?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (speedups, ratios).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats seconds with adaptive precision.
pub fn secs(x: f64) -> String {
    if x < 1e-3 {
        format!("{:.1}µs", x * 1e6)
    } else if x < 1.0 {
        format!("{:.2}ms", x * 1e3)
    } else {
        format!("{x:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_and_csv() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "x,y"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | x,y |"));
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn report_renders_and_writes() {
        let mut r = Report::new("figX", "Test");
        r.note("a note");
        let mut t = Table::new(vec!["c"]);
        t.push_row(vec!["v"]);
        r.add_table("main", t);
        let md = r.to_markdown();
        assert!(md.contains("## figX — Test"));
        assert!(md.contains("> a note"));
        let dir = std::env::temp_dir().join("cw_bench_report_test");
        r.write_to(&dir).unwrap();
        assert!(dir.join("figX.md").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert!(secs(0.5e-3).ends_with("µs") || secs(0.5e-3).ends_with("ms"));
        assert_eq!(secs(2.0), "2.00s");
    }
}
