//! `perf_gate` — diffs freshly emitted `BENCH_*.json` reports against a
//! checked-in baseline and fails on warm-path regressions.
//!
//! ```text
//! perf_gate --current DIR [--baseline FILE] [--tolerance 0.25]
//!           [--hard-tolerance 1.0] [--noise-floor-s 1e-4]
//!           [--write-baseline FILE]
//! ```
//!
//! The gate contract (documented in `docs/ARCHITECTURE.md`):
//!
//! * **Warm-path timings** — metrics named `warm…` are normalized by
//!   their experiment's `anchor_s` machine-speed probe (a fixed reference
//!   SpGEMM timed in the same run), so a faster or slower CI machine
//!   shifts numerator and denominator together. Two failure modes:
//!   **systemic** — the *median* normalized current ÷ baseline ratio
//!   across all warm metrics exceeds `1 + tolerance` (default 25%), a
//!   codebase-wide slowdown (the median is what makes the gate robust on
//!   shared CI runners, where any single timing can spike ~30% while a
//!   real regression shifts the whole distribution) — and **hard**: any
//!   single metric regresses beyond `1 + hard_tolerance` (default 2×), a
//!   localized but unambiguous regression. Baseline entries faster than
//!   the noise floor (default 100µs) are skipped — microsecond medians
//!   are timer noise, not signal.
//! * **Bounded metrics** — metrics named `bounded…` are gated
//!   *absolutely*: the baseline entry's value is a pinned ceiling
//!   (`direction: lower`) or floor (`direction: higher`), not a past
//!   measurement to ratio against. Used for contract-style bars like the
//!   obs tracing-overhead fraction (`bounded_obs_overhead_frac`), where
//!   the acceptable value is a policy, not a machine speed.
//! * **Quality metrics** (plan agreement, held-out error, speedups) are
//!   informational in the gate; their hard bars are asserted
//!   deterministically in `tests/calibration.rs`.
//! * A baseline metric missing from the current run fails (metric names
//!   are the diff keys and must stay stable); new metrics pass with a
//!   note until the baseline is refreshed.
//!
//! `--write-baseline` merges the current reports into a fresh baseline
//! file instead of gating — how `ci/bench_baseline.json` is (re)generated
//! (the CI `workflow_dispatch` input `refresh_baseline` runs exactly
//! this and uploads the result as an artifact to commit).

use cw_bench::report::{Direction, BENCH_JSON_SCHEMA_VERSION};
use cw_engine::calibrate::json::{self, escape, JsonValue};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One metric with its owning experiment.
#[derive(Debug, Clone)]
struct Entry {
    experiment: String,
    name: String,
    value: f64,
    direction: Direction,
}

fn usage() -> ! {
    eprintln!(
        "usage: perf_gate --current DIR [--baseline FILE] [--tolerance 0.25]\n\
         \x20      [--hard-tolerance 1.0] [--noise-floor-s 1e-4] [--write-baseline FILE]"
    );
    std::process::exit(2)
}

fn parse_doc(text: &str, what: &str) -> Result<JsonValue, String> {
    let doc = json::parse(text).map_err(|e| format!("{what}: {e}"))?;
    let version = doc.get("schema_version").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
    if version != BENCH_JSON_SCHEMA_VERSION {
        return Err(format!(
            "{what}: schema_version {version} (this build reads {BENCH_JSON_SCHEMA_VERSION})"
        ));
    }
    Ok(doc)
}

/// Reads every `BENCH_*.json` in `dir` into a flat entry list.
fn read_current(dir: &Path) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|f| f.ok().map(|f| f.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no BENCH_*.json found in {}", dir.display()));
    }
    for path in files {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path:?}: {e}"))?;
        let doc = parse_doc(&text, &path.display().to_string())?;
        let experiment = doc
            .get("experiment")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{}: missing experiment", path.display()))?
            .to_string();
        for m in doc.get("metrics").and_then(JsonValue::as_array).unwrap_or(&[]) {
            entries.push(parse_metric(m, &experiment)?);
        }
    }
    Ok(entries)
}

fn parse_metric(m: &JsonValue, experiment: &str) -> Result<Entry, String> {
    let name = m.get("name").and_then(JsonValue::as_str).ok_or("metric missing name")?.to_string();
    let value =
        m.get("value").and_then(JsonValue::as_f64).ok_or_else(|| format!("{name}: no value"))?;
    let direction = m
        .get("direction")
        .and_then(JsonValue::as_str)
        .and_then(Direction::parse)
        .ok_or_else(|| format!("{name}: bad direction"))?;
    let experiment =
        m.get("experiment").and_then(JsonValue::as_str).unwrap_or(experiment).to_string();
    Ok(Entry { experiment, name, value, direction })
}

/// Reads a merged baseline file.
fn read_baseline(path: &Path) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = parse_doc(&text, &path.display().to_string())?;
    let mut entries = Vec::new();
    for m in doc.get("metrics").and_then(JsonValue::as_array).unwrap_or(&[]) {
        entries.push(parse_metric(m, "")?);
    }
    Ok(entries)
}

fn write_baseline(path: &Path, entries: &[Entry]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema_version\": {BENCH_JSON_SCHEMA_VERSION},\n"));
    s.push_str("  \"metrics\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"name\": \"{}\", \"value\": {:?}, \
             \"direction\": \"{}\"}}{comma}\n",
            escape(&e.experiment),
            escape(&e.name),
            e.value,
            e.direction.name()
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn find<'a>(entries: &'a [Entry], experiment: &str, name: &str) -> Option<&'a Entry> {
    entries.iter().find(|e| e.experiment == experiment && e.name == name)
}

/// Is this metric a warm-path timing (anchor-normalized, gated)?
fn is_warm_timing(e: &Entry) -> bool {
    e.direction == Direction::LowerIsBetter && e.name.starts_with("warm")
}

/// Is this metric an absolute bound (the baseline value is a pinned
/// ceiling/floor, gated without normalization)?
fn is_bounded(e: &Entry) -> bool {
    e.name.starts_with("bounded")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut current_dir: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_path: Option<PathBuf> = None;
    let mut tolerance = 0.25f64;
    let mut hard_tolerance = 1.0f64;
    let mut noise_floor = 1e-4f64;
    let mut i = 0;
    while i < args.len() {
        let arg = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--current" => current_dir = Some(PathBuf::from(arg(&mut i))),
            "--baseline" => baseline_path = Some(PathBuf::from(arg(&mut i))),
            "--write-baseline" => write_path = Some(PathBuf::from(arg(&mut i))),
            "--tolerance" => tolerance = arg(&mut i).parse().unwrap_or_else(|_| usage()),
            "--hard-tolerance" => hard_tolerance = arg(&mut i).parse().unwrap_or_else(|_| usage()),
            "--noise-floor-s" => noise_floor = arg(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    let current_dir = current_dir.unwrap_or_else(|| usage());

    let current = match read_current(&current_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("[perf-gate] {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = write_path {
        // Bounded metrics carry *policy* ceilings (e.g. the 5% obs
        // tracing-overhead budget), not measurements: a refresh must carry
        // the pinned bound forward from the old baseline, never replace it
        // with whatever this run happened to measure.
        let mut entries = current.clone();
        if let Some(old_path) = &baseline_path {
            if let Ok(old) = read_baseline(old_path) {
                for e in &mut entries {
                    if is_bounded(e) {
                        if let Some(pinned) = find(&old, &e.experiment, &e.name) {
                            e.value = pinned.value;
                        }
                    }
                }
            }
        }
        if let Err(e) = write_baseline(&path, &entries) {
            eprintln!("[perf-gate] cannot write baseline: {e}");
            return ExitCode::FAILURE;
        }
        println!("[perf-gate] wrote baseline with {} metrics to {}", entries.len(), path.display());
        return ExitCode::SUCCESS;
    }

    let baseline_path = baseline_path.unwrap_or_else(|| usage());
    let baseline = match read_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("[perf-gate] {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0usize;
    let mut skipped = 0usize;
    let mut warm_ratios: Vec<f64> = Vec::new();
    println!(
        "[perf-gate] {} baseline metrics vs {} current (systemic tolerance {:.0}%, hard \
         tolerance {:.0}%, noise floor {:.0}µs)",
        baseline.len(),
        current.len(),
        tolerance * 100.0,
        hard_tolerance * 100.0,
        noise_floor * 1e6
    );
    for b in &baseline {
        let Some(c) = find(&current, &b.experiment, &b.name) else {
            println!("  FAIL {}/{}: missing from current run", b.experiment, b.name);
            failures += 1;
            continue;
        };
        if is_bounded(b) {
            let ok = match b.direction {
                Direction::LowerIsBetter => c.value <= b.value,
                Direction::HigherIsBetter => c.value >= b.value,
            };
            if ok {
                println!(
                    "  ok   {}/{}: {:.6} within pinned bound {:.6}",
                    b.experiment, b.name, c.value, b.value
                );
            } else {
                println!(
                    "  FAIL {}/{}: {:.6} violates pinned bound {:.6}",
                    b.experiment, b.name, c.value, b.value
                );
                failures += 1;
            }
        } else if is_warm_timing(b) {
            if b.value < noise_floor {
                skipped += 1;
                continue;
            }
            // Normalize by each run's own machine-speed anchor when both
            // carry one; raw seconds otherwise.
            let b_anchor = find(&baseline, &b.experiment, "anchor_s").map(|a| a.value);
            let c_anchor = find(&current, &b.experiment, "anchor_s").map(|a| a.value);
            let (bv, cv, how) = match (b_anchor, c_anchor) {
                (Some(ba), Some(ca)) if ba > 0.0 && ca > 0.0 => {
                    (b.value / ba, c.value / ca, "normalized")
                }
                _ => (b.value, c.value, "raw"),
            };
            let ratio = cv / bv.max(1e-300);
            warm_ratios.push(ratio);
            if ratio > 1.0 + hard_tolerance {
                println!(
                    "  FAIL {}/{}: {how} {cv:.4} vs baseline {bv:.4} ({ratio:.2}x > hard \
                     tolerance)",
                    b.experiment, b.name
                );
                failures += 1;
            } else {
                println!(
                    "  ok   {}/{}: {how} {cv:.4} vs baseline {bv:.4} ({ratio:.2}x)",
                    b.experiment, b.name
                );
            }
        } else {
            // Quality metrics and anchors: shown, never gated here — the
            // deterministic quality bars live in tests/calibration.rs.
            println!(
                "  info {}/{}: {:.6} (baseline {:.6})",
                b.experiment, b.name, c.value, b.value
            );
        }
    }
    for c in &current {
        if find(&baseline, &c.experiment, &c.name).is_none() {
            println!(
                "  new  {}/{} = {:.6} (not in baseline; refresh to gate it)",
                c.experiment, c.name, c.value
            );
        }
    }
    // Systemic check: a real regression shifts the whole distribution of
    // warm-path ratios; single-metric spikes on shared runners do not.
    warm_ratios.sort_by(f64::total_cmp);
    let median_ratio =
        if warm_ratios.is_empty() { 1.0 } else { warm_ratios[warm_ratios.len() / 2] };
    if median_ratio > 1.0 + tolerance {
        println!(
            "  FAIL systemic: median warm-path ratio {median_ratio:.3}x exceeds 1 + {:.0}%",
            tolerance * 100.0
        );
        failures += 1;
    }
    println!(
        "[perf-gate] {} warm metrics gated (median ratio {median_ratio:.3}x), {skipped} under \
         noise floor, {failures} failure(s)",
        warm_ratios.len()
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
