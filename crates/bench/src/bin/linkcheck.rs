//! `linkcheck` — fail the build on broken relative markdown links.
//!
//! ```text
//! linkcheck <file-or-dir>...
//! ```
//!
//! Walks every `.md` file named (directories are scanned one level deep),
//! extracts inline links (`[text](target)`) and reference definitions
//! (`[ref]: target`), and verifies that every **relative** target resolves
//! from the file that links it. Fragments are checked too: `other.md#some-
//! heading` must name a heading whose GitHub-style anchor slug matches,
//! and so must same-file `#fragment` links. Absolute URLs (`http://`,
//! `https://`, `mailto:`) are skipped — this tool runs offline and gates
//! only what the repo itself can break. Links inside fenced code blocks
//! and inline code spans are ignored.
//!
//! Exit status: 0 when every link resolves, 1 otherwise (one line per
//! broken link on stderr). CI runs it over `README.md` and `docs/`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: linkcheck <file-or-dir>...");
        return ExitCode::FAILURE;
    }
    let mut files = Vec::new();
    for arg in &args {
        let path = PathBuf::from(arg);
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = match fs::read_dir(&path) {
                Ok(rd) => rd
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|e| e == "md"))
                    .collect(),
                Err(err) => {
                    eprintln!("linkcheck: cannot read {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path);
        }
    }

    let mut broken = 0usize;
    for file in &files {
        let text = match fs::read_to_string(file) {
            Ok(t) => t,
            Err(err) => {
                eprintln!("linkcheck: cannot read {}: {err}", file.display());
                broken += 1;
                continue;
            }
        };
        let prose = strip_code(&text);
        for link in extract_links(&prose) {
            if let Some(reason) = check_link(file, &prose, &link) {
                eprintln!("{}: broken link `{link}`: {reason}", file.display());
                broken += 1;
            }
        }
    }
    if broken > 0 {
        eprintln!("linkcheck: {broken} broken link(s) across {} file(s)", files.len());
        ExitCode::FAILURE
    } else {
        println!("linkcheck: {} file(s) clean", files.len());
        ExitCode::SUCCESS
    }
}

/// Blanks out fenced code blocks and inline code spans (preserving line
/// structure, so heading extraction still sees the right lines).
fn strip_code(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            out.push('\n');
            continue;
        }
        if in_fence {
            out.push('\n');
            continue;
        }
        // Inline code: drop the odd-indexed segments of a backtick split.
        for (i, seg) in line.split('`').enumerate() {
            if i % 2 == 0 {
                out.push_str(seg);
            }
        }
        out.push('\n');
    }
    out
}

/// Inline `[text](target)` links plus `[ref]: target` definitions.
fn extract_links(prose: &str) -> Vec<String> {
    let mut links = Vec::new();
    let bytes = prose.as_bytes();
    let mut i = 0;
    while let Some(open) = prose[i..].find("](").map(|p| p + i) {
        let start = open + 2;
        if let Some(close) = prose[start..].find(')').map(|p| p + start) {
            let target = prose[start..close].trim();
            // `[text](target "title")` — drop the optional title.
            let target = target.split_whitespace().next().unwrap_or("");
            if !target.is_empty() {
                links.push(target.to_string());
            }
            i = close + 1;
        } else {
            break;
        }
        if i >= bytes.len() {
            break;
        }
    }
    for line in prose.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('[') {
            if let Some(end) = rest.find("]:") {
                if let Some(target) = rest[end + 2..].split_whitespace().next() {
                    links.push(target.to_string());
                }
            }
        }
    }
    links
}

/// `None` when the link resolves; otherwise why it doesn't.
fn check_link(file: &Path, prose: &str, link: &str) -> Option<String> {
    if link.starts_with("http://")
        || link.starts_with("https://")
        || link.starts_with("mailto:")
        || link.starts_with("<")
    {
        return None;
    }
    let (path_part, fragment) = match link.split_once('#') {
        Some((p, f)) => (p, Some(f)),
        None => (link, None),
    };
    let target = if path_part.is_empty() {
        file.to_path_buf()
    } else {
        let base = file.parent().unwrap_or(Path::new("."));
        base.join(path_part)
    };
    if !target.exists() {
        return Some(format!("{} does not exist", target.display()));
    }
    if let Some(frag) = fragment {
        if target.extension().is_some_and(|e| e == "md") {
            let text = if path_part.is_empty() {
                prose.to_string()
            } else {
                strip_code(&fs::read_to_string(&target).ok()?)
            };
            let anchors = heading_anchors(&text);
            if !anchors.iter().any(|a| a == frag) {
                return Some(format!("no heading with anchor `#{frag}` in {}", target.display()));
            }
        }
    }
    None
}

/// GitHub-style anchor slugs for every ATX heading: lowercase, punctuation
/// dropped, spaces to hyphens, duplicates suffixed `-1`, `-2`, ….
fn heading_anchors(prose: &str) -> Vec<String> {
    let mut slugs: Vec<String> = Vec::new();
    for line in prose.lines() {
        let trimmed = line.trim_start();
        let level = trimmed.bytes().take_while(|&b| b == b'#').count();
        if !(1..=6).contains(&level) || !trimmed[level..].starts_with(' ') {
            continue;
        }
        let title = unlink(trimmed[level..].trim());
        let mut slug = String::new();
        for ch in title.chars() {
            if ch.is_alphanumeric() {
                slug.extend(ch.to_lowercase());
            } else if ch == ' ' || ch == '-' || ch == '_' {
                slug.push(if ch == ' ' { '-' } else { ch });
            }
        }
        let dups =
            slugs.iter().filter(|s| **s == slug || s.starts_with(&format!("{slug}-"))).count();
        if slugs.contains(&slug) {
            slug = format!("{slug}-{dups}");
        }
        slugs.push(slug);
    }
    slugs
}

/// `[text](url)` → `text`, so link markup inside a heading doesn't leak
/// URL characters into its anchor slug.
fn unlink(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(open) = rest.find('[') {
        out.push_str(&rest[..open]);
        match rest[open..].find("](").map(|p| p + open) {
            Some(mid) => {
                out.push_str(&rest[open + 1..mid]);
                match rest[mid..].find(')').map(|p| p + mid) {
                    Some(close) => rest = &rest[close + 1..],
                    None => {
                        rest = "";
                    }
                }
            }
            None => {
                out.push_str(&rest[open..]);
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}
