//! `paper` — regenerates the paper's figures and tables.
//!
//! ```text
//! paper <fig2|fig3|fig8|fig9|fig10|fig11|table2|table3|table4|ablation|backends|calibrate|engine|net|planner|serving|all>
//!       [--scale small|medium|large] [--subset N] [--reps N]
//!       [--seed N] [--out DIR]
//! ```
//!
//! Markdown is printed to stdout and written (plus per-table CSVs) into the
//! output directory (default `results/`).

use cw_bench::report::Report;
use cw_bench::runner::RunConfig;
use cw_datasets::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: paper <fig2|fig3|fig8|fig9|fig10|fig11|table2|table3|table4|ablation|backends|calibrate|engine|net|planner|serving|all>\n\
         \x20      [--scale small|medium|large] [--subset N] [--reps N] [--seed N] [--out DIR]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let target = args[0].clone();
    let mut cfg = RunConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args.get(i).and_then(|s| Scale::parse(s)).unwrap_or_else(|| usage());
            }
            "--subset" => {
                i += 1;
                cfg.subset =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--reps" => {
                i += 1;
                cfg.reps = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                cfg.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }

    let run_one = |name: &str, cfg: &RunConfig| -> Option<Report> {
        let t0 = std::time::Instant::now();
        let rep = match name {
            "fig2" => cw_bench::experiments::fig2::run(cfg),
            "fig3" => cw_bench::experiments::fig3::run(cfg),
            "fig8" => cw_bench::experiments::fig8::run(cfg),
            "fig9" => cw_bench::experiments::fig9::run(cfg),
            "fig10" => cw_bench::experiments::fig10::run(cfg),
            "fig11" => cw_bench::experiments::fig11::run(cfg),
            "table2" => cw_bench::experiments::table2::run(cfg),
            "table3" => cw_bench::experiments::table3::run(cfg),
            "table4" => cw_bench::experiments::table4::run(cfg),
            "ablation" => cw_bench::experiments::ablation::run(cfg),
            "backends" => cw_bench::experiments::backends::run(cfg),
            "calibrate" => cw_bench::experiments::calibrate::run(cfg),
            "corpus" => cw_bench::experiments::corpus::run(cfg),
            "engine" => cw_bench::experiments::engine::run(cfg),
            "net" => cw_bench::experiments::net::run(cfg),
            "planner" => cw_bench::experiments::planner::run(cfg),
            "serving" => cw_bench::experiments::serving::run(cfg),
            "summary" => cw_bench::experiments::summary::run(cfg),
            _ => return None,
        };
        eprintln!("[paper] {name} finished in {:.1}s", t0.elapsed().as_secs_f64());
        Some(rep)
    };

    let targets: Vec<&str> = if target == "all" {
        vec!["fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "table2", "table3", "table4"]
    } else {
        vec![target.as_str()]
    };

    for name in targets {
        match run_one(name, &cfg) {
            Some(rep) => {
                println!("{}", rep.to_markdown());
                if let Err(e) = rep.write_to(&out_dir) {
                    eprintln!("[paper] failed to write {name} results: {e}");
                    return ExitCode::FAILURE;
                }
            }
            None => usage(),
        }
    }
    ExitCode::SUCCESS
}
