//! Corpus inventory: the 110 datasets with their structural statistics —
//! the reproduction's analogue of the paper's dataset table (§4.1).

use crate::report::{Report, Table};
use crate::runner::RunConfig;
use cw_sparse::stats::stats;

/// Builds the inventory report (builds every matrix; no kernel timing).
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::corpus(cfg.scale));
    let mut rep = Report::new("corpus", "Dataset inventory with structural statistics");
    rep.note(format!(
        "{} synthetic datasets at scale {:?}; categories mirror the paper's SuiteSparse families.",
        datasets.len(),
        cfg.scale
    ));
    let mut t = Table::new(vec![
        "dataset",
        "category",
        "n",
        "nnz",
        "avg nnz/row",
        "max nnz/row",
        "bandwidth",
        "consecutive Jaccard",
    ]);
    for d in &datasets {
        let a = d.build(cfg.scale);
        let s = stats(&a);
        t.push_row(vec![
            d.name.to_string(),
            format!("{:?}", d.category),
            s.nrows.to_string(),
            s.nnz.to_string(),
            format!("{:.1}", s.avg_row_nnz),
            s.max_row_nnz.to_string(),
            s.bandwidth.to_string(),
            format!("{:.3}", s.avg_consecutive_jaccard),
        ]);
    }
    rep.add_table("inventory", t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_datasets::Scale;

    #[test]
    fn corpus_report_lists_subset() {
        let cfg = RunConfig { subset: Some(5), scale: Scale::Small, ..Default::default() };
        let rep = run(&cfg);
        assert_eq!(rep.tables[0].1.rows.len(), 5);
    }
}
