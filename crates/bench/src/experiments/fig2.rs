//! Figure 2: speedup of row-wise SpGEMM (`A²`) after each of the 10
//! reorderings, relative to the original order, across the corpus.
//!
//! The paper renders this as box plots; we emit the box quantiles per
//! algorithm plus the raw per-(dataset, algorithm) records.

use crate::experiments::sweep::{rowwise_sweep, RowwiseRecord};
use crate::report::{f2, Report, Table};
use crate::runner::RunConfig;
use crate::stats::{quantiles, summarize_speedups, unique_stable};
use cw_reorder::Reordering;

/// Runs the Fig. 2 experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::corpus(cfg.scale));
    let algos = Reordering::all_ten();
    let records = rowwise_sweep(&datasets, &algos, cfg);
    render(&records, datasets.len())
}

/// Renders the report from sweep records (separated for testing).
pub fn render(records: &[RowwiseRecord], ndatasets: usize) -> Report {
    let mut rep = Report::new("fig2", "Row-wise SpGEMM speedup after reordering (box plots)");
    rep.note(format!(
        "{ndatasets} datasets; speedup = t(original order) / t(reordered), A² workload."
    ));
    rep.note("Paper shape: HP/GP/RCM medians above 1; Shuffled median well below 1; wide whiskers on mesh-heavy algorithms.");

    let mut summary =
        Table::new(vec!["Algorithm", "min", "q1", "median", "q3", "max", "GM", "Pos.%"]);
    let algo_names = unique_stable(records.iter().map(|r| r.algo));
    for algo in algo_names {
        let speeds: Vec<f64> =
            records.iter().filter(|r| r.algo == algo).map(|r| r.speedup).collect();
        if speeds.is_empty() {
            continue;
        }
        let q = quantiles(&speeds).unwrap();
        let s = summarize_speedups(&speeds);
        summary.push_row(vec![
            algo.to_string(),
            f2(q.min),
            f2(q.q1),
            f2(q.median),
            f2(q.q3),
            f2(q.max),
            f2(s.gm),
            f2(s.pos_pct),
        ]);
    }
    rep.add_table("box-quantiles per algorithm", summary);

    let mut raw = Table::new(vec!["dataset", "algorithm", "speedup", "preprocess_s", "base_s"]);
    for r in records {
        raw.push_row(vec![
            r.dataset.to_string(),
            r.algo.to_string(),
            format!("{:.4}", r.speedup),
            format!("{:.6}", r.preprocess_seconds),
            format!("{:.6}", r.base_seconds),
        ]);
    }
    rep.add_table("raw records", raw);
    rep
}
