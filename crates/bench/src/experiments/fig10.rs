//! Figure 10: performance profile of reordering overhead — for each point
//! `(x, y)`, the reordering cost is amortized after `x` SpGEMM iterations
//! for a fraction `y` of the input problems (positive cases only).
//!
//! Matching the paper, HP is excluded (its overhead dwarfs the x-range) and
//! Hierarchical is included (its preprocessing is the clustering itself).

use crate::experiments::sweep::{cluster_sweep, rowwise_sweep};
use crate::report::{Report, Table};
use crate::runner::{ClusterScheme, RunConfig};
use crate::stats::{performance_profile, unique_stable};
use cw_reorder::Reordering;

/// Amortization iterations: preprocessing seconds divided by per-run
/// savings. Only meaningful for speedups > 1.
pub fn amortization_runs(preprocess: f64, base: f64, optimized: f64) -> Option<f64> {
    let saving = base - optimized;
    if saving <= 0.0 {
        return None;
    }
    Some(preprocess / saving)
}

/// Runs the Fig. 10 experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::corpus(cfg.scale));
    // Row-wise reorderings, minus HP (as the paper does).
    let algos: Vec<Reordering> =
        Reordering::all_ten().into_iter().filter(|a| !matches!(a, Reordering::Hp(_))).collect();
    let rw = rowwise_sweep(&datasets, &algos, cfg);
    let hier =
        cluster_sweep(&datasets, &[(ClusterScheme::Hierarchical, Reordering::Original)], cfg);

    let thresholds: Vec<f64> = (0..=20).map(|x| x as f64).collect();
    let mut rep = Report::new("fig10", "Performance profile of reordering/clustering overhead");
    rep.note("For each point (x, y): preprocessing is amortized within x SpGEMM runs on fraction y of the problems that improved.");
    rep.note("Paper shape: cheap orderings (Shuffled/Degree/Rabbit) amortize within ~5 runs; RCM/GP need many more; Hierarchical amortizes ≤20 runs on ~90% of its positive cases.");

    let mut t = Table::new(vec!["Algorithm", "positive cases"]);
    for &x in &thresholds {
        t.headers.push(format!("x={x:.0}"));
    }
    // Re-create the table with full headers (Table requires fixed arity).
    let mut t = Table::new(t.headers.clone());

    let algo_names = unique_stable(rw.iter().map(|r| r.algo));
    for algo in algo_names {
        let runs: Vec<f64> = rw
            .iter()
            .filter(|r| r.algo == algo)
            .filter_map(|r| {
                amortization_runs(r.preprocess_seconds, r.base_seconds, r.kernel_seconds)
            })
            .collect();
        let prof = performance_profile(&runs, &thresholds);
        let mut row = vec![algo.to_string(), runs.len().to_string()];
        row.extend(prof.iter().map(|&(_, y)| format!("{y:.2}")));
        t.push_row(row);
    }
    // Hierarchical clustering's profile.
    let hruns: Vec<f64> = hier
        .iter()
        .filter_map(|r| amortization_runs(r.preprocess_seconds, r.base_seconds, r.kernel_seconds))
        .collect();
    let prof = performance_profile(&hruns, &thresholds);
    let mut row = vec!["Hierarchical".to_string(), hruns.len().to_string()];
    row.extend(prof.iter().map(|&(_, y)| format!("{y:.2}")));
    t.push_row(row);

    rep.add_table("fraction of positive problems amortized within x runs", t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_math() {
        // 10s preprocessing, saves 2s per run -> 5 runs.
        assert_eq!(amortization_runs(10.0, 5.0, 3.0), Some(5.0));
        // No saving -> None.
        assert_eq!(amortization_runs(10.0, 3.0, 3.0), None);
        assert_eq!(amortization_runs(10.0, 3.0, 4.0), None);
    }
}
