//! Table 4: hierarchical cluster-wise SpGEMM vs row-wise SpGEMM per BC
//! frontier iteration (`i1..i10`) on the tall-skinny suite.
//!
//! The matrix is hierarchically clustered **once**; the clustered operand
//! is reused across every frontier iteration — the paper's argument for
//! amortizing preprocessing over repeated multiplications.

use crate::experiments::table3::{ITERS, SOURCES};
use crate::report::{f2, Report, Table};
use crate::runner::{time_clusterwise, time_rowwise, RunConfig};
use cw_core::hierarchical_clustering;
use cw_datasets::frontier::bc_frontiers;

/// Runs the Table 4 experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cw_datasets::tall_skinny_suite(cfg.scale);

    let mut rep = Report::new(
        "table4",
        "Hierarchical cluster-wise vs row-wise SpGEMM per BC frontier iteration",
    );
    rep.note("One hierarchical clustering of A serves all frontier iterations.");
    rep.note("Paper shape: datasets that benefit on A² (meshes, road) also benefit here, often most in early iterations where frontiers are densest.");

    let mut headers = vec!["Dataset".to_string()];
    headers.extend((1..=ITERS).map(|i| format!("i{i}")));
    headers.push("Mean".to_string());
    let mut t = Table::new(headers);

    for d in &datasets {
        let a = d.build(cfg.scale);
        let frontiers = bc_frontiers(&a, SOURCES, ITERS, cfg.seed ^ 0xF0);
        let h = hierarchical_clustering(&a, &cfg.cluster);
        let (cc, _pa) = h.build_symmetric(&a);
        let mut row = vec![d.name.to_string()];
        let mut total = 0.0;
        let mut counted = 0usize;
        for i in 0..ITERS {
            if let Some(f) = frontiers.get(i) {
                let base = time_rowwise(&a, f, cfg.reps);
                let pf = h.perm.permute_rows(f);
                let opt = time_clusterwise(&cc, &pf, cfg.reps);
                let s = base / opt;
                total += s;
                counted += 1;
                row.push(f2(s));
            } else {
                row.push("-".to_string());
            }
        }
        row.push(if counted > 0 { f2(total / counted as f64) } else { "-".to_string() });
        t.push_row(row);
    }
    rep.add_table("speedup per frontier iteration", t);
    rep
}
