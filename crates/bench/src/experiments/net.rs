//! Net experiment: the same offered-load idea as `serving`, but through
//! the `CWNP` wire protocol — what does crossing a socket cost?
//!
//! Three probes:
//!
//! * **Wire overhead** — warm p50 through a live endpoint vs warm p50 of
//!   direct `SpgemmService` submits on the same operands. The ratio
//!   (framing + CSRB codec + loopback TCP tax) is gated absolutely by the
//!   perf gate's `bounded_` contract.
//! * **Concurrency sweep** — N client connections hammering the endpoint
//!   at once: throughput, p50/p99 wire latency.
//! * **Deadline shed** — a mixed open-loop burst where half the requests
//!   carry a deadline shorter than the server's batch window; the shed
//!   fraction confirms QoS rejects exactly the hopeless half.
//!
//! The endpoint is a real `cw-serve` process when the binary is present
//! next to the running executable (CI builds it first); otherwise an
//! in-process `NetServer` serves on the same protocol — the report notes
//! which mode ran.

use crate::report::{Direction, Report, Table};
use crate::runner::{anchor_seconds, RunConfig};
use cw_net::{ClientConfig, NetClient, NetServer, NetServerConfig, Qos, RejectCode};
use cw_service::{MultiplyRequest, ServiceConfig, SpgemmService};
use cw_sparse::CsrMatrix;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client connection counts swept.
const CLIENT_COUNTS: [usize; 3] = [1, 2, 4];
/// Warm requests measured per client per sweep cell.
const REQUESTS_PER_CLIENT: usize = 16;
/// Alternating wire/in-process rounds in the overhead probe.
const OVERHEAD_ROUNDS: usize = 3;
/// Warm requests measured per overhead round.
const OVERHEAD_REQUESTS: usize = 48;
/// Requests in the deadline-shed burst (half deadlined, half not).
const SHED_REQUESTS: usize = 20;

/// One wire endpoint: a spawned `cw-serve` process when the binary is
/// available, an in-process [`NetServer`] otherwise.
enum Endpoint {
    Process(std::process::Child),
    InProcess(NetServer),
}

struct WireServer {
    // `Option` so `finish` can move the endpoint out from under the
    // kill-on-drop safety net below.
    endpoint: Option<Endpoint>,
    addr: SocketAddr,
}

impl WireServer {
    /// Starts an endpoint with the given service shape.
    fn start(shards: usize, window: Duration, queue_capacity: usize, seed: u64) -> WireServer {
        if let Some(bin) = find_cw_serve() {
            if let Some(server) = spawn_serve(&bin, shards, window, queue_capacity, seed) {
                return server;
            }
        }
        let service = SpgemmService::new(ServiceConfig {
            shards,
            batch_window: window,
            queue_capacity,
            seed,
            ..ServiceConfig::default()
        });
        let server = NetServer::bind(service, "127.0.0.1:0", NetServerConfig::default())
            .expect("bind in-process endpoint");
        let addr = server.local_addr();
        WireServer { endpoint: Some(Endpoint::InProcess(server)), addr }
    }

    fn mode(&self) -> &'static str {
        match self.endpoint {
            Some(Endpoint::Process(_)) => "cw-serve process",
            _ => "in-process NetServer (cw-serve binary not found)",
        }
    }

    /// Asks the endpoint to drain via the wire, then reaps it.
    fn finish(mut self, client: &mut NetClient) {
        let _ = client.shutdown_server();
        match self.endpoint.take() {
            Some(Endpoint::Process(mut child)) => {
                let _ = child.wait();
            }
            Some(Endpoint::InProcess(server)) => {
                server.shutdown();
            }
            None => {}
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        // Safety net for panics mid-measurement: never leak a cw-serve
        // process (an in-process NetServer drains via its own Drop).
        if let Some(Endpoint::Process(child)) = &mut self.endpoint {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// `cw-serve` sits next to whatever binary is running (`paper`, a test
/// runner under `deps/`) when the workspace was built with it.
fn find_cw_serve() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for base in [dir, dir.parent()?] {
        let candidate = base.join("cw-serve");
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

fn spawn_serve(
    bin: &PathBuf,
    shards: usize,
    window: Duration,
    queue_capacity: usize,
    seed: u64,
) -> Option<WireServer> {
    let mut child = std::process::Command::new(bin)
        .args(["--addr", "127.0.0.1:0"])
        .args(["--shards", &shards.to_string()])
        .args(["--window-ms", &window.as_millis().to_string()])
        .args(["--queue-capacity", &queue_capacity.to_string()])
        .args(["--seed", &seed.to_string()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .ok()?;
    let stdout = child.stdout.take()?;
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).ok()?;
    let addr: SocketAddr = banner.trim().strip_prefix("cw-serve listening on ")?.parse().ok()?;
    Some(WireServer { endpoint: Some(Endpoint::Process(child)), addr })
}

fn connect(addr: SocketAddr) -> NetClient {
    NetClient::connect(addr, ClientConfig::default()).expect("connect endpoint")
}

fn p50(latencies: &mut [f64]) -> f64 {
    latencies.sort_by(f64::total_cmp);
    latencies.get(latencies.len() / 2).copied().unwrap_or(f64::NAN)
}

fn p99(latencies: &mut [f64]) -> f64 {
    latencies.sort_by(f64::total_cmp);
    if latencies.is_empty() {
        return f64::NAN;
    }
    latencies[((latencies.len() - 1) * 99) / 100]
}

/// Warm p50 of direct in-process service submits (the wire-free baseline).
fn inproc_round(mats: &[Arc<CsrMatrix>], seed: u64) -> f64 {
    let service = SpgemmService::new(ServiceConfig {
        shards: 2,
        batch_window: Duration::ZERO,
        queue_capacity: OVERHEAD_REQUESTS * 2 + 64,
        seed,
        ..ServiceConfig::default()
    });
    for a in mats {
        let _ = service
            .submit(MultiplyRequest::new(Arc::clone(a), Arc::clone(a)))
            .expect("queue sized to load")
            .wait();
    }
    let mut lat = Vec::with_capacity(OVERHEAD_REQUESTS);
    for i in 0..OVERHEAD_REQUESTS {
        let a = &mats[i % mats.len()];
        let t0 = Instant::now();
        let ok = service
            .submit(MultiplyRequest::new(Arc::clone(a), Arc::clone(a)))
            .expect("queue sized to load")
            .wait()
            .is_ok();
        if ok {
            lat.push(t0.elapsed().as_secs_f64());
        }
    }
    service.shutdown();
    p50(&mut lat)
}

/// Warm (p50, p99) of the same traffic through a fresh wire endpoint.
fn wire_round(mats: &[Arc<CsrMatrix>], seed: u64) -> (f64, f64) {
    let server = WireServer::start(2, Duration::ZERO, OVERHEAD_REQUESTS * 2 + 64, seed);
    let mut client = connect(server.addr);
    for a in mats {
        client.multiply(a, a).expect("warmup serves");
    }
    let mut lat = Vec::with_capacity(OVERHEAD_REQUESTS);
    for i in 0..OVERHEAD_REQUESTS {
        let a = &mats[i % mats.len()];
        let t0 = Instant::now();
        if client.multiply(a, a).is_ok() {
            lat.push(t0.elapsed().as_secs_f64());
        }
    }
    server.finish(&mut client);
    (p50(&mut lat), p99(&mut lat))
}

/// Runs the net experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::representative(cfg.scale));
    let mats: Vec<Arc<CsrMatrix>> = datasets.iter().map(|d| Arc::new(d.build(cfg.scale))).collect();

    let mut rep = Report::new(
        "net",
        "CWNP wire serving: overhead vs in-process, concurrency sweep, deadline shed",
    );
    rep.note(
        "wire latency is wall-clock around NetClient::multiply (encode + TCP + admission + \
         execution + decode); the in-process baseline is wall-clock around submit+wait on the \
         same warm operands.",
    );

    // --- Concurrency sweep: N connections at once ---
    let mut t = Table::new(vec![
        "clients",
        "requests",
        "served",
        "rejected",
        "wall s",
        "throughput req/s",
        "wire p50 ms",
        "wire p99 ms",
    ]);
    let mut sweep_mode = "";
    for clients in CLIENT_COUNTS {
        let total = clients * REQUESTS_PER_CLIENT;
        let server = WireServer::start(2, Duration::ZERO, total * 2 + 64, cfg.seed);
        sweep_mode = server.mode();
        let mut warm = connect(server.addr);
        for a in &mats {
            warm.multiply(a, a).expect("warmup serves");
        }
        let t0 = Instant::now();
        let mut all_lat: Vec<f64> = Vec::with_capacity(total);
        let mut served = 0u64;
        let mut rejected = 0u64;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let mats = &mats;
                    let addr = server.addr;
                    scope.spawn(move || {
                        let mut client = connect(addr);
                        let mut lat = Vec::with_capacity(REQUESTS_PER_CLIENT);
                        let mut served = 0u64;
                        let mut rejected = 0u64;
                        for i in 0..REQUESTS_PER_CLIENT {
                            let a = &mats[(c + i) % mats.len()];
                            let t0 = Instant::now();
                            match client.multiply(a, a) {
                                Ok(_) => {
                                    served += 1;
                                    lat.push(t0.elapsed().as_secs_f64());
                                }
                                Err(_) => rejected += 1,
                            }
                        }
                        (lat, served, rejected)
                    })
                })
                .collect();
            for h in handles {
                let (lat, s, r) = h.join().expect("client thread");
                all_lat.extend(lat);
                served += s;
                rejected += r;
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        let mut finisher = connect(server.addr);
        server.finish(&mut finisher);
        t.push_row(vec![
            clients.to_string(),
            total.to_string(),
            served.to_string(),
            rejected.to_string(),
            format!("{wall:.4}"),
            format!("{:.1}", served as f64 / wall.max(1e-9)),
            format!("{:.3}", p50(&mut all_lat) * 1e3),
            format!("{:.3}", p99(&mut all_lat) * 1e3),
        ]);
    }
    rep.note(format!("endpoint mode: {sweep_mode}."));
    rep.add_table("concurrency sweep", t);

    // --- Wire-overhead probe: alternating wire / in-process rounds ---
    let mut wire_p50 = f64::INFINITY;
    let mut wire_p99 = f64::INFINITY;
    let mut inproc_p50 = f64::INFINITY;
    for round in 0..OVERHEAD_ROUNDS {
        let seed = cfg.seed.wrapping_add(round as u64);
        let (w50, w99) = wire_round(&mats, seed);
        wire_p50 = wire_p50.min(w50);
        wire_p99 = wire_p99.min(w99);
        inproc_p50 = inproc_p50.min(inproc_round(&mats, seed));
    }
    let overhead_ratio = wire_p50 / inproc_p50.max(1e-12);
    rep.note(format!(
        "wire overhead probe: warm p50 {:.1}µs over the wire vs {:.1}µs in-process over {} \
         alternating rounds of {} requests → ratio {:.2} (perf-gated ceiling: see \
         bounded_wire_overhead_ratio in ci/bench_baseline.json).",
        wire_p50 * 1e6,
        inproc_p50 * 1e6,
        OVERHEAD_ROUNDS,
        OVERHEAD_REQUESTS,
        overhead_ratio,
    ));

    // --- Deadline shed: half the burst cannot make its deadline ---
    // The server coalesces under a 25ms batch window; a 1ms deadline
    // expires while parked, so QoS must shed exactly the deadlined half
    // (and nothing else) — rejected before execution, never a stale reply.
    let shed_server = WireServer::start(1, Duration::from_millis(25), SHED_REQUESTS * 2, cfg.seed);
    let mut shed_client = connect(shed_server.addr);
    let a = &mats[0];
    shed_client.multiply(a, a).expect("warmup serves");
    let (mut shed, mut kept) = (0u64, 0u64);
    for i in 0..SHED_REQUESTS {
        let qos = if i % 2 == 0 {
            Qos { deadline: Some(Duration::from_millis(1)), ..Qos::none() }
        } else {
            Qos::none()
        };
        match shed_client.multiply_qos(a, a, qos) {
            Ok(_) => kept += 1,
            Err(e) if e.is_rejected_with(RejectCode::DeadlineExpired) => shed += 1,
            Err(e) => panic!("unexpected wire error in shed burst: {e}"),
        }
    }
    let shed_frac = shed as f64 / SHED_REQUESTS as f64;
    rep.note(format!(
        "deadline shed burst: {SHED_REQUESTS} requests, every other one deadlined at 1ms under \
         a 25ms batch window → {shed} shed, {kept} served (fraction {shed_frac:.2})."
    ));
    // The endpoint's own books — including the net.* wire metrics — as a
    // versioned JSONL artifact (uploaded by the CI net job).
    let obs_jsonl = shed_client.stats_jsonl().expect("stats over the wire");
    shed_server.finish(&mut shed_client);
    rep.attachments.push(("OBS_net.jsonl".to_string(), obs_jsonl));

    rep.add_metric("warm_wire_p50_s", wire_p50, Direction::LowerIsBetter);
    rep.add_metric("warm_inproc_p50_s", inproc_p50, Direction::LowerIsBetter);
    rep.add_metric("bounded_wire_overhead_ratio", overhead_ratio, Direction::LowerIsBetter);
    rep.add_metric("wire_p99_s", wire_p99, Direction::LowerIsBetter);
    rep.add_metric("deadline_shed_frac", shed_frac, Direction::HigherIsBetter);
    rep.add_metric("anchor_s", anchor_seconds(cfg.reps), Direction::LowerIsBetter);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_experiment_measures_wire_and_sheds_deadlines() {
        let cfg = RunConfig { reps: 1, subset: Some(2), ..Default::default() };
        let rep = run(&cfg);
        assert_eq!(rep.id, "net");
        let (_, t) = &rep.tables[0];
        assert_eq!(t.rows.len(), CLIENT_COUNTS.len());
        for row in &t.rows {
            let requests: u64 = row[1].parse().unwrap();
            let served: u64 = row[2].parse().unwrap();
            assert_eq!(served, requests, "queue sized to the load must serve all: {row:?}");
        }

        let metric = |name: &str| {
            rep.metrics.iter().find(|m| m.name == name).unwrap_or_else(|| panic!("missing {name}"))
        };
        assert!(metric("warm_wire_p50_s").value > 0.0);
        assert!(metric("warm_inproc_p50_s").value > 0.0);
        assert!(metric("wire_p99_s").value >= metric("warm_wire_p50_s").value);
        let ratio = metric("bounded_wire_overhead_ratio").value;
        assert!(ratio.is_finite() && ratio > 0.0, "ratio {ratio}");
        // Exactly the deadlined half of the burst was shed.
        assert_eq!(metric("deadline_shed_frac").value, 0.5);

        // The JSONL artifact carries the wire metrics, shed count included.
        let (name, jsonl) =
            rep.attachments.iter().find(|(n, _)| n == "OBS_net.jsonl").expect("obs artifact");
        assert_eq!(name, "OBS_net.jsonl");
        assert!(jsonl.contains("\"net.served\":"), "missing net counters:\n{jsonl}");
        assert!(
            jsonl.contains(&format!("\"net.deadline_shed\":{}", SHED_REQUESTS / 2)),
            "shed count must be visible in the wire metrics:\n{jsonl}"
        );
    }
}
