//! One module per paper artifact (figure or table), each producing a
//! [`crate::report::Report`].

pub mod ablation;
pub mod backends;
pub mod calibrate;
pub mod corpus;
pub mod engine;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig8;
pub mod fig9;
pub mod net;
pub mod planner;
pub mod serving;
pub mod summary;
pub mod sweep;
pub mod table2;
pub mod table3;
pub mod table4;
