//! Engine experiment: the adaptive planned pipeline vs fixed pipelines,
//! and the plan-cache amortization curve.
//!
//! Two questions, mirroring the paper's amortization argument (§4.5,
//! Fig. 10) applied to the new `cw-engine` front door:
//!
//! 1. **Planned vs fixed** — on representative corpus matrices, how does
//!    the planner's chosen pipeline compare (kernel seconds) to always
//!    running the row-wise baseline and to a fixed cluster-wise pipeline?
//! 2. **Amortization** — serving `n` repeated multiplies through the
//!    engine, how does cumulative time fall as the plan cache converts
//!    preprocessing into a one-off cost? The cold path pays
//!    profile+plan+reorder+cluster on every call (cache disabled); the
//!    warm path pays it once.

use crate::report::{Report, Table};
use crate::runner::{time_median, RunConfig};
use cw_engine::{ClusteringStrategy, Engine, KernelChoice, Plan, Planner};
use std::time::Instant;

/// Repeated-multiply counts for the amortization curve.
const CURVE_POINTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the engine experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::representative(cfg.scale));
    let mut rep =
        Report::new("engine", "Adaptive engine vs fixed pipelines, plan-cache amortization");
    rep.note("Planned = planner-chosen pipeline executed via Engine (kernel+postprocess only, prepared operand cached).");
    rep.note("Speedups are vs the row-wise baseline on the unmodified matrix; >1.00 means the planned pipeline is faster.");
    rep.note("Amortization: cumulative seconds serving n identical multiplies; 'cold' re-preprocesses every call, 'cached' prepares once.");

    // --- Table 1: planned vs fixed pipelines ---
    let mut t = Table::new(vec![
        "Dataset",
        "plan",
        "baseline s",
        "fixed-cluster s",
        "planned s",
        "planned speedup",
        "prep s (one-off)",
    ]);
    for d in &datasets {
        let a = d.build(cfg.scale);

        // Fixed pipeline 1: row-wise baseline.
        let base_s = time_median(cfg.reps, || cw_spgemm::spgemm(&a, &a));

        // Fixed pipeline 2: fixed-length cluster-wise, rebuilt per call the
        // first time, then timed on the prepared operand (kernel only).
        let fixed_plan = Plan {
            clustering: ClusteringStrategy::Fixed(cfg.fixed_len),
            kernel: KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let mut fixed_engine = engine_with_seed(cfg.seed);
        let _ = fixed_engine.multiply_planned(&a, &a, fixed_plan); // prepare + warm
        let fixed_s = time_median(cfg.reps, || fixed_engine.multiply_planned(&a, &a, fixed_plan));

        // Planned pipeline: let the planner choose; cache warm after the
        // first call, so the timed region is kernel + postprocess.
        let mut engine = engine_with_seed(cfg.seed);
        let (_, first) = engine.multiply(&a, &a);
        let planned_s = time_median(cfg.reps, || engine.multiply(&a, &a));

        t.push_row(vec![
            d.name.to_string(),
            first.plan.describe(),
            format!("{base_s:.5}"),
            format!("{fixed_s:.5}"),
            format!("{planned_s:.5}"),
            format!("{:.2}", base_s / planned_s.max(1e-12)),
            format!("{:.5}", first.timings.preprocessing()),
        ]);
    }
    rep.add_table("planned pipeline vs fixed pipelines (kernel seconds)", t);

    // --- Table 2: plan-cache amortization curve ---
    let mut t = Table::new({
        let mut h = vec!["Dataset".to_string(), "prep s".to_string()];
        for n in CURVE_POINTS {
            h.push(format!("cold n={n}"));
            h.push(format!("cached n={n}"));
        }
        h.push("hit rate".to_string());
        h
    });
    for d in &datasets {
        let a = d.build(cfg.scale);
        let mut row = vec![d.name.to_string()];

        // One preparation to report the one-off cost.
        let mut probe = engine_with_seed(cfg.seed);
        let (_, first) = probe.multiply(&a, &a);
        row.push(format!("{:.5}", first.timings.preprocessing()));

        let mut cached_engine = engine_with_seed(cfg.seed);
        let mut stats_source = None;
        for n in CURVE_POINTS {
            // Cold: cache disabled, the full pipeline runs every call.
            let mut cold_engine = Engine::new(planner_with_seed(cfg.seed), 0);
            let t0 = Instant::now();
            for _ in 0..n {
                let _ = cold_engine.multiply(&a, &a);
            }
            let cold = t0.elapsed().as_secs_f64();

            // Cached: preprocessing amortizes across the n calls.
            cached_engine.clear_cache();
            let t0 = Instant::now();
            for _ in 0..n {
                let _ = cached_engine.multiply(&a, &a);
            }
            let cached = t0.elapsed().as_secs_f64();
            stats_source = Some(cached_engine.cache_stats());

            row.push(format!("{cold:.5}"));
            row.push(format!("{cached:.5}"));
        }
        let stats = stats_source.unwrap();
        row.push(format!("{:.2}", stats.hit_rate()));
        t.push_row(row);
    }
    rep.add_table("cumulative seconds vs repeated multiplies", t);
    rep
}

fn planner_with_seed(seed: u64) -> Planner {
    Planner::with_seed(seed)
}

fn engine_with_seed(seed: u64) -> Engine {
    Engine::new(planner_with_seed(seed), cw_engine::DEFAULT_CACHE_CAPACITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;

    #[test]
    fn engine_experiment_produces_both_tables() {
        let cfg = RunConfig { reps: 1, subset: Some(2), ..Default::default() };
        let rep = run(&cfg);
        assert_eq!(rep.id, "engine");
        assert_eq!(rep.tables.len(), 2);
        let (_, planned) = &rep.tables[0];
        assert_eq!(planned.rows.len(), 2);
        // Every row carries a parseable speedup.
        for row in &planned.rows {
            let speedup: f64 = row[5].parse().unwrap();
            assert!(speedup > 0.0);
        }
        let (_, curve) = &rep.tables[1];
        assert_eq!(curve.rows.len(), 2);
        // Cached n=8 must not exceed cold n=8 by more than noise: the cache
        // skips preprocessing entirely on 7 of 8 calls.
        for row in &curve.rows {
            let hit_rate: f64 = row.last().unwrap().parse().unwrap();
            assert!(hit_rate > 0.5, "cache should be hitting: {hit_rate}");
        }
    }
}
