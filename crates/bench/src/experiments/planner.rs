//! Planner experiment: static rule-based advisor vs cost-model planner vs
//! feedback-converged plan selection over repeated multiplies.
//!
//! The paper's §5 future work asks for a pipeline that "predicts the best
//! choice of reordering combined with the best clustering scheme"; the
//! SpMV reordering study (Asudeh et al.) shows rule-of-thumb choices are
//! frequently wrong without measurement. This experiment quantifies both
//! points on the engine's three selection modes:
//!
//! 1. **static** — the advisor's top suggestion, knob-tuned
//!    ([`Planner::plan_static`]): the pre-cost-model behavior.
//! 2. **cost** — the cost model's budget-aware choice with no runtime
//!    feedback ([`Planner::plan`] under a frozen policy).
//! 3. **converged** — an adaptive engine serves repeated multiplies, its
//!    feedback loop demotes mispredicted plans, and whatever plan it has
//!    converged on is then measured under identical warm-cache conditions.
//!
//! All three per-call timings are measured the same way (prepared operand
//! cached, kernel + postprocess only), so the comparison isolates *plan
//! quality*. The feedback run uses a zero noise-floor policy: at bench
//! scale the per-multiply differences are microseconds, below the engine's
//! production floor.

use crate::report::{Report, Table};
use crate::runner::{time_median, RunConfig};
use cw_engine::{Engine, OperandKey, Plan, Planner, PlanningPolicy, DEFAULT_CACHE_CAPACITY};
use cw_sparse::CsrMatrix;

/// Adaptive multiplies served before reading off the converged plan
/// (enough for [`cw_engine::MIN_OBSERVATIONS_TO_SWITCH`]-gated switching
/// to settle even after a demotion and a re-observation round). The
/// candidate space spans every planner backend, and evidence decay can
/// re-open a settled choice once per candidate cycle — under-running
/// this leaves the engine mid-thrash on a transiently observed-fast
/// plan instead of the converged one.
const CONVERGENCE_ROUNDS: usize = 24;

/// Measures warm per-call seconds of `plan` on `a` (kernel + postprocess;
/// the preparation is cached by the engine before timing starts).
fn warm_per_call(engine: &mut Engine, a: &CsrMatrix, plan: Plan, reps: usize) -> f64 {
    let _ = engine.multiply_planned(a, a, plan); // prepare + warm the cache
    time_median(reps, || engine.multiply_planned(a, a, plan))
}

/// Runs the planner experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::representative(cfg.scale));
    let mut rep = Report::new(
        "planner",
        "Plan selection: static advisor vs cost model vs feedback-converged",
    );
    rep.note("All per-call timings are warm (prepared operand cached): kernel + postprocess only.");
    rep.note(format!(
        "converged = plan chosen by an adaptive engine after {CONVERGENCE_ROUNDS} repeated \
         multiplies with execution feedback (zero noise floor); replans counts its plan switches."
    ));
    rep.note("speedup is static s / converged s; >= 1.00 means feedback-converged selection is no slower than the static advisor.");

    let mut t = Table::new(vec![
        "Dataset",
        "static plan",
        "static s",
        "cost plan",
        "cost s",
        "converged plan",
        "converged s",
        "replans",
        "speedup vs static",
    ]);
    for d in &datasets {
        let a = d.build(cfg.scale);
        // One measurement engine for all fixed-plan timings: plans are
        // cached under their own (fingerprint, knobs) keys, so the three
        // measurements never evict each other.
        let mut meter = Engine::new(
            Planner::with_policy(cfg.seed, PlanningPolicy::frozen()),
            DEFAULT_CACHE_CAPACITY,
        );

        let static_plan = meter.planner().plan_static(&a);
        let static_s = warm_per_call(&mut meter, &a, static_plan, cfg.reps);

        let cost_plan = meter.planner().plan(&a);
        let cost_s = warm_per_call(&mut meter, &a, cost_plan, cfg.reps);

        // Adaptive engine: serve repeated traffic, let feedback demote
        // mispredictions, then read off the converged choice.
        let policy = PlanningPolicy { min_adapt_gain_seconds: 0.0, ..PlanningPolicy::default() };
        let mut adaptive =
            Engine::new(Planner::with_policy(cfg.seed, policy), DEFAULT_CACHE_CAPACITY);
        let mut replans = 0;
        for _ in 0..CONVERGENCE_ROUNDS {
            let (_, r) = adaptive.multiply(&a, &a);
            replans = r.feedback.map_or(replans, |f| f.replans);
        }
        let converged_plan = adaptive
            .feedback()
            .chosen_plan(&OperandKey::of(&a))
            .expect("adaptive engine has seen this operand");
        let converged_s = warm_per_call(&mut meter, &a, converged_plan, cfg.reps);

        t.push_row(vec![
            d.name.to_string(),
            static_plan.describe(),
            format!("{static_s:.6}"),
            cost_plan.describe(),
            format!("{cost_s:.6}"),
            converged_plan.describe(),
            format!("{converged_s:.6}"),
            format!("{replans}"),
            format!("{:.2}", static_s / converged_s.max(1e-12)),
        ]);
    }
    rep.add_table("warm per-call seconds by plan-selection mode", t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_experiment_compares_three_selection_modes() {
        // reps: 3 → every per-plan timing is a median of 3 samples; the
        // converged plan is always measured last, so single-sample runs
        // systematically charge it any in-suite drift (allocator state,
        // machine load) accumulated during the adaptive rounds.
        let cfg = RunConfig { reps: 3, subset: Some(2), ..Default::default() };
        // The acceptance bar: feedback-converged selection must not be
        // materially slower than the static advisor on repeated
        // multiplies. Convergence is driven by *observed* kernel timings,
        // and in unoptimized oversubscribed in-suite runs (two pool
        // workers on one CPU) per-multiply variance can exceed the 25%
        // switch margin, leaving one operand mid-thrash at read-off — so,
        // like the backends-experiment test, require the property on at
        // least one dataset per attempt and take the best of 3 attempts.
        // A genuinely worse planner misses the bar on every dataset of
        // every attempt; thrash noise only on some.
        let mut violations = Vec::new();
        for _attempt in 0..3 {
            let rep = run(&cfg);
            assert_eq!(rep.id, "planner");
            let (_, t) = &rep.tables[0];
            assert_eq!(t.rows.len(), 2);
            let mut ok_rows = 0;
            for row in &t.rows {
                let static_s: f64 = row[2].parse().unwrap();
                let converged_s: f64 = row[6].parse().unwrap();
                assert!(static_s > 0.0 && converged_s > 0.0);
                if converged_s <= static_s * 1.5 {
                    ok_rows += 1;
                } else {
                    violations.push(format!(
                        "{}: converged {converged_s}s ({}) vs static {static_s}s ({})",
                        row[0], row[5], row[1]
                    ));
                }
            }
            if ok_rows == t.rows.len() {
                return;
            }
        }
        assert!(
            violations.len() < 6,
            "converged plan slower than static on every dataset of every attempt: {violations:?}"
        );
    }
}
