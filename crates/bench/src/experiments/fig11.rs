//! Figure 11: memory requirement of cluster-wise SpGEMM relative to the
//! row-wise (CSR) baseline — a CDF over the corpus per clustering scheme.

use crate::report::{f2, Report, Table};
use crate::runner::{build_clustered, ClusterScheme, RunConfig};
use crate::stats::{performance_profile, quantiles};
use cw_core::memory::memory_report;

/// Computes the per-dataset memory ratios for one scheme.
pub fn ratios_for_scheme(cfg: &RunConfig, scheme: ClusterScheme) -> Vec<(&'static str, f64)> {
    let datasets = cfg.select(cw_datasets::corpus(cfg.scale));
    datasets
        .iter()
        .map(|d| {
            let a = d.build(cfg.scale);
            let (cc, _, square) = build_clustered(&a, scheme, cfg);
            // For hierarchical the baseline is the (permuted) CSR — same
            // bytes as the original, but keep the comparison honest.
            let r = memory_report(&cc, &square);
            (d.name, r.ratio)
        })
        .collect()
}

/// Runs the Fig. 11 experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let mut rep =
        Report::new("fig11", "Memory of CSR_Cluster relative to CSR (CDF across the corpus)");
    rep.note("Ratio < 1 means the clustered format is smaller than CSR (shared union column ids beat padding).");
    rep.note("Paper shape: variable-length lowest overhead, fixed-length highest (padding), hierarchical in between; many cases below 1×.");

    let schemes = [ClusterScheme::Fixed, ClusterScheme::Variable, ClusterScheme::Hierarchical];
    let thresholds: Vec<f64> = [0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 5.0].to_vec();

    let mut cdf_table = Table::new({
        let mut h = vec!["Scheme".to_string()];
        h.extend(thresholds.iter().map(|t| format!("≤{t}x")));
        h
    });
    let mut quant_table = Table::new(vec!["Scheme", "min", "q1", "median", "q3", "max"]);
    let mut raw = Table::new(vec!["dataset", "scheme", "ratio"]);

    for scheme in schemes {
        let ratios = ratios_for_scheme(cfg, scheme);
        let values: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
        let prof = performance_profile(&values, &thresholds);
        let mut row = vec![scheme.name().to_string()];
        row.extend(prof.iter().map(|&(_, y)| format!("{y:.2}")));
        cdf_table.push_row(row);
        let q = quantiles(&values).unwrap();
        quant_table.push_row(vec![
            scheme.name().to_string(),
            f2(q.min),
            f2(q.q1),
            f2(q.median),
            f2(q.q3),
            f2(q.max),
        ]);
        for (name, r) in ratios {
            raw.push_row(vec![name.to_string(), scheme.name().to_string(), format!("{r:.4}")]);
        }
    }
    rep.add_table("fraction of matrices with memory ratio ≤ x", cdf_table);
    rep.add_table("ratio quantiles", quant_table);
    rep.add_table("raw ratios", raw);
    rep
}
