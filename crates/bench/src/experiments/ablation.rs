//! Ablation experiments beyond the paper's figures — the design choices
//! DESIGN.md calls out:
//!
//! 1. **`jacc_th` sweep** — the paper fixes 0.3; how sensitive are cluster
//!    counts and speedups to it?
//! 2. **`max_cluster_th` sweep** — the paper fixes 8 (also the bitmask
//!    width); what do 2/4/8 buy?
//! 3. **Fixed cluster length sweep** — 2/4/8 rows per cluster.
//! 4. **Access-pattern ablation** — cluster-wise *storage* with row-major
//!    *processing* (`cw_core::ablation`) vs the real column-major kernel,
//!    measured in simulated cache misses: isolates the paper's claim that
//!    the format alone is not enough (§1, drawback 3 of prior work).

use crate::report::{f2, Report, Table};
use crate::runner::{time_clusterwise, time_rowwise_a2, RunConfig};
use cw_cachesim::{replay_b_row_trace, CacheConfig};
use cw_core::ablation::{clusterwise_row_major, row_major_b_access_trace};
use cw_core::trace::clusterwise_b_access_trace;
use cw_core::{
    fixed_clustering, hierarchical_clustering, variable_clustering, ClusterConfig, CsrCluster,
};

/// Runs the parameter-sweep ablations on the representative datasets.
pub fn run(cfg: &RunConfig) -> Report {
    let mut rep =
        Report::new("ablation", "Design-choice ablations (clustering parameters, access pattern)");
    rep.note("Extensions beyond the paper's figures; all speedups vs row-wise original order, A² workload.");

    let datasets = cw_datasets::representative(cfg.scale);

    // --- 1. jacc_th sweep (variable-length + hierarchical) ---
    let mut t1 = Table::new(vec![
        "Dataset",
        "th=0.1 spd",
        "th=0.3 spd",
        "th=0.5 spd",
        "th=0.1 #cl",
        "th=0.3 #cl",
        "th=0.5 #cl",
    ]);
    for d in datasets.iter().take(6) {
        let a = d.build(cfg.scale);
        let base = time_rowwise_a2(&a, cfg.reps);
        let mut speeds = Vec::new();
        let mut counts = Vec::new();
        for th in [0.1, 0.3, 0.5] {
            let c = ClusterConfig { jacc_th: th, max_cluster: 8 };
            let h = hierarchical_clustering(&a, &c);
            let (cc, pa) = h.build_symmetric(&a);
            let t = time_clusterwise(&cc, &pa, cfg.reps);
            speeds.push(f2(base / t));
            counts.push(h.clustering.nclusters().to_string());
        }
        t1.push_row(vec![
            d.name.to_string(),
            speeds[0].clone(),
            speeds[1].clone(),
            speeds[2].clone(),
            counts[0].clone(),
            counts[1].clone(),
            counts[2].clone(),
        ]);
    }
    rep.add_table("hierarchical clustering: Jaccard threshold sweep", t1);

    // --- 2. max_cluster sweep ---
    let mut t2 = Table::new(vec!["Dataset", "max=2", "max=4", "max=8"]);
    for d in datasets.iter().take(6) {
        let a = d.build(cfg.scale);
        let base = time_rowwise_a2(&a, cfg.reps);
        let mut row = vec![d.name.to_string()];
        for max in [2usize, 4, 8] {
            let c = ClusterConfig { jacc_th: 0.3, max_cluster: max };
            let h = hierarchical_clustering(&a, &c);
            let (cc, pa) = h.build_symmetric(&a);
            row.push(f2(base / time_clusterwise(&cc, &pa, cfg.reps)));
        }
        t2.push_row(row);
    }
    rep.add_table("hierarchical clustering: max cluster size sweep (speedup)", t2);

    // --- 3. fixed length sweep ---
    let mut t3 = Table::new(vec!["Dataset", "K=2", "K=4", "K=8"]);
    for d in datasets.iter().take(6) {
        let a = d.build(cfg.scale);
        let base = time_rowwise_a2(&a, cfg.reps);
        let mut row = vec![d.name.to_string()];
        for k in [2usize, 4, 8] {
            let cc = CsrCluster::from_csr(&a, &fixed_clustering(&a, k));
            row.push(f2(base / time_clusterwise(&cc, &a, cfg.reps)));
        }
        t3.push_row(row);
    }
    rep.add_table("fixed-length clustering: cluster size sweep (speedup)", t3);

    // --- 4. access-pattern ablation in simulated cache misses ---
    // Run on matrices where clustering genuinely engages (shared-column
    // groups / scattered blocks); on singleton-heavy inputs both traversals
    // are trivially identical, which is itself a finding reported by the
    // `singleton_clusters_trace_equivalence` unit test.
    let mut t4 = Table::new(vec![
        "Matrix",
        "clustering",
        "row-major misses",
        "column-major misses",
        "reduction",
    ]);
    let cache = CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 8 };
    let f = cfg.scale.factor();
    let cases: Vec<(&str, cw_sparse::CsrMatrix)> = vec![
        ("grouped-wide", cw_sparse::gen::banded::grouped_rows(4096 * f, 8, 48, 11)),
        ("blocks-8", cw_sparse::gen::banded::block_diagonal(4096 * f, (8, 8), 0.01, 3)),
        ("scattered-blocks", {
            let b = cw_sparse::gen::banded::block_diagonal(4096 * f, (4, 8), 0.02, 5);
            cw_reorder::random_permutation(b.nrows, 9).permute_symmetric(&b)
        }),
    ];
    for (name, a) in cases {
        for (label, cc) in [
            (
                "variable",
                CsrCluster::from_csr(&a, &variable_clustering(&a, &ClusterConfig::default())),
            ),
            (
                "hierarchical",
                hierarchical_clustering(&a, &ClusterConfig::default()).build_symmetric(&a).0,
            ),
        ] {
            // Correctness guard: both kernels produce the same product.
            let back = cc.to_csr();
            debug_assert!(clusterwise_row_major(&cc, &back)
                .approx_eq(&cw_core::clusterwise_spgemm(&cc, &back), 1e-9));
            let rm = replay_b_row_trace(&back, &row_major_b_access_trace(&cc), cache);
            let cm = replay_b_row_trace(&back, &clusterwise_b_access_trace(&cc), cache);
            t4.push_row(vec![
                name.to_string(),
                label.to_string(),
                rm.cache.misses.to_string(),
                cm.cache.misses.to_string(),
                f2(rm.cache.misses as f64 / cm.cache.misses.max(1) as f64),
            ]);
        }
    }
    rep.add_table("same CSR_Cluster storage, different traversal (simulated misses)", t4);

    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_datasets::Scale;

    #[test]
    fn ablation_report_renders() {
        let cfg = RunConfig { reps: 1, scale: Scale::Small, ..Default::default() };
        let rep = run(&cfg);
        let md = rep.to_markdown();
        assert!(md.contains("Jaccard threshold sweep"));
        assert!(md.contains("different traversal"));
        assert_eq!(rep.tables.len(), 4);
    }
}
