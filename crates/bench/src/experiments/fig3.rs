//! Figure 3: cluster-wise SpGEMM (fixed-length and variable-length, with
//! and without upstream reordering, plus hierarchical) relative to row-wise
//! SpGEMM on the original order.

use crate::experiments::sweep::{cluster_sweep, ClusterRecord};
use crate::report::{f2, Report, Table};
use crate::runner::{ClusterScheme, RunConfig};
use crate::stats::{quantiles, summarize_speedups, unique_stable};
use cw_reorder::Reordering;

/// The (scheme, reordering) grid of Fig. 3: fixed and variable under
/// Original + the ten reorderings, and hierarchical standalone.
pub fn combos() -> Vec<(ClusterScheme, Reordering)> {
    let mut v = Vec::new();
    for scheme in [ClusterScheme::Fixed, ClusterScheme::Variable] {
        v.push((scheme, Reordering::Original));
        for algo in Reordering::all_ten() {
            v.push((scheme, algo));
        }
    }
    v.push((ClusterScheme::Hierarchical, Reordering::Original));
    v
}

/// Runs the Fig. 3 experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::corpus(cfg.scale));
    let records = cluster_sweep(&datasets, &combos(), cfg);
    render(&records, datasets.len())
}

/// Renders the report from sweep records.
pub fn render(records: &[ClusterRecord], ndatasets: usize) -> Report {
    let mut rep = Report::new(
        "fig3",
        "Cluster-wise SpGEMM with reordering, relative to row-wise on original order",
    );
    rep.note(format!(
        "{ndatasets} datasets; every box = one (scheme, upstream reordering) pair; hierarchical reorders internally."
    ));
    rep.note("Paper shape: Hierarchical geomean ≈ 1.4 and the best Original-order box; HP/GP/RCM lift fixed/variable above 1; Shuffled sinks them.");

    let mut summary =
        Table::new(vec!["Scheme", "Reordering", "min", "q1", "median", "q3", "max", "GM", "Pos.%"]);
    let keys = unique_stable(records.iter().map(|r| (r.scheme, r.reorder)));
    for (scheme, reorder) in keys {
        let speeds: Vec<f64> = records
            .iter()
            .filter(|r| r.scheme == scheme && r.reorder == reorder)
            .map(|r| r.speedup)
            .collect();
        if speeds.is_empty() {
            continue;
        }
        let q = quantiles(&speeds).unwrap();
        let s = summarize_speedups(&speeds);
        summary.push_row(vec![
            scheme.to_string(),
            reorder.to_string(),
            f2(q.min),
            f2(q.q1),
            f2(q.median),
            f2(q.q3),
            f2(q.max),
            f2(s.gm),
            f2(s.pos_pct),
        ]);
    }
    rep.add_table("box-quantiles per (scheme, reordering)", summary);

    let mut raw =
        Table::new(vec!["dataset", "scheme", "reordering", "speedup", "preprocess_s", "base_s"]);
    for r in records {
        raw.push_row(vec![
            r.dataset.to_string(),
            r.scheme.to_string(),
            r.reorder.to_string(),
            format!("{:.4}", r.speedup),
            format!("{:.6}", r.preprocess_seconds),
            format!("{:.6}", r.base_seconds),
        ]);
    }
    rep.add_table("raw records", raw);
    rep
}
