//! Calibrate experiment: measure the corpus, fit the cost model, and
//! quantify what calibration buys.
//!
//! The planner's hand-tuned [`cw_engine::CostModel`] constants were
//! guessed for *some* machine; this experiment fits them for *this* one
//! (the offline half of the learning loop — the online half is the
//! per-operand `FeedbackStore`):
//!
//! 1. **Sweep** — for every corpus dataset, the planner's top pipelines
//!    are measured on every builtin backend: one-off preprocessing
//!    seconds plus warm per-multiply kernel seconds, recorded as
//!    [`CalibrationSample`]s.
//! 2. **Fit** — even-indexed datasets train a [`Calibrator`] least-squares
//!    fit; odd-indexed datasets are held out.
//! 3. **Judge** — held-out median relative kernel-prediction error,
//!    fitted vs hand-tuned; and first-choice plan agreement with the
//!    observed-fastest candidate, for the calibrated model, the
//!    hand-tuned model, and the pre-cost-model static advisor.
//!
//! The full-corpus fit is attached as `calibration_profile.json` (the
//! artifact checked in as `profiles/default.json`), and the metrics land
//! in `BENCH_calibration.json` — the machine-readable trajectory the CI
//! perf gate diffs against its baseline.

use crate::report::{f2, Direction, Report, Table};
use crate::runner::{anchor_seconds, RunConfig};
use cw_engine::calibrate::{median, prediction_errors};
use cw_engine::{
    BackendId, BackendRegistry, CalibrationProfile, CalibrationSample, Calibrator, Engine,
    OperandFeatures, Plan, PlanKnobs, Planner, PlanningPolicy, DEFAULT_CACHE_CAPACITY,
};
use cw_sparse::CsrMatrix;

/// Distinct pipelines measured per dataset (each on every backend); the
/// planner's cost-ranked head plus the static advisor's choice.
const MAX_PIPELINES: usize = 4;

/// Backends every pipeline is measured on.
const BACKENDS: [BackendId; 4] = [
    BackendId::ParallelCpu,
    BackendId::SerialReference,
    BackendId::TiledCpu,
    BackendId::AdaptiveCpu,
];

/// Amortization horizon used when ranking predicted candidate costs
/// (matches [`PlanningPolicy::default`]'s `expected_reuse`).
const RANK_REUSE: f64 = 16.0;

/// A first choice "agrees" with the observed-fastest candidate when its
/// observed warm kernel is within this fraction of the fastest's —
/// aligned with the feedback loop's 25% switch margin: a delta the loop
/// itself would hold as a tie cannot count as a wrong choice here. With
/// four near-tied CPU backends per pipeline the candidate field is dense,
/// and sub-margin deltas measure timer noise (and the single global
/// per-backend `kernel_scale`'s blindness to operand structure), not
/// selection quality; a genuinely wrong choice misses by far more.
pub const AGREEMENT_SLACK: f64 = 0.25;

/// One measured candidate: a pipeline on a backend, with its observed
/// warm kernel seconds.
#[derive(Debug, Clone, Copy)]
struct MeasuredCandidate {
    plan: Plan,
    affinity: f64,
    kernel_seconds: f64,
}

/// Everything measured for one dataset.
#[derive(Debug, Clone)]
struct DatasetSweep {
    name: String,
    features: OperandFeatures,
    static_knobs: PlanKnobs,
    /// Planner-candidate measurements (serial oracle excluded — the
    /// planner never offers it), used for plan-agreement judging.
    candidates: Vec<MeasuredCandidate>,
    /// All samples (serial included) feeding the fit.
    samples: Vec<CalibrationSample>,
}

/// Warm per-multiply kernel seconds of `plan` on `a` (median of `reps`;
/// the preparation is cached before timing starts, and the engine's own
/// per-stage report isolates kernel time from lookup overhead).
fn warm_kernel_median(engine: &mut Engine, a: &CsrMatrix, plan: Plan, reps: usize) -> f64 {
    let _ = engine.multiply_planned(a, a, plan);
    let times: Vec<f64> = (0..reps.max(1))
        .map(|_| engine.multiply_planned(a, a, plan).1.timings.kernel_seconds)
        .collect();
    median(&times)
}

/// Measures one dataset: the planner's top pipelines (plus the static
/// advisor's choice) on every backend.
fn sweep_dataset(name: &str, a: &CsrMatrix, cfg: &RunConfig) -> DatasetSweep {
    let planner = Planner::with_policy(cfg.seed, PlanningPolicy::frozen());
    let profile = planner.profile(a);
    let features = OperandFeatures::with_profile(a, profile);
    let ranked = planner.plans_costed(a);

    // Distinct pipelines (knobs modulo backend), best-ranked first.
    let pipeline_key = |p: &Plan| {
        let mut k = p.knobs();
        k.backend = BackendId::ParallelCpu;
        k
    };
    let mut pipelines: Vec<(Plan, f64)> = Vec::new();
    for r in &ranked {
        if pipelines.len() >= MAX_PIPELINES {
            break;
        }
        if !pipelines.iter().any(|(p, _)| pipeline_key(p) == pipeline_key(&r.plan)) {
            pipelines.push((r.plan.on_backend(BackendId::ParallelCpu), r.affinity));
        }
    }
    // The static advisor's choice and the zero-prep baseline are always
    // measured: the first anchors the static-agreement comparison, the
    // second anchors the calibrator's scale-free technique-gain ratios.
    let static_plan = planner.plan_static(a);
    for extra in [static_plan, planner.plan_for_suggestion(a, cw_engine::Suggestion::LeaveOriginal)]
    {
        if !pipelines.iter().any(|(p, _)| pipeline_key(p) == pipeline_key(&extra)) {
            let affinity = ranked
                .iter()
                .find(|r| pipeline_key(&r.plan) == pipeline_key(&extra))
                .map_or(0.0, |r| r.affinity);
            pipelines.push((extra.on_backend(BackendId::ParallelCpu), affinity));
        }
    }

    let mut meter = Engine::new(
        Planner::with_policy(cfg.seed, PlanningPolicy::frozen()),
        DEFAULT_CACHE_CAPACITY,
    );
    let mut candidates = Vec::new();
    let mut samples = Vec::new();
    for (pipeline, affinity) in pipelines {
        // One-off preprocessing, measured cold on the reference backend
        // (the builtin CPU backends share the same materialization).
        meter.clear_cache();
        let (_, prep_timings, _) = meter.prepare_with(a, Some(pipeline));
        let prep_seconds = prep_timings.reorder_seconds + prep_timings.cluster_seconds;

        for backend in BACKENDS {
            let plan = pipeline.on_backend(backend);
            let kernel_seconds = warm_kernel_median(&mut meter, a, plan, cfg.reps);
            samples.push(CalibrationSample {
                features,
                plan,
                affinity,
                // Attribute the measured prep once (to the reference
                // sample); duplicates would triple-weight it in the fit.
                prep_seconds: if backend == BackendId::ParallelCpu { prep_seconds } else { 0.0 },
                kernel_seconds,
            });
            if backend != BackendId::SerialReference {
                candidates.push(MeasuredCandidate { plan, affinity, kernel_seconds });
            }
        }
    }
    DatasetSweep {
        name: name.to_string(),
        features,
        static_knobs: static_plan.knobs(),
        candidates,
        samples,
    }
}

/// The observed-fastest candidate of a sweep.
fn observed_fastest(sweep: &DatasetSweep) -> &MeasuredCandidate {
    sweep
        .candidates
        .iter()
        .min_by(|x, y| x.kernel_seconds.total_cmp(&y.kernel_seconds))
        .expect("sweep has candidates")
}

/// The candidate `profile` would choose first (min predicted amortized
/// cost under the default reuse horizon).
fn model_choice<'s>(
    profile: &CalibrationProfile,
    registry: &BackendRegistry,
    sweep: &'s DatasetSweep,
) -> &'s MeasuredCandidate {
    sweep
        .candidates
        .iter()
        .min_by(|x, y| {
            let cost = |c: &MeasuredCandidate| {
                profile
                    .estimate(&sweep.features, &c.plan, c.affinity, &registry.caps(c.plan.backend))
                    .amortized(RANK_REUSE)
            };
            cost(x).total_cmp(&cost(y))
        })
        .expect("sweep has candidates")
}

/// The calibrated-vs-static headline numbers (also consumed by the
/// `summary` experiment).
#[derive(Debug, Clone, Copy)]
pub struct PlannerDelta {
    /// Fraction of operands where the calibrated model's first choice
    /// agrees with the observed-fastest measured candidate (observed warm
    /// kernel within [`AGREEMENT_SLACK`] of the fastest's).
    pub agreement_calibrated: f64,
    /// Same fraction for the hand-tuned (uncalibrated) cost model.
    pub agreement_handtuned: f64,
    /// Same fraction for the pre-cost-model static advisor.
    pub agreement_static: f64,
    /// Geometric mean over operands of (static choice's observed kernel
    /// seconds ÷ calibrated choice's observed kernel seconds); > 1 means
    /// the calibrated planner picks faster plans.
    pub speedup_vs_static: f64,
    /// Operands judged.
    pub operands: usize,
}

/// Does `choice` agree with the observed-fastest candidate — i.e. is its
/// observed warm kernel within [`AGREEMENT_SLACK`] of the fastest's?
fn agrees(choice: &MeasuredCandidate, fastest: &MeasuredCandidate) -> bool {
    choice.kernel_seconds <= fastest.kernel_seconds * (1.0 + AGREEMENT_SLACK)
}

/// Judges `profile`'s first choices against the observed-fastest
/// candidates across `sweeps`.
fn judge(profile: &CalibrationProfile, sweeps: &[DatasetSweep]) -> PlannerDelta {
    let registry = BackendRegistry::builtin();
    let handtuned = CalibrationProfile::default();
    let (mut cal, mut hand, mut stat) = (0usize, 0usize, 0usize);
    let mut log_speedups = Vec::new();
    for sweep in sweeps {
        let fastest = observed_fastest(sweep);
        let calibrated = model_choice(profile, &registry, sweep);
        if agrees(calibrated, fastest) {
            cal += 1;
        }
        if agrees(model_choice(&handtuned, &registry, sweep), fastest) {
            hand += 1;
        }
        let static_pick = sweep
            .candidates
            .iter()
            .find(|c| c.plan.knobs() == sweep.static_knobs)
            .expect("static pipeline is always measured");
        if agrees(static_pick, fastest) {
            stat += 1;
        }
        if calibrated.kernel_seconds > 0.0 {
            log_speedups.push((static_pick.kernel_seconds / calibrated.kernel_seconds).ln());
        }
    }
    let n = sweeps.len().max(1) as f64;
    PlannerDelta {
        agreement_calibrated: cal as f64 / n,
        agreement_handtuned: hand as f64 / n,
        agreement_static: stat as f64 / n,
        speedup_vs_static: if log_speedups.is_empty() {
            1.0
        } else {
            (log_speedups.iter().sum::<f64>() / log_speedups.len() as f64).exp()
        },
        operands: sweeps.len(),
    }
}

/// Sweeps the corpus and returns the per-dataset measurements.
fn sweep_corpus(cfg: &RunConfig) -> Vec<DatasetSweep> {
    cfg.select(cw_datasets::representative(cfg.scale))
        .iter()
        .map(|d| sweep_dataset(d.name, &d.build(cfg.scale), cfg))
        .collect()
}

/// The calibrated-vs-static planner delta on a (small) corpus sweep:
/// fits a full-corpus profile and judges it. The `summary` experiment
/// calls this with a tight subset for its headline row.
pub fn planner_delta(cfg: &RunConfig) -> PlannerDelta {
    let sweeps = sweep_corpus(cfg);
    let mut calibrator = Calibrator::new();
    calibrator.extend(sweeps.iter().flat_map(|s| s.samples.iter().copied()));
    judge(&calibrator.fit(), &sweeps)
}

/// Runs the calibrate experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let sweeps = sweep_corpus(cfg);
    let registry = BackendRegistry::builtin();

    // Train/held-out split by dataset parity (operand-level, so held-out
    // error is measured on matrices the fit never saw).
    let train: Vec<CalibrationSample> = sweeps
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .flat_map(|(_, s)| s.samples.iter().copied())
        .collect();
    let heldout: Vec<CalibrationSample> = sweeps
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .flat_map(|(_, s)| s.samples.iter().copied())
        .collect();

    let mut train_cal = Calibrator::new();
    train_cal.extend(train.iter().copied());
    let train_profile = train_cal.fit();

    let mut full_cal = Calibrator::new();
    full_cal.extend(sweeps.iter().flat_map(|s| s.samples.iter().copied()));
    let full_profile = full_cal.fit();

    let handtuned = CalibrationProfile::default();
    let fitted_errs = prediction_errors(&train_profile, &registry, &heldout);
    let handtuned_errs = prediction_errors(&handtuned, &registry, &heldout);
    let delta = judge(&train_profile, &sweeps);

    let mut rep = Report::new(
        "calibration",
        "Calibrated cost model: fit from bench-corpus runs vs hand-tuned constants",
    );
    rep.note(format!(
        "{} datasets ({} train / {} held out by parity), {} samples total; \
         {MAX_PIPELINES}+ pipelines × {} backends each, warm kernel medians of {} reps.",
        sweeps.len(),
        sweeps.len().div_ceil(2),
        sweeps.len() / 2,
        sweeps.iter().map(|s| s.samples.len()).sum::<usize>(),
        BACKENDS.len(),
        cfg.reps
    ));
    rep.note(format!(
        "Held-out error is median |predicted − observed| / observed kernel seconds on datasets \
         the fit never saw. Agreement is the fraction of operands whose first choice (min \
         predicted amortized cost) lands within {:.0}% of the observed-fastest measured \
         candidate's warm kernel (the plan-choice analogue of the feedback switch margin).",
        AGREEMENT_SLACK * 100.0
    ));

    // --- Table 1: constants, hand-tuned vs fitted. ---
    let mut t = Table::new(vec!["constant", "hand-tuned", "fitted (train)", "fitted (full)"]);
    type ConstantRow = (&'static str, fn(&CalibrationProfile) -> f64);
    let rows: [ConstantRow; 8] = [
        ("seconds_per_madd", |p| p.model.seconds_per_madd),
        ("dense_acc_discount", |p| p.model.dense_acc_discount),
        ("parallel_speedup", |p| p.model.parallel_speedup),
        ("reorder_gain", |p| p.model.reorder_gain),
        ("cluster_gain", |p| p.model.cluster_gain),
        ("cheap_reorder_per_nnz", |p| p.model.cheap_reorder_per_nnz),
        ("variable_cluster_per_nnz", |p| p.model.variable_cluster_per_nnz),
        ("hierarchical_cluster_per_nnz", |p| p.model.hierarchical_cluster_per_nnz),
    ];
    for (name, get) in rows {
        t.push_row(vec![
            name.to_string(),
            format!("{:.3e}", get(&handtuned)),
            format!("{:.3e}", get(&train_profile)),
            format!("{:.3e}", get(&full_profile)),
        ]);
    }
    for id in BackendId::ALL {
        t.push_row(vec![
            format!("kernel_scale[{}]", id.name()),
            f2(handtuned.kernel_scale(id).unwrap_or(1.0)),
            f2(train_profile.kernel_scale(id).unwrap_or(1.0)),
            f2(full_profile.kernel_scale(id).unwrap_or(1.0)),
        ]);
    }
    rep.add_table("fitted cost-model constants", t);

    // --- Table 2: prediction quality + plan choices per dataset. ---
    let mut t = Table::new(vec![
        "Dataset",
        "split",
        "observed fastest",
        "calibrated choice",
        "hand-tuned choice",
        "static choice matches?",
    ]);
    for (i, sweep) in sweeps.iter().enumerate() {
        let fastest = observed_fastest(sweep);
        let calibrated = model_choice(&train_profile, &registry, sweep);
        let hand = model_choice(&handtuned, &registry, sweep);
        let static_pick = sweep
            .candidates
            .iter()
            .find(|c| c.plan.knobs() == sweep.static_knobs)
            .expect("static pipeline is always measured");
        t.push_row(vec![
            sweep.name.clone(),
            if i % 2 == 0 { "train" } else { "held-out" }.to_string(),
            fastest.plan.describe(),
            calibrated.plan.describe(),
            hand.plan.describe(),
            if agrees(static_pick, fastest) { "yes" } else { "no" }.to_string(),
        ]);
    }
    rep.add_table("first choices vs observed-fastest", t);

    // --- Table 3: headline numbers. ---
    let mut t = Table::new(vec!["quantity", "hand-tuned", "calibrated"]);
    t.push_row(vec![
        "held-out median relative kernel error".to_string(),
        f2(median(&handtuned_errs)),
        f2(median(&fitted_errs)),
    ]);
    t.push_row(vec![
        "first-choice agreement with observed-fastest".to_string(),
        f2(delta.agreement_handtuned),
        f2(delta.agreement_calibrated),
    ]);
    t.push_row(vec![
        "static advisor agreement / calibrated speedup vs static".to_string(),
        f2(delta.agreement_static),
        format!("{}x", f2(delta.speedup_vs_static)),
    ]);
    rep.add_table("calibration quality", t);

    // --- Machine-readable metrics (the perf-gate surface). ---
    rep.add_metric("anchor_s", anchor_seconds(cfg.reps), Direction::LowerIsBetter);
    for sweep in &sweeps {
        // The warm-path gate metrics: the best observed candidate, and the
        // planner-chosen pipeline per backend (the sweep's head pipeline).
        rep.add_metric(
            format!("warm_best_s/{}", sweep.name),
            observed_fastest(sweep).kernel_seconds,
            Direction::LowerIsBetter,
        );
        for backend in BACKENDS {
            if let Some(s) = sweep.samples.iter().find(|s| s.plan.backend == backend) {
                rep.add_metric(
                    format!("warm_kernel_s/{}/{}", sweep.name, backend.name()),
                    s.kernel_seconds,
                    Direction::LowerIsBetter,
                );
            }
        }
    }
    if !heldout.is_empty() {
        rep.add_metric(
            "heldout_median_rel_err/fitted",
            median(&fitted_errs),
            Direction::LowerIsBetter,
        );
        rep.add_metric(
            "heldout_median_rel_err/handtuned",
            median(&handtuned_errs),
            Direction::LowerIsBetter,
        );
    }
    rep.add_metric(
        "plan_agreement/calibrated",
        delta.agreement_calibrated,
        Direction::HigherIsBetter,
    );
    rep.add_metric(
        "plan_agreement/handtuned",
        delta.agreement_handtuned,
        Direction::HigherIsBetter,
    );
    rep.add_metric("plan_agreement/static", delta.agreement_static, Direction::HigherIsBetter);
    rep.add_metric("speedup_vs_static", delta.speedup_vs_static, Direction::HigherIsBetter);

    // The artifact: the full-corpus fit, refreshable into
    // profiles/default.json (see docs/ARCHITECTURE.md).
    rep.attachments.push(("calibration_profile.json".to_string(), full_profile.to_json()));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrate_experiment_fits_and_reports() {
        let cfg = RunConfig { reps: 1, subset: Some(2), ..Default::default() };
        let rep = run(&cfg);
        assert_eq!(rep.id, "calibration");
        assert_eq!(rep.tables.len(), 3);

        // The profile artifact parses and carries a real fit.
        let (name, json) = &rep.attachments[0];
        assert_eq!(name, "calibration_profile.json");
        let profile = CalibrationProfile::from_json(json).unwrap();
        assert!(profile.fitted_from_samples > 0);
        assert!(profile.model.seconds_per_madd > 0.0);

        // The gate surface is present: anchor, warm-path medians, and the
        // quality metrics the acceptance bar reads.
        let metric = |n: &str| rep.metrics.iter().find(|m| m.name == n);
        assert!(metric("anchor_s").is_some());
        assert!(metric("plan_agreement/calibrated").is_some());
        assert!(metric("heldout_median_rel_err/fitted").is_some());
        assert!(rep.metrics.iter().any(|m| m.name.starts_with("warm_kernel_s/") && m.value > 0.0));

        // On a same-machine sweep the fitted model must predict held-out
        // kernels at least as well as the hand-tuned defaults (the debug
        // build alone puts the defaults off by an order of magnitude).
        let fitted = metric("heldout_median_rel_err/fitted").unwrap().value;
        let handtuned = metric("heldout_median_rel_err/handtuned").unwrap().value;
        assert!(
            fitted <= handtuned * 1.05,
            "fitted held-out error {fitted} must not exceed hand-tuned {handtuned}"
        );
    }

    #[test]
    fn planner_delta_judges_measured_candidates() {
        let cfg = RunConfig { reps: 1, subset: Some(2), ..Default::default() };
        let delta = planner_delta(&cfg);
        assert_eq!(delta.operands, 2);
        for a in [delta.agreement_calibrated, delta.agreement_handtuned, delta.agreement_static] {
            assert!((0.0..=1.0).contains(&a), "{a}");
        }
        assert!(delta.speedup_vs_static > 0.0);
    }
}
