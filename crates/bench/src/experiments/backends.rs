//! Backends experiment: the same planned pipeline executed on every
//! registered backend, and feedback-driven backend selection.
//!
//! The `ExecutionBackend` seam claims that *where* a plan runs is a knob
//! like any other — cacheable, priceable, and learnable. This experiment
//! checks all three claims on the representative corpus:
//!
//! 1. **Per-backend timings** — the planner's chosen pipeline is executed
//!    warm (preparation cached, kernel + postprocess only) on each
//!    backend: the reference rayon path, the serial oracle (the
//!    determinism floor, never a planner candidate), and the column-tiled
//!    cache-blocked path.
//! 2. **Feedback convergence** — an adaptive engine plans normally
//!    (always the reference backend on first sight — the default cost
//!    model is deliberately pessimistic about tiling), an ablation sweep
//!    feeds each candidate backend's observed timings into the feedback
//!    store, and repeated auto traffic must end on (or within the switch
//!    margin of) the observed-fastest *candidate* backend.
//! 3. **Misprediction recovery** — the same loop under an adversarial
//!    cost model that prices tiling as nearly free: first-sight selection
//!    lands on the tiled backend, and execution feedback must walk it
//!    back to the genuinely faster backend. This is the backend seam's
//!    version of the planner experiment's demotion story: selection is
//!    driven by measurement, not by trusting the model.

use crate::report::{Direction, Report, Table};
use crate::runner::{anchor_seconds, time_median, RunConfig};
use cw_engine::{
    BackendId, Engine, OperandKey, Plan, Planner, PlanningPolicy, DEFAULT_CACHE_CAPACITY,
    MIN_OBSERVATIONS_TO_SWITCH,
};
use cw_obs::{export, MetricsRegistry, Tracer};
use cw_sparse::CsrMatrix;
use std::sync::Arc;

/// Auto multiplies served after the ablation sweep so the feedback loop
/// has enough incumbent observations to evaluate (and make) a switch.
/// Scales with the candidate count: evidence decays per recorded
/// execution, so visiting-and-rejecting each stale-again candidate takes
/// a few rounds per backend before the loop settles.
const CONVERGENCE_ROUNDS: usize = 6 * CANDIDATES.len();

/// Backends the timing table measures (the serial oracle included as the
/// determinism floor).
const MEASURED: [BackendId; 4] = [
    BackendId::ParallelCpu,
    BackendId::SerialReference,
    BackendId::TiledCpu,
    BackendId::AdaptiveCpu,
];

/// Backends the planner actually offers auto traffic (the oracle's caps
/// opt it out), i.e. what feedback-driven selection chooses between.
const CANDIDATES: [BackendId; 3] =
    [BackendId::ParallelCpu, BackendId::TiledCpu, BackendId::AdaptiveCpu];

/// Warm per-call seconds of `plan` on `a` (kernel + postprocess; the
/// preparation is cached by the engine before timing starts).
fn warm_per_call(engine: &mut Engine, a: &CsrMatrix, plan: Plan, reps: usize) -> f64 {
    let _ = engine.multiply_planned(a, a, plan);
    time_median(reps, || engine.multiply_planned(a, a, plan))
}

/// Serves the sweep-then-auto traffic pattern on `engine` and returns the
/// converged plan plus the replan count: every candidate backend variant
/// of `pipeline` gets enough forced observations to be trusted outright,
/// then auto traffic lets the feedback loop switch (or hold).
fn converge(engine: &mut Engine, a: &CsrMatrix, pipeline: Plan) -> (Plan, u64) {
    for id in CANDIDATES {
        for _ in 0..MIN_OBSERVATIONS_TO_SWITCH + 1 {
            let _ = engine.multiply_planned(a, a, pipeline.on_backend(id));
        }
    }
    let mut replans = 0;
    for _ in 0..CONVERGENCE_ROUNDS {
        let (_, r) = engine.multiply(a, a);
        replans = r.feedback.map_or(replans, |f| f.replans);
    }
    let converged = engine.feedback().chosen_plan(&OperandKey::of(a)).expect("operand was seeded");
    (converged, replans)
}

/// Runs the backends experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::representative(cfg.scale));
    let mut rep = Report::new(
        "backends",
        "Execution backends: per-backend timings and feedback-driven backend selection",
    );
    rep.note("All per-call timings are warm (prepared operand cached): kernel + postprocess only.");
    rep.note(
        "Backends run the planner's chosen pipeline unchanged; only the execution strategy \
         differs (rayon reference, serial oracle, column-tiled cache blocking, per-row \
         adaptive kernel zoo). The oracle is the determinism floor, not a planner candidate — \
         feedback selects between parallel-cpu, tiled-cpu, and adaptive-cpu.",
    );
    rep.note(format!(
        "converged = backend chosen by an adaptive engine after an ablation sweep \
         ({} observations per candidate backend, zero noise floor) plus {CONVERGENCE_ROUNDS} \
         auto multiplies; a switch needs a 25% margin, so near-ties legitimately hold the \
         incumbent.",
        MIN_OBSERVATIONS_TO_SWITCH
    ));

    // --- Table 1: the same pipeline on every backend ---
    let mut t = Table::new(vec![
        "Dataset",
        "plan (pipeline)",
        "parallel-cpu s",
        "serial-reference s",
        "tiled-cpu s",
        "adaptive-cpu s",
        "fastest candidate",
        "candidate gap",
    ]);
    // Per-dataset fastest *candidate* backend and its seconds (reused by
    // the convergence tables below).
    let mut fastest_candidate: Vec<(BackendId, f64)> = Vec::new();
    for d in &datasets {
        let a = d.build(cfg.scale);
        let mut meter = Engine::new(
            Planner::with_policy(cfg.seed, PlanningPolicy::frozen()),
            DEFAULT_CACHE_CAPACITY,
        );
        let pipeline = meter.planner().plan(&a);
        let mut seconds = Vec::with_capacity(MEASURED.len());
        for id in MEASURED {
            seconds.push(warm_per_call(&mut meter, &a, pipeline.on_backend(id), cfg.reps));
        }
        // Candidate seconds in MEASURED order: [0]=parallel, [2]=tiled,
        // [3]=adaptive (the serial oracle at [1] is not a candidate).
        let candidate_s =
            [(CANDIDATES[0], seconds[0]), (CANDIDATES[1], seconds[2]), (CANDIDATES[2], seconds[3])];
        let best = candidate_s
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one candidate");
        let worst_s = candidate_s.into_iter().map(|(_, s)| s).fold(f64::MIN, f64::max);
        fastest_candidate.push(best);
        for (id, s) in MEASURED.iter().zip(&seconds) {
            rep.add_metric(
                format!("warm_per_call_s/{}/{}", d.name, id.name()),
                *s,
                Direction::LowerIsBetter,
            );
        }
        t.push_row(vec![
            d.name.to_string(),
            pipeline.describe(),
            format!("{:.6}", seconds[0]),
            format!("{:.6}", seconds[1]),
            format!("{:.6}", seconds[2]),
            format!("{:.6}", seconds[3]),
            best.0.name().to_string(),
            format!("{:.2}", worst_s / best.1.max(1e-12)),
        ]);
    }
    rep.add_table("warm per-call seconds by execution backend", t);

    // --- Table 2: feedback-driven backend selection (honest model) ---
    let mut t = Table::new(vec![
        "Dataset",
        "first-sight backend",
        "converged backend",
        "replans",
        "fastest backend (converged pipeline)",
        "converged s",
        "fastest s",
        "slowdown vs fastest",
    ]);
    for d in &datasets {
        let a = d.build(cfg.scale);
        let policy = PlanningPolicy { min_adapt_gain_seconds: 0.0, ..PlanningPolicy::default() };
        let mut adaptive =
            Engine::new(Planner::with_policy(cfg.seed, policy), DEFAULT_CACHE_CAPACITY);
        let (_, first) = adaptive.multiply(&a, &a);
        let (converged, replans) = converge(&mut adaptive, &a, first.plan);

        // Isolate the backend axis: the *converged pipeline* measured on
        // every candidate backend with one meter, so the comparison is
        // backend choice alone (not pipeline choice or cross-run noise).
        let mut meter = Engine::new(
            Planner::with_policy(cfg.seed, PlanningPolicy::frozen()),
            DEFAULT_CACHE_CAPACITY,
        );
        let mut converged_s = f64::NAN;
        let mut best: Option<(BackendId, f64)> = None;
        for id in CANDIDATES {
            let s = warm_per_call(&mut meter, &a, converged.on_backend(id), cfg.reps);
            if id == converged.backend {
                converged_s = s;
            }
            if best.is_none_or(|(_, b)| s < b) {
                best = Some((id, s));
            }
        }
        let (fastest_id, fastest_s) = best.expect("at least one candidate backend");
        t.push_row(vec![
            d.name.to_string(),
            first.backend.name().to_string(),
            converged.backend.name().to_string(),
            format!("{replans}"),
            fastest_id.name().to_string(),
            format!("{converged_s:.6}"),
            format!("{fastest_s:.6}"),
            format!("{:.2}", converged_s / fastest_s.max(1e-12)),
        ]);
    }
    rep.add_table("feedback-driven backend selection", t);

    // --- Table 3: recovery from a backend misprediction ---
    let mut t = Table::new(vec![
        "Dataset",
        "first-sight backend",
        "converged backend",
        "replans",
        "fastest candidate",
        "recovered",
    ]);
    for (i, d) in datasets.iter().enumerate() {
        let a = d.build(cfg.scale);
        // Adversarial model: column tiling predicted to save 90% of kernel
        // time at zero pass overhead, so wide-output operands start on the
        // tiled backend no matter what it actually costs.
        let policy = PlanningPolicy { min_adapt_gain_seconds: 0.0, ..PlanningPolicy::default() };
        let mut planner = Planner::with_policy(cfg.seed, policy);
        planner.cost.blocking_gain = 0.9;
        planner.cost.tile_pass_overhead = 0.0;
        let mut adaptive = Engine::new(planner, DEFAULT_CACHE_CAPACITY);
        let (_, first) = adaptive.multiply(&a, &a);
        let (converged, replans) = converge(&mut adaptive, &a, first.plan);
        let (fastest_id, _) = fastest_candidate[i];
        t.push_row(vec![
            d.name.to_string(),
            first.backend.name().to_string(),
            converged.backend.name().to_string(),
            format!("{replans}"),
            fastest_id.name().to_string(),
            if converged.backend == fastest_id { "yes" } else { "held (within margin)" }
                .to_string(),
        ]);
    }
    rep.add_table("recovery from an adversarial backend misprediction", t);
    rep.add_metric("anchor_s", anchor_seconds(cfg.reps), Direction::LowerIsBetter);

    // --- Trace artifact: one traced multiply per backend ---
    // A separate engine (the timing tables above stay untraced), with the
    // engine's plan/prepare/execute/postprocess spans and per-backend
    // kernel histograms exported as versioned JSON-lines.
    if let Some(d) = datasets.first() {
        let a = d.build(cfg.scale);
        let tracer = Arc::new(Tracer::new(MEASURED.len()));
        tracer.set_enabled(true);
        let registry = MetricsRegistry::new();
        let mut engine = Engine::new(
            Planner::with_policy(cfg.seed, PlanningPolicy::frozen()),
            DEFAULT_CACHE_CAPACITY,
        );
        engine.set_tracer(Arc::clone(&tracer));
        engine.cache().bind_metrics(&registry, "cache.");
        let pipeline = engine.planner().plan(&a);
        for (i, id) in MEASURED.iter().enumerate() {
            tracer.begin_trace(i as u64);
            let start = tracer.now_ns();
            let (_, r) = engine.multiply_planned(&a, &a, pipeline.on_backend(*id));
            registry
                .histogram(&format!("kernel_seconds.{}", id.name()))
                .record(r.timings.kernel_seconds);
            tracer.end_trace(i as u64, "request", start);
        }
        rep.attachments.push((
            "OBS_backends.jsonl".to_string(),
            export::export_jsonl(&tracer.flight_traces(), &registry.snapshot()),
        ));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_experiment_measures_and_converges() {
        let cfg = RunConfig { reps: 1, subset: Some(2), ..Default::default() };
        // The structural checks (report shape, timings present, obs
        // artifact) hold on every run; the convergence checks are driven
        // by *observed* kernel timings, which on a loaded 1-CPU CI box in
        // debug can thrash the feedback loop past its 25% switch margin —
        // so, like the calibration acceptance tests, take the best of 3
        // attempts for those. A genuinely broken selection loop fails
        // every attempt; timer noise only some.
        let mut last_violation = None;
        for _attempt in 0..3 {
            let rep = run(&cfg);
            assert_eq!(rep.id, "backends");
            assert_eq!(rep.tables.len(), 3);

            let (_, timing) = &rep.tables[0];
            assert_eq!(timing.rows.len(), 2);
            for row in &timing.rows {
                for col in 2..=5 {
                    let s: f64 = row[col].parse().unwrap();
                    assert!(s > 0.0, "column {col} must carry a timing: {row:?}");
                }
            }

            // One traced request per measured backend in the obs artifact.
            let (_, jsonl) = rep
                .attachments
                .iter()
                .find(|(n, _)| n == "OBS_backends.jsonl")
                .expect("obs artifact");
            let traces = jsonl.lines().filter(|l| l.contains("\"kind\":\"trace\"")).count();
            assert_eq!(traces, MEASURED.len());
            for id in MEASURED {
                assert!(jsonl.contains(&format!("kernel_seconds.{}", id.name())));
            }

            let (_, conv) = &rep.tables[1];
            let mut margin_matches = 0;
            let mut violation = None;
            for row in &conv.rows {
                assert_eq!(row[1], "parallel-cpu", "first sight must be the reference backend");
                let slowdown: f64 = row.last().unwrap().parse().unwrap();
                // Converging exactly onto the observed-fastest candidate,
                // or holding an incumbent inside the feedback loop's 25%
                // switch margin, are both correct outcomes — with three
                // near-tied CPU candidates the margin hold is the common
                // one. The converged backend must stay competitive: the
                // margin allows a ≤25%-slower incumbent, the rest is timer
                // noise headroom; a wrong convergence misses by integer
                // factors.
                if row[2] == row[4] || slowdown <= 1.25 {
                    margin_matches += 1;
                }
                if slowdown > 2.0 {
                    violation = Some(format!(
                        "{}: converged backend {} is {slowdown}x the fastest candidate ({})",
                        row[0], row[2], row[4]
                    ));
                }
            }
            if margin_matches < 1 {
                violation = Some(
                    "feedback landed outside the switch margin of the fastest candidate \
                     on every matrix"
                        .to_string(),
                );
            }

            // Misprediction recovery: the adversarial model misleads the
            // first choice; feedback must end on a competitive backend.
            let (_, recovery) = &rep.tables[2];
            assert_eq!(recovery.rows.len(), 2);
            for row in &recovery.rows {
                if !(row[2] == row[4] || row[5].starts_with("held")) {
                    violation = Some(format!(
                        "{}: converged {} is neither the fastest candidate {} nor a margin hold",
                        row[0], row[2], row[4]
                    ));
                }
            }

            if violation.is_none() {
                return;
            }
            last_violation = violation;
        }
        panic!("convergence checks failed on all 3 attempts; last: {last_violation:?}");
    }
}
