//! Headline-claims check — the paper's §1 "Evaluation summary" bullets,
//! measured on this machine and judged directionally (shape, not absolute
//! numbers):
//!
//! 1. hierarchical clustering speeds up SpGEMM on a substantial fraction of
//!    inputs with geomean ≥ cheapest alternatives;
//! 2. GP/HP/RCM-family reorderings give the best row-wise geomeans but cost
//!    the most preprocessing;
//! 3. fixed/variable clustering help a meaningful minority of inputs
//!    without reordering;
//! 4. hierarchical preprocessing amortizes within ≤ 20 SpGEMMs for most of
//!    its positive cases.

use crate::experiments::fig10::amortization_runs;
use crate::experiments::sweep::{cluster_sweep, rowwise_sweep};
use crate::report::{f2, Report, Table};
use crate::runner::{ClusterScheme, RunConfig};
use crate::stats::summarize_speedups;
use cw_reorder::Reordering;

/// Runs the headline summary (uses a corpus subset by default for speed;
/// honor `cfg.subset` if set, else 40 datasets).
pub fn run(cfg: &RunConfig) -> Report {
    let mut sub_cfg = *cfg;
    if sub_cfg.subset.is_none() {
        sub_cfg.subset = Some(40);
    }
    let datasets = sub_cfg.select(cw_datasets::corpus(sub_cfg.scale));

    let combos = [
        (ClusterScheme::Fixed, Reordering::Original),
        (ClusterScheme::Variable, Reordering::Original),
        (ClusterScheme::Hierarchical, Reordering::Original),
    ];
    let cl = cluster_sweep(&datasets, &combos, &sub_cfg);
    let rw = rowwise_sweep(
        &datasets,
        &[Reordering::Random, Reordering::Rcm, Reordering::Gp(16), Reordering::Hp(16)],
        &sub_cfg,
    );

    let mut rep = Report::new("summary", "Headline claims (paper §1 evaluation summary), measured");
    rep.note(format!("{} datasets, scale {:?}.", datasets.len(), sub_cfg.scale));

    let mut t = Table::new(vec!["claim", "paper", "measured", "direction holds?"]);

    // Claim 1: hierarchical clustering improves a substantial fraction.
    let hier: Vec<f64> =
        cl.iter().filter(|r| r.scheme == "Hierarchical").map(|r| r.speedup).collect();
    let sh = summarize_speedups(&hier);
    t.push_row(vec![
        "hierarchical GM / Pos.%".to_string(),
        "1.39x / ~70%".to_string(),
        format!("{}x / {}%", f2(sh.gm), f2(sh.pos_pct)),
        yesno(sh.pos_pct >= 40.0),
    ]);

    // Claim 2: partitioning/RCM reorderings beat Shuffled decisively.
    let best_reorder = ["RCM", "GP", "HP"]
        .iter()
        .map(|name| {
            let v: Vec<f64> = rw.iter().filter(|r| r.algo == *name).map(|r| r.speedup).collect();
            summarize_speedups(&v).gm
        })
        .fold(0.0f64, f64::max);
    let shuffled = summarize_speedups(
        &rw.iter().filter(|r| r.algo == "Shuffled").map(|r| r.speedup).collect::<Vec<_>>(),
    );
    t.push_row(vec![
        "best of RCM/GP/HP GM vs Shuffled GM".to_string(),
        "1.77 vs 0.43".to_string(),
        format!("{} vs {}", f2(best_reorder), f2(shuffled.gm)),
        yesno(best_reorder > shuffled.gm),
    ]);

    // Claim 3: fixed/variable clustering help a meaningful minority.
    for scheme in ["Fixed-length", "Variable-length"] {
        let v: Vec<f64> = cl.iter().filter(|r| r.scheme == scheme).map(|r| r.speedup).collect();
        let s = summarize_speedups(&v);
        t.push_row(vec![
            format!("{scheme} Pos.% (no reordering)"),
            if scheme == "Fixed-length" { "~45%" } else { "~40%" }.to_string(),
            format!("{}%", f2(s.pos_pct)),
            yesno(s.pos_pct >= 20.0),
        ]);
    }

    // System headline (beyond the paper): the calibrated cost model's
    // first choice vs the pre-cost-model static advisor, judged against
    // observed-fastest on a small representative sweep.
    let delta_cfg = RunConfig { subset: Some(3), ..*cfg };
    let delta = crate::experiments::calibrate::planner_delta(&delta_cfg);
    t.push_row(vec![
        "calibrated vs static planner (first-choice speedup, agreement)".to_string(),
        "≥ 0.95x (parity within noise)".to_string(),
        format!(
            "{}x, {} vs {} agree",
            f2(delta.speedup_vs_static),
            f2(delta.agreement_calibrated),
            f2(delta.agreement_static)
        ),
        yesno(delta.speedup_vs_static >= 0.95),
    ]);

    // Claim 4: hierarchical amortization ≤ 20 runs for most positive cases.
    let runs: Vec<f64> = cl
        .iter()
        .filter(|r| r.scheme == "Hierarchical")
        .filter_map(|r| amortization_runs(r.preprocess_seconds, r.base_seconds, r.kernel_seconds))
        .collect();
    let within20 = if runs.is_empty() {
        0.0
    } else {
        100.0 * runs.iter().filter(|&&x| x <= 20.0).count() as f64 / runs.len() as f64
    };
    t.push_row(vec![
        "hierarchical amortized ≤ 20 SpGEMMs (of positive cases)".to_string(),
        "~90%".to_string(),
        format!("{}%", f2(within20)),
        yesno(within20 >= 50.0),
    ]);

    rep.add_table("headline claims", t);
    rep
}

fn yesno(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_datasets::Scale;

    #[test]
    fn summary_renders_on_tiny_subset() {
        let cfg = RunConfig { subset: Some(3), reps: 1, scale: Scale::Small, ..Default::default() };
        let rep = run(&cfg);
        let md = rep.to_markdown();
        assert!(md.contains("headline claims"));
        assert!(md.contains("hierarchical GM"));
    }
}
