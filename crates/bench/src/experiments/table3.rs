//! Table 3: row-wise SpGEMM speedup after reordering on the tall-skinny
//! (BC frontier) workload, relative to the original matrix order.
//!
//! `A` is reordered once (symmetric permutation); each frontier matrix has
//! its rows permuted to match `A`'s column space; the reported speedup is
//! the mean over the frontier iterations.

use crate::report::{f2, Report, Table};
use crate::runner::{time_rowwise, RunConfig};
use cw_datasets::frontier::bc_frontiers;
use cw_reorder::Reordering;
use cw_sparse::CsrMatrix;

/// Frontier-workload parameters (paper: first 10 forward frontiers; we use
/// 32 BFS sources so the tall-skinny B has meaningful width).
pub const SOURCES: usize = 32;
/// Number of frontier iterations evaluated.
pub const ITERS: usize = 10;

/// Mean speedup over frontiers for one (matrix, permutation) pair.
pub fn mean_frontier_speedup(
    a: &CsrMatrix,
    pa: &CsrMatrix,
    perm: &cw_sparse::Permutation,
    frontiers: &[CsrMatrix],
    reps: usize,
) -> f64 {
    let mut total = 0.0;
    for f in frontiers {
        let base = time_rowwise(a, f, reps);
        let pf = perm.permute_rows(f);
        let opt = time_rowwise(pa, &pf, reps);
        total += base / opt;
    }
    total / frontiers.len() as f64
}

/// Runs the Table 3 experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cw_datasets::tall_skinny_suite(cfg.scale);
    let algos = Reordering::all_ten();

    let mut rep = Report::new(
        "table3",
        "Row-wise SpGEMM speedup after reordering, tall-skinny (BC frontier) workload",
    );
    rep.note(format!("{SOURCES} BFS sources, first {ITERS} forward frontiers; speedups are means over the frontier iterations."));
    rep.note("Paper shape: gains track the A² results per dataset (locality lives in A's row grouping, not in B) — meshes gain most under RCM/ND/GP/HP.");

    let mut headers = vec!["Dataset".to_string()];
    headers.extend(algos.iter().map(|a| a.name().to_string()));
    headers.push("Best Reorder".to_string());
    let mut t = Table::new(headers);

    for d in &datasets {
        let a = d.build(cfg.scale);
        let frontiers = bc_frontiers(&a, SOURCES, ITERS, cfg.seed ^ 0xF0);
        if frontiers.is_empty() {
            continue;
        }
        let mut row = vec![d.name.to_string()];
        let mut best = f64::MIN;
        for &algo in &algos {
            let perm = algo.compute(&a, cfg.seed);
            let pa = perm.permute_symmetric(&a);
            let s = mean_frontier_speedup(&a, &pa, &perm, &frontiers, cfg.reps);
            best = best.max(s);
            row.push(f2(s));
        }
        row.push(f2(best));
        t.push_row(row);
    }
    rep.add_table("mean speedup per dataset × reordering", t);
    rep
}
