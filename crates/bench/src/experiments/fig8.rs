//! Figure 8: the three cluster-wise schemes on the ten representative
//! datasets, relative to row-wise SpGEMM on the original order.

use crate::experiments::sweep::cluster_sweep;
use crate::report::{f2, Report, Table};
use crate::runner::{ClusterScheme, RunConfig};
use cw_reorder::Reordering;

/// Runs the Fig. 8 experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cw_datasets::representative(cfg.scale);
    let combos = [
        (ClusterScheme::Fixed, Reordering::Original),
        (ClusterScheme::Variable, Reordering::Original),
        (ClusterScheme::Hierarchical, Reordering::Original),
    ];
    let records = cluster_sweep(&datasets, &combos, cfg);

    let mut rep = Report::new("fig8", "Cluster-wise SpGEMM on the representative datasets (A²)");
    rep.note("Paper shape: fixed/variable help the block/banded and mesh matrices (up to ~1.6×), hierarchical is the most consistent winner.");
    let mut t = Table::new(vec!["Dataset", "Fixed-length", "Variable-length", "Hierarchical"]);
    for d in &datasets {
        let get = |scheme: &str| -> String {
            records
                .iter()
                .find(|r| r.dataset == d.name && r.scheme == scheme)
                .map(|r| f2(r.speedup))
                .unwrap_or_else(|| "-".into())
        };
        t.push_row(vec![
            d.name.to_string(),
            get("Fixed-length"),
            get("Variable-length"),
            get("Hierarchical"),
        ]);
    }
    rep.add_table("speedup vs row-wise original", t);

    let mut pre = Table::new(vec!["Dataset", "Scheme", "preprocess_s", "kernel_s", "base_s"]);
    for r in &records {
        pre.push_row(vec![
            r.dataset.to_string(),
            r.scheme.to_string(),
            format!("{:.6}", r.preprocess_seconds),
            format!("{:.6}", r.kernel_seconds),
            format!("{:.6}", r.base_seconds),
        ]);
    }
    rep.add_table("timings", pre);
    rep
}
