//! Table 2: GM / Pos.% / +GM of every reordering across the three SpGEMM
//! variants (row-wise, fixed-length cluster, variable-length cluster),
//! plus the "Best Reord." oracle row.

use crate::experiments::sweep::{cluster_sweep, rowwise_sweep, ClusterRecord, RowwiseRecord};
use crate::report::{f2, Report, Table};
use crate::runner::{ClusterScheme, RunConfig};
use crate::stats::{summarize_speedups, unique_stable};
use cw_reorder::Reordering;
use std::collections::HashMap;

/// Per-(variant, algorithm) speedup populations collected for the table.
pub struct Table2Data {
    /// Row-wise sweep records.
    pub rowwise: Vec<RowwiseRecord>,
    /// Fixed/variable cluster sweep records (reordering upstream).
    pub cluster: Vec<ClusterRecord>,
}

/// Collects the measurements.
pub fn collect(cfg: &RunConfig) -> Table2Data {
    let datasets = cfg.select(cw_datasets::corpus(cfg.scale));
    let algos = Reordering::all_ten();
    let rowwise = rowwise_sweep(&datasets, &algos, cfg);
    let mut combos = Vec::new();
    for scheme in [ClusterScheme::Fixed, ClusterScheme::Variable] {
        for &algo in &algos {
            combos.push((scheme, algo));
        }
    }
    let cluster = cluster_sweep(&datasets, &combos, cfg);
    Table2Data { rowwise, cluster }
}

/// Renders Table 2 from collected data.
pub fn render(data: &Table2Data) -> Report {
    let mut rep =
        Report::new("table2", "Reordering speedups across SpGEMM variants (GM / Pos.% / +GM)");
    rep.note("Speedups relative to the same variant on the ORIGINAL matrix order (row-wise baseline for all columns, matching the paper).");
    rep.note("Paper shape: HP/GP/RCM lead every variant; Shuffled ≈ 0.4 GM; 'Best Reord.' GM ≈ 2-3 with ≥90% positive.");

    let mut t = Table::new(vec![
        "Algorithm",
        "Row GM",
        "Row Pos.%",
        "Row +GM",
        "Fixed GM",
        "Fixed Pos.%",
        "Fixed +GM",
        "Var GM",
        "Var Pos.%",
        "Var +GM",
    ]);

    let algo_order: Vec<&str> = unique_stable(data.rowwise.iter().map(|r| r.algo));

    // Speedup maps keyed by (dataset, algo).
    let row_map: HashMap<(&str, &str), f64> =
        data.rowwise.iter().map(|r| ((r.dataset, r.algo), r.speedup)).collect();
    let fix_map: HashMap<(&str, &str), f64> = data
        .cluster
        .iter()
        .filter(|r| r.scheme == "Fixed-length")
        .map(|r| ((r.dataset, r.reorder), r.speedup))
        .collect();
    let var_map: HashMap<(&str, &str), f64> = data
        .cluster
        .iter()
        .filter(|r| r.scheme == "Variable-length")
        .map(|r| ((r.dataset, r.reorder), r.speedup))
        .collect();

    let summarize = |map: &HashMap<(&str, &str), f64>, algo: &str| -> (String, String, String) {
        let vals: Vec<f64> = map.iter().filter(|((_, a), _)| *a == algo).map(|(_, &s)| s).collect();
        let s = summarize_speedups(&vals);
        (f2(s.gm), f2(s.pos_pct), f2(s.pos_gm))
    };

    for algo in &algo_order {
        let (rg, rp, rpg) = summarize(&row_map, algo);
        let (fg, fp, fpg) = summarize(&fix_map, algo);
        let (vg, vp, vpg) = summarize(&var_map, algo);
        t.push_row(vec![algo.to_string(), rg, rp, rpg, fg, fp, fpg, vg, vp, vpg]);
    }

    // "Best Reord." row: per dataset, the max speedup over all algorithms.
    let best_of = |map: &HashMap<(&str, &str), f64>| -> Vec<f64> {
        let mut per_ds: HashMap<&str, f64> = HashMap::new();
        for ((ds, _), &s) in map {
            let e = per_ds.entry(ds).or_insert(f64::MIN);
            if s > *e {
                *e = s;
            }
        }
        per_ds.into_values().collect()
    };
    let rb = summarize_speedups(&best_of(&row_map));
    let fb = summarize_speedups(&best_of(&fix_map));
    let vb = summarize_speedups(&best_of(&var_map));
    t.push_row(vec![
        "Best Reord.".to_string(),
        f2(rb.gm),
        f2(rb.pos_pct),
        f2(rb.pos_gm),
        f2(fb.gm),
        f2(fb.pos_pct),
        f2(fb.pos_gm),
        f2(vb.gm),
        f2(vb.pos_pct),
        f2(vb.pos_gm),
    ]);

    rep.add_table("summary", t);
    rep
}

/// Runs the Table 2 experiment end to end.
pub fn run(cfg: &RunConfig) -> Report {
    render(&collect(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_datasets::Scale;

    #[test]
    fn table2_renders_on_tiny_subset() {
        let cfg = RunConfig { subset: Some(2), reps: 1, scale: Scale::Small, ..Default::default() };
        let rep = run(&cfg);
        let md = rep.to_markdown();
        assert!(md.contains("Best Reord."));
        assert!(md.contains("Shuffled"));
        assert!(md.contains("HP"));
    }
}
