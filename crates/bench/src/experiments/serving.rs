//! Serving experiment: offered-load sweep over [`cw_service::SpgemmService`]
//! — throughput and latency vs shard count and batch window.
//!
//! The paper's amortization argument (§4.5, Fig. 10) says preprocessing
//! only pays off under repeated traffic; this experiment measures the
//! serving layer that *creates* that repetition: requests over a fixed set
//! of operands are pushed through the service under every (shard count ×
//! batch window) combination, and the table reports end-to-end throughput,
//! latency quantiles, cache hit rate, and how much batch coalescing
//! actually happened. Multicore SpGEMM throughput hinges on keeping all
//! cores fed with balanced batches (Nagasaka et al.); the shard sweep
//! shows how far fingerprint-sharding gets toward that.

use crate::report::{Report, Table};
use crate::runner::RunConfig;
use cw_service::{MultiplyRequest, ServiceConfig, SpgemmService};
use cw_sparse::CsrMatrix;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard counts swept.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Batch windows swept (milliseconds; 0 disables coalescing).
const WINDOWS_MS: [u64; 2] = [0, 2];
/// Right-hand sides served per matrix per rep.
const RHS_PER_MATRIX: usize = 8;

/// Runs the serving experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::representative(cfg.scale));
    let mats: Vec<Arc<CsrMatrix>> = datasets.iter().map(|d| Arc::new(d.build(cfg.scale))).collect();
    let requests_per_cell = mats.len() * RHS_PER_MATRIX * cfg.reps.max(1);

    let mut rep = Report::new(
        "serving",
        "SpgemmService offered-load sweep: throughput/latency vs shards and batch window",
    );
    rep.note(format!(
        "{} operands x {} rhs x {} reps = {} requests per cell; requests on one operand share \
         its fingerprint and can coalesce.",
        mats.len(),
        RHS_PER_MATRIX,
        cfg.reps.max(1),
        requests_per_cell,
    ));
    rep.note("throughput = completed requests / wall seconds (submit through drain).");
    rep.note("hit rate sums the per-shard plan caches; window 0 disables coalescing (every batch is size 1).");

    let mut t = Table::new(vec![
        "shards",
        "window ms",
        "requests",
        "completed",
        "rejected",
        "wall s",
        "throughput req/s",
        "p50 ms",
        "p99 ms",
        "hit rate",
        "coalesced batches",
        "max batch",
    ]);
    for shards in SHARD_COUNTS {
        for window_ms in WINDOWS_MS {
            let service = SpgemmService::new(ServiceConfig {
                shards,
                batch_window: Duration::from_millis(window_ms),
                queue_capacity: requests_per_cell.max(64) * 2,
                seed: cfg.seed,
                ..ServiceConfig::default()
            });
            let t0 = Instant::now();
            let mut tickets = Vec::with_capacity(requests_per_cell);
            for _ in 0..cfg.reps.max(1) {
                for _ in 0..RHS_PER_MATRIX {
                    for a in &mats {
                        if let Ok(ticket) =
                            service.submit(MultiplyRequest::new(Arc::clone(a), Arc::clone(a)))
                        {
                            tickets.push(ticket);
                        }
                    }
                }
            }
            let mut completed = 0u64;
            for ticket in tickets {
                if ticket.wait().is_ok() {
                    completed += 1;
                }
            }
            let wall = t0.elapsed().as_secs_f64();
            let stats = service.shutdown();
            t.push_row(vec![
                shards.to_string(),
                window_ms.to_string(),
                requests_per_cell.to_string(),
                completed.to_string(),
                stats.rejected.to_string(),
                format!("{wall:.4}"),
                format!("{:.1}", completed as f64 / wall.max(1e-9)),
                format!("{:.3}", stats.latency.p50_seconds * 1e3),
                format!("{:.3}", stats.latency.p99_seconds * 1e3),
                format!("{:.2}", stats.total_cache().hit_rate()),
                stats.coalesced_batches().to_string(),
                stats.max_batch_size().to_string(),
            ]);
        }
    }
    rep.add_table("offered-load sweep", t);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_experiment_serves_every_request() {
        let cfg = RunConfig { reps: 1, subset: Some(2), ..Default::default() };
        let rep = run(&cfg);
        assert_eq!(rep.id, "serving");
        assert_eq!(rep.tables.len(), 1);
        let (_, t) = &rep.tables[0];
        assert_eq!(t.rows.len(), SHARD_COUNTS.len() * WINDOWS_MS.len());
        for row in &t.rows {
            let requests: u64 = row[2].parse().unwrap();
            let completed: u64 = row[3].parse().unwrap();
            let rejected: u64 = row[4].parse().unwrap();
            assert_eq!(completed, requests, "every request must be served: {row:?}");
            assert_eq!(rejected, 0, "queue sized to the load must not reject");
            let hit_rate: f64 = row[9].parse().unwrap();
            assert!(hit_rate > 0.5, "repeated operands must hit shard caches: {hit_rate}");
        }
    }
}
