//! Serving experiment: offered-load sweep over [`cw_service::SpgemmService`]
//! — throughput and latency vs shard count and batch window.
//!
//! The paper's amortization argument (§4.5, Fig. 10) says preprocessing
//! only pays off under repeated traffic; this experiment measures the
//! serving layer that *creates* that repetition: requests over a fixed set
//! of operands are pushed through the service under every (shard count ×
//! batch window) combination, and the table reports end-to-end throughput,
//! latency quantiles, cache hit rate, and how much batch coalescing
//! actually happened. Multicore SpGEMM throughput hinges on keeping all
//! cores fed with balanced batches (Nagasaka et al.); the shard sweep
//! shows how far fingerprint-sharding gets toward that.

use crate::report::{Direction, Report, Table};
use crate::runner::{anchor_seconds, RunConfig};
use cw_service::{MultiplyRequest, ServiceConfig, SpgemmService};
use cw_sparse::CsrMatrix;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard counts swept.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Batch windows swept (milliseconds; 0 disables coalescing).
const WINDOWS_MS: [u64; 2] = [0, 2];
/// Right-hand sides served per matrix per rep.
const RHS_PER_MATRIX: usize = 8;
/// Alternating traced/untraced rounds in the obs-overhead probe.
const OVERHEAD_ROUNDS: usize = 3;
/// Warm requests measured per overhead round.
const OVERHEAD_REQUESTS: usize = 64;

/// Warm p50 request latency through a fresh service (window 0, caches
/// pre-warmed so every measured request is a hit), plus — for traced runs
/// — the JSON-lines obs export. Used by the obs-overhead probe below.
fn warm_round(mats: &[Arc<CsrMatrix>], seed: u64, tracing: bool) -> (f64, String) {
    let service = SpgemmService::new(ServiceConfig {
        shards: 2,
        batch_window: Duration::ZERO,
        queue_capacity: OVERHEAD_REQUESTS * 2 + 64,
        seed,
        tracing,
        ..ServiceConfig::default()
    });
    for a in mats {
        let t = service.submit(MultiplyRequest::new(Arc::clone(a), Arc::clone(a))).unwrap();
        let _ = t.wait();
    }
    let mut latencies = Vec::with_capacity(OVERHEAD_REQUESTS);
    for i in 0..OVERHEAD_REQUESTS {
        let a = &mats[i % mats.len()];
        let t = service.submit(MultiplyRequest::new(Arc::clone(a), Arc::clone(a))).unwrap();
        if let Ok(resp) = t.wait() {
            latencies.push(resp.report.latency_seconds);
        }
    }
    service.shutdown();
    latencies.sort_by(f64::total_cmp);
    let p50 = latencies.get(latencies.len() / 2).copied().unwrap_or(f64::NAN);
    let jsonl = if tracing { service.export_jsonl() } else { String::new() };
    (p50, jsonl)
}

/// Runs the serving experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cfg.select(cw_datasets::representative(cfg.scale));
    let mats: Vec<Arc<CsrMatrix>> = datasets.iter().map(|d| Arc::new(d.build(cfg.scale))).collect();
    let requests_per_cell = mats.len() * RHS_PER_MATRIX * cfg.reps.max(1);

    let mut rep = Report::new(
        "serving",
        "SpgemmService offered-load sweep: throughput/latency vs shards and batch window",
    );
    rep.note(format!(
        "{} operands x {} rhs x {} reps = {} requests per cell; requests on one operand share \
         its fingerprint and can coalesce.",
        mats.len(),
        RHS_PER_MATRIX,
        cfg.reps.max(1),
        requests_per_cell,
    ));
    rep.note("throughput = completed requests / wall seconds (submit through drain).");
    rep.note("hit rate sums the per-shard plan caches; window 0 disables coalescing (every batch is size 1).");

    let mut t = Table::new(vec![
        "shards",
        "window ms",
        "requests",
        "completed",
        "rejected",
        "wall s",
        "throughput req/s",
        "p50 ms",
        "p99 ms",
        "hit rate",
        "coalesced batches",
        "max batch",
    ]);
    for shards in SHARD_COUNTS {
        for window_ms in WINDOWS_MS {
            let service = SpgemmService::new(ServiceConfig {
                shards,
                batch_window: Duration::from_millis(window_ms),
                queue_capacity: requests_per_cell.max(64) * 2,
                seed: cfg.seed,
                ..ServiceConfig::default()
            });
            let t0 = Instant::now();
            let mut tickets = Vec::with_capacity(requests_per_cell);
            for _ in 0..cfg.reps.max(1) {
                for _ in 0..RHS_PER_MATRIX {
                    for a in &mats {
                        if let Ok(ticket) =
                            service.submit(MultiplyRequest::new(Arc::clone(a), Arc::clone(a)))
                        {
                            tickets.push(ticket);
                        }
                    }
                }
            }
            let mut completed = 0u64;
            for ticket in tickets {
                if ticket.wait().is_ok() {
                    completed += 1;
                }
            }
            let wall = t0.elapsed().as_secs_f64();
            let stats = service.shutdown();
            t.push_row(vec![
                shards.to_string(),
                window_ms.to_string(),
                requests_per_cell.to_string(),
                completed.to_string(),
                stats.rejected.to_string(),
                format!("{wall:.4}"),
                format!("{:.1}", completed as f64 / wall.max(1e-9)),
                format!("{:.3}", stats.latency.p50_seconds * 1e3),
                format!("{:.3}", stats.latency.p99_seconds * 1e3),
                format!("{:.2}", stats.total_cache().hit_rate()),
                stats.coalesced_batches().to_string(),
                stats.max_batch_size().to_string(),
            ]);
        }
    }
    rep.add_table("offered-load sweep", t);

    // --- Obs-overhead probe: tracing must be (nearly) free ---
    // Alternating traced/untraced rounds on a warm window-0 service; the
    // min-of-round-medians is robust to scheduler spikes on shared CI
    // runners. The fraction is gated absolutely by the perf gate's
    // `bounded_` contract (ceiling pinned in ci/bench_baseline.json).
    let mut p50_off = f64::INFINITY;
    let mut p50_on = f64::INFINITY;
    let mut trace_jsonl = String::new();
    for round in 0..OVERHEAD_ROUNDS {
        let (off, _) = warm_round(&mats, cfg.seed, false);
        let (on, jsonl) = warm_round(&mats, cfg.seed.wrapping_add(round as u64), true);
        p50_off = p50_off.min(off);
        p50_on = p50_on.min(on);
        trace_jsonl = jsonl;
    }
    let overhead_frac = ((p50_on - p50_off) / p50_off.max(1e-12)).max(0.0);
    rep.note(format!(
        "obs overhead probe: warm p50 {:.1}µs untraced vs {:.1}µs traced over {} alternating \
         rounds of {} requests → overhead fraction {:.4} (perf-gated ceiling: see \
         bounded_obs_overhead_frac in ci/bench_baseline.json).",
        p50_off * 1e6,
        p50_on * 1e6,
        OVERHEAD_ROUNDS,
        OVERHEAD_REQUESTS,
        overhead_frac,
    ));
    rep.add_metric("bounded_obs_overhead_frac", overhead_frac, Direction::LowerIsBetter);
    rep.add_metric("obs_p50_untraced_s", p50_off, Direction::LowerIsBetter);
    rep.add_metric("obs_p50_traced_s", p50_on, Direction::LowerIsBetter);
    rep.add_metric("anchor_s", anchor_seconds(cfg.reps), Direction::LowerIsBetter);
    // The last traced round's flight recorder + metrics, as a versioned
    // JSON-lines artifact (uploaded by the CI serving-smoke job).
    rep.attachments.push(("OBS_serving.jsonl".to_string(), trace_jsonl));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_engine::calibrate::json::{self, JsonValue};

    #[test]
    fn serving_experiment_serves_every_request() {
        let cfg = RunConfig { reps: 1, subset: Some(2), ..Default::default() };
        let rep = run(&cfg);
        assert_eq!(rep.id, "serving");
        assert_eq!(rep.tables.len(), 1);
        let (_, t) = &rep.tables[0];
        assert_eq!(t.rows.len(), SHARD_COUNTS.len() * WINDOWS_MS.len());
        for row in &t.rows {
            let requests: u64 = row[2].parse().unwrap();
            let completed: u64 = row[3].parse().unwrap();
            let rejected: u64 = row[4].parse().unwrap();
            assert_eq!(completed, requests, "every request must be served: {row:?}");
            assert_eq!(rejected, 0, "queue sized to the load must not reject");
            let hit_rate: f64 = row[9].parse().unwrap();
            assert!(hit_rate > 0.5, "repeated operands must hit shard caches: {hit_rate}");
        }

        // The obs-overhead probe gates the tracing tax.
        let overhead = rep
            .metrics
            .iter()
            .find(|m| m.name == "bounded_obs_overhead_frac")
            .expect("overhead metric emitted");
        assert!(overhead.value.is_finite() && overhead.value >= 0.0);

        // The trace artifact is parseable, versioned JSON-lines where
        // every request trace has exactly one root and nesting depths.
        let (name, jsonl) =
            rep.attachments.iter().find(|(n, _)| n == "OBS_serving.jsonl").expect("trace artifact");
        assert_eq!(name, "OBS_serving.jsonl");
        let lines: Vec<JsonValue> =
            jsonl.lines().map(|l| json::parse(l).expect("each line parses")).collect();
        assert!(lines.len() >= 3, "header + traces + metrics");
        assert_eq!(lines[0].get("schema_version").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(lines[0].get("kind").and_then(JsonValue::as_str), Some("obs"));
        let traces: Vec<&JsonValue> = lines
            .iter()
            .filter(|l| l.get("kind").and_then(JsonValue::as_str) == Some("trace"))
            .collect();
        assert!(!traces.is_empty(), "traced rounds must leave request traces");
        for tr in traces {
            let spans = tr.get("spans").and_then(JsonValue::as_array).expect("spans array");
            let roots = spans
                .iter()
                .filter(|s| s.get("depth").and_then(JsonValue::as_f64) == Some(0.0))
                .count();
            assert_eq!(roots, 1, "exactly one root span per request trace");
            for want in ["request", "queue", "serve", "execute"] {
                assert!(
                    spans.iter().any(|s| s.get("name").and_then(JsonValue::as_str) == Some(want)),
                    "missing {want} span"
                );
            }
        }
        let last = lines.last().unwrap();
        assert_eq!(last.get("kind").and_then(JsonValue::as_str), Some("metrics"));
        assert!(last.get("histograms").is_some());
    }
}
