//! Shared measurement sweeps reused by several figures/tables.

use crate::runner::{
    measure_clusterwise_a2, measure_reordered_rowwise, time_rowwise_a2, ClusterScheme, RunConfig,
};
use cw_datasets::Dataset;
use cw_reorder::Reordering;

/// One row-wise measurement: `A'²` after a reordering vs `A²` original.
#[derive(Debug, Clone)]
pub struct RowwiseRecord {
    /// Dataset name.
    pub dataset: &'static str,
    /// Reordering display name.
    pub algo: &'static str,
    /// `t(original) / t(reordered)`.
    pub speedup: f64,
    /// Reordering preprocessing seconds.
    pub preprocess_seconds: f64,
    /// Original-order kernel seconds (the baseline).
    pub base_seconds: f64,
    /// Reordered kernel seconds.
    pub kernel_seconds: f64,
}

/// Runs the row-wise reordering sweep: every dataset × every algorithm.
/// The baseline (`A²` in original order) is measured once per dataset.
pub fn rowwise_sweep(
    datasets: &[Dataset],
    algos: &[Reordering],
    cfg: &RunConfig,
) -> Vec<RowwiseRecord> {
    let mut out = Vec::with_capacity(datasets.len() * algos.len());
    for d in datasets {
        let a = d.build(cfg.scale);
        let base = time_rowwise_a2(&a, cfg.reps);
        for &algo in algos {
            let (m, _) = measure_reordered_rowwise(&a, algo, cfg);
            out.push(RowwiseRecord {
                dataset: d.name,
                algo: algo.name(),
                speedup: base / m.kernel_seconds,
                preprocess_seconds: m.preprocess_seconds,
                base_seconds: base,
                kernel_seconds: m.kernel_seconds,
            });
        }
    }
    out
}

/// One cluster-wise measurement: scheme (+ optional upstream reordering)
/// vs the row-wise original baseline.
#[derive(Debug, Clone)]
pub struct ClusterRecord {
    /// Dataset name.
    pub dataset: &'static str,
    /// Clustering scheme name.
    pub scheme: &'static str,
    /// Upstream reordering name (`Original` = none).
    pub reorder: &'static str,
    /// `t(row-wise original) / t(cluster-wise)`.
    pub speedup: f64,
    /// Total preprocessing seconds (reorder + cluster build).
    pub preprocess_seconds: f64,
    /// Baseline seconds.
    pub base_seconds: f64,
    /// Cluster-wise kernel seconds.
    pub kernel_seconds: f64,
}

/// Runs the cluster-wise sweep: every dataset × scheme × upstream
/// reordering (hierarchical takes no upstream reordering — it reorders
/// itself — so pass it with [`Reordering::Original`] only).
pub fn cluster_sweep(
    datasets: &[Dataset],
    combos: &[(ClusterScheme, Reordering)],
    cfg: &RunConfig,
) -> Vec<ClusterRecord> {
    let mut out = Vec::with_capacity(datasets.len() * combos.len());
    for d in datasets {
        let a = d.build(cfg.scale);
        let base = time_rowwise_a2(&a, cfg.reps);
        for &(scheme, reorder) in combos {
            let m = measure_clusterwise_a2(&a, reorder, scheme, cfg);
            out.push(ClusterRecord {
                dataset: d.name,
                scheme: scheme.name(),
                reorder: reorder.name(),
                speedup: base / m.kernel_seconds,
                preprocess_seconds: m.preprocess_seconds,
                base_seconds: base,
                kernel_seconds: m.kernel_seconds,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_datasets::Scale;

    fn quick_cfg() -> RunConfig {
        RunConfig { reps: 1, scale: Scale::Small, ..Default::default() }
    }

    #[test]
    fn rowwise_sweep_produces_record_per_combo() {
        let ds = cw_datasets::representative(Scale::Small)[..2].to_vec();
        let algos = [Reordering::Random, Reordering::Rcm];
        let recs = rowwise_sweep(&ds, &algos, &quick_cfg());
        assert_eq!(recs.len(), 4);
        for r in &recs {
            assert!(r.speedup > 0.0);
            assert!(r.base_seconds > 0.0);
        }
    }

    #[test]
    fn cluster_sweep_produces_record_per_combo() {
        let ds = cw_datasets::representative(Scale::Small)[3..4].to_vec();
        let combos = [
            (ClusterScheme::Fixed, Reordering::Original),
            (ClusterScheme::Hierarchical, Reordering::Original),
        ];
        let recs = cluster_sweep(&ds, &combos, &quick_cfg());
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.speedup > 0.0));
    }
}
