//! Figure 9: row-wise SpGEMM speedup of AMD / RCM / GP / HP on the ten
//! representative datasets.

use crate::experiments::sweep::rowwise_sweep;
use crate::report::{f2, Report, Table};
use crate::runner::RunConfig;
use cw_reorder::Reordering;

/// Runs the Fig. 9 experiment.
pub fn run(cfg: &RunConfig) -> Report {
    let datasets = cw_datasets::representative(cfg.scale);
    let algos = [Reordering::Amd, Reordering::Rcm, Reordering::Gp(16), Reordering::Hp(16)];
    let records = rowwise_sweep(&datasets, &algos, cfg);

    let mut rep = Report::new(
        "fig9",
        "Row-wise SpGEMM speedup of AMD/RCM/GP/HP on the representative datasets",
    );
    rep.note("Paper shape: limited effect on the first six (already-ordered or unstructured) datasets; large wins (up to ~11×) on the scrambled meshes AS365/huget/M6/NLR from RCM/GP/HP.");
    let mut t = Table::new(vec!["Dataset", "AMD", "RCM", "GP", "HP"]);
    for d in &datasets {
        let get = |algo: &str| -> String {
            records
                .iter()
                .find(|r| r.dataset == d.name && r.algo == algo)
                .map(|r| f2(r.speedup))
                .unwrap_or_else(|| "-".into())
        };
        t.push_row(vec![d.name.to_string(), get("AMD"), get("RCM"), get("GP"), get("HP")]);
    }
    rep.add_table("speedup vs original order", t);
    rep
}
