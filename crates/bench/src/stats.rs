//! Statistical summaries used by the evaluation (geometric means, the
//! Table 2 triple, box-plot quantiles, performance profiles, CDFs).

/// First-occurrence-order unique values (unlike `Vec::dedup`, which only
/// collapses *consecutive* duplicates).
pub fn unique_stable<T: Clone + PartialEq>(items: impl IntoIterator<Item = T>) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for it in items {
        if !out.contains(&it) {
            out.push(it);
        }
    }
    out
}

/// Geometric mean of strictly positive values (`None` if empty or any ≤ 0).
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// The Table 2 summary of a speedup population: geometric mean over all
/// inputs, fraction with speedup > 1, and geometric mean over only the
/// positive cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupSummary {
    /// Geometric mean over every input (`GM`).
    pub gm: f64,
    /// Percentage of inputs with speedup > 1 (`Pos.%`).
    pub pos_pct: f64,
    /// Geometric mean over positive inputs only (`+GM`); 0 when none.
    pub pos_gm: f64,
    /// Population size.
    pub n: usize,
}

/// Computes the Table 2 triple for a set of speedups.
pub fn summarize_speedups(speedups: &[f64]) -> SpeedupSummary {
    let n = speedups.len();
    let gm = geomean(speedups).unwrap_or(0.0);
    let pos: Vec<f64> = speedups.iter().copied().filter(|&s| s > 1.0).collect();
    SpeedupSummary {
        gm,
        pos_pct: if n == 0 { 0.0 } else { 100.0 * pos.len() as f64 / n as f64 },
        pos_gm: geomean(&pos).unwrap_or(0.0),
        n,
    }
}

/// Box-plot quantiles (min, q1, median, q3, max) — the Fig. 2/3 boxes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes box-plot quantiles (linear interpolation). `None` when empty.
pub fn quantiles(values: &[f64]) -> Option<Quantiles> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (idx - lo as f64) * (v[hi] - v[lo])
        }
    };
    Some(Quantiles { min: v[0], q1: q(0.25), median: q(0.5), q3: q(0.75), max: *v.last().unwrap() })
}

/// A performance-profile curve (paper Fig. 10): for each threshold `x`,
/// the fraction of problems whose metric is ≤ `x`.
pub fn performance_profile(values: &[f64], thresholds: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return thresholds.iter().map(|&x| (x, 0.0)).collect();
    }
    thresholds
        .iter()
        .map(|&x| {
            let frac = values.iter().filter(|&&v| v <= x).count() as f64 / values.len() as f64;
            (x, frac)
        })
        .collect()
}

/// CDF sample points (paper Fig. 11): `(value, fraction ≤ value)` at each
/// distinct value.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len() as f64;
    v.iter().enumerate().map(|(i, &x)| (x, (i + 1) as f64 / n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[1.0, 4.0]), Some(2.0));
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        let g = geomean(&[2.0, 2.0, 2.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_matches_definitions() {
        let s = summarize_speedups(&[2.0, 0.5, 4.0, 0.25]);
        assert!((s.gm - 1.0).abs() < 1e-12); // 2*0.5*4*0.25 = 1
        assert!((s.pos_pct - 50.0).abs() < 1e-12);
        assert!((s.pos_gm - (8.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn summary_empty_and_all_negative() {
        let s = summarize_speedups(&[]);
        assert_eq!(s.pos_pct, 0.0);
        let s2 = summarize_speedups(&[0.5, 0.9]);
        assert_eq!(s2.pos_pct, 0.0);
        assert_eq!(s2.pos_gm, 0.0);
    }

    #[test]
    fn quantiles_of_known_set() {
        let q = quantiles(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(q.min, 1.0);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.max, 5.0);
        assert!(quantiles(&[]).is_none());
    }

    #[test]
    fn profile_is_monotone_cdf() {
        let vals = vec![1.0, 3.0, 5.0, 20.0];
        let prof = performance_profile(&vals, &[0.0, 1.0, 4.0, 10.0, 100.0]);
        let fracs: Vec<f64> = prof.iter().map(|&(_, f)| f).collect();
        assert_eq!(fracs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn cdf_endpoints() {
        let c = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(c.first().unwrap().0, 1.0);
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
