//! Timing harness and the shared per-dataset measurement pipeline.

use cw_core::{
    clusterwise_spgemm, fixed_clustering, hierarchical_clustering, variable_clustering,
    ClusterConfig, CsrCluster,
};
use cw_datasets::{Dataset, Scale};
use cw_reorder::Reordering;
use cw_sparse::{CsrMatrix, Permutation};
use cw_spgemm::spgemm;
use std::hint::black_box;
use std::time::Instant;

/// Global experiment options.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Dataset scale.
    pub scale: Scale,
    /// Timing repetitions (median is reported).
    pub reps: usize,
    /// Base RNG seed for randomized algorithms.
    pub seed: u64,
    /// Optional cap on the number of corpus datasets (for quick runs).
    pub subset: Option<usize>,
    /// Clustering parameters (paper defaults).
    pub cluster: ClusterConfig,
    /// Fixed-length cluster size (paper uses the `max_cluster_th`).
    pub fixed_len: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scale: Scale::Small,
            reps: 3,
            seed: 0xC0FFEE,
            subset: None,
            cluster: ClusterConfig::default(),
            fixed_len: 8,
        }
    }
}

impl RunConfig {
    /// Applies the subset cap to a dataset list.
    pub fn select(&self, mut datasets: Vec<Dataset>) -> Vec<Dataset> {
        if let Some(n) = self.subset {
            datasets.truncate(n);
        }
        datasets
    }
}

/// Median wall-clock seconds of `f` over `reps` runs (after one warmup).
pub fn time_median<T, F: FnMut() -> T>(reps: usize, mut f: F) -> f64 {
    black_box(f());
    let reps = reps.max(1);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Machine-speed probe: median seconds of a fixed reference SpGEMM
/// (row-wise `A²` on a 40×40 Poisson grid). Emitted as the `anchor_s`
/// metric of every gated experiment so the CI perf gate can compare
/// *normalized* warm-path timings (`metric ÷ anchor`) across machines of
/// different absolute speed.
pub fn anchor_seconds(reps: usize) -> f64 {
    let a = cw_sparse::gen::grid::poisson2d(40, 40);
    time_median(reps.max(3), || spgemm(&a, &a))
}

/// One timed measurement with preprocessing cost attached.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Median kernel seconds.
    pub kernel_seconds: f64,
    /// Preprocessing seconds (reorder + cluster construction as relevant).
    pub preprocess_seconds: f64,
}

/// Times row-wise `A²` on the given matrix.
pub fn time_rowwise_a2(a: &CsrMatrix, reps: usize) -> f64 {
    time_median(reps, || spgemm(a, a))
}

/// Times row-wise `A·B`.
pub fn time_rowwise(a: &CsrMatrix, b: &CsrMatrix, reps: usize) -> f64 {
    time_median(reps, || spgemm(a, b))
}

/// Times cluster-wise `A·B` given a prebuilt clustered operand.
pub fn time_clusterwise(ac: &CsrCluster, b: &CsrMatrix, reps: usize) -> f64 {
    time_median(reps, || clusterwise_spgemm(ac, b))
}

/// Reorders `a` symmetrically with `algo` and times row-wise `A'²`.
pub fn measure_reordered_rowwise(
    a: &CsrMatrix,
    algo: Reordering,
    cfg: &RunConfig,
) -> (Measured, Permutation) {
    let t0 = Instant::now();
    let perm = algo.compute(a, cfg.seed);
    let preprocess = t0.elapsed().as_secs_f64();
    let pa = perm.permute_symmetric(a);
    let kernel = time_rowwise_a2(&pa, cfg.reps);
    (Measured { kernel_seconds: kernel, preprocess_seconds: preprocess }, perm)
}

/// Which cluster-wise scheme to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterScheme {
    /// Fixed-length clusters (paper §3.2).
    Fixed,
    /// Variable-length clusters (paper Alg. 2).
    Variable,
    /// Hierarchical clustering (paper Alg. 3; includes its own reordering).
    Hierarchical,
}

impl ClusterScheme {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterScheme::Fixed => "Fixed-length",
            ClusterScheme::Variable => "Variable-length",
            ClusterScheme::Hierarchical => "Hierarchical",
        }
    }
}

/// Builds the clustered operand for `scheme` over (already reordered) `a`,
/// returning the format and the build time. For `Hierarchical` the matrix
/// is additionally permuted internally; the effective square operand used
/// as `B` is returned as the third element.
pub fn build_clustered(
    a: &CsrMatrix,
    scheme: ClusterScheme,
    cfg: &RunConfig,
) -> (CsrCluster, f64, CsrMatrix) {
    let t0 = Instant::now();
    match scheme {
        ClusterScheme::Fixed => {
            let c = fixed_clustering(a, cfg.fixed_len);
            let cc = CsrCluster::from_csr(a, &c);
            (cc, t0.elapsed().as_secs_f64(), a.clone())
        }
        ClusterScheme::Variable => {
            let c = variable_clustering(a, &cfg.cluster);
            let cc = CsrCluster::from_csr(a, &c);
            (cc, t0.elapsed().as_secs_f64(), a.clone())
        }
        ClusterScheme::Hierarchical => {
            let h = hierarchical_clustering(a, &cfg.cluster);
            let (cc, pa) = h.build_symmetric(a);
            (cc, t0.elapsed().as_secs_f64(), pa)
        }
    }
}

/// Measures cluster-wise `A'²` for a scheme applied after `reorder`
/// (use [`Reordering::Original`] for "no reordering"). Returns kernel +
/// total preprocessing (reorder + cluster build) seconds.
pub fn measure_clusterwise_a2(
    a: &CsrMatrix,
    reorder: Reordering,
    scheme: ClusterScheme,
    cfg: &RunConfig,
) -> Measured {
    let t0 = Instant::now();
    let perm = reorder.compute(a, cfg.seed);
    let pa = perm.permute_symmetric(a);
    let reorder_secs = t0.elapsed().as_secs_f64();
    let (cc, build_secs, square) = build_clustered(&pa, scheme, cfg);
    let kernel = time_clusterwise(&cc, &square, cfg.reps);
    Measured { kernel_seconds: kernel, preprocess_seconds: reorder_secs + build_secs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::grid::poisson2d;

    #[test]
    fn time_median_is_positive_and_ordered() {
        let t = time_median(3, || {
            let mut s = 0u64;
            for i in 0..10_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(t > 0.0);
    }

    #[test]
    fn rowwise_and_clusterwise_measurements_run() {
        let a = poisson2d(12, 12);
        let cfg = RunConfig { reps: 1, ..Default::default() };
        let t_base = time_rowwise_a2(&a, 1);
        assert!(t_base > 0.0);
        for scheme in [ClusterScheme::Fixed, ClusterScheme::Variable, ClusterScheme::Hierarchical] {
            let m = measure_clusterwise_a2(&a, Reordering::Original, scheme, &cfg);
            assert!(m.kernel_seconds > 0.0, "{scheme:?}");
            assert!(m.preprocess_seconds >= 0.0);
        }
    }

    #[test]
    fn measure_reordered_runs_for_cheap_algorithms() {
        let a = poisson2d(10, 10);
        let cfg = RunConfig { reps: 1, ..Default::default() };
        let (m, perm) = measure_reordered_rowwise(&a, Reordering::Rcm, &cfg);
        assert!(m.kernel_seconds > 0.0);
        assert_eq!(perm.len(), 100);
    }

    #[test]
    fn subset_selection() {
        let cfg = RunConfig { subset: Some(3), ..Default::default() };
        let ds = cfg.select(cw_datasets::corpus(Scale::Small));
        assert_eq!(ds.len(), 3);
    }
}
