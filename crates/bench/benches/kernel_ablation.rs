//! Criterion bench for the access-pattern ablation: the same `CSR_Cluster`
//! operand processed column-major (paper Alg. 1) vs row-major (prior-work
//! style), plus the row-wise CSR baseline — the timing companion to the
//! simulated-miss table in `paper ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cw_core::ablation::clusterwise_row_major;
use cw_core::{fixed_clustering, CsrCluster};
use cw_sparse::gen::banded::grouped_rows;
use cw_spgemm::spgemm_serial;

fn bench_kernel_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("access_pattern_ablation");
    group.sample_size(10);
    // Wide shared-column groups: the case where traversal order matters.
    let a = grouped_rows(4096, 8, 48, 7);
    let cc = CsrCluster::from_csr(&a, &fixed_clustering(&a, 8));
    group.bench_with_input(BenchmarkId::new("rowwise_csr", "grouped"), &a, |b, a| {
        b.iter(|| spgemm_serial(a, a))
    });
    group.bench_with_input(
        BenchmarkId::new("cluster_row_major", "grouped"),
        &(&cc, &a),
        |b, (cc, a)| b.iter(|| clusterwise_row_major(cc, a)),
    );
    group.bench_with_input(
        BenchmarkId::new("cluster_column_major", "grouped"),
        &(&cc, &a),
        |b, (cc, a)| {
            b.iter(|| {
                cw_core::kernel::clusterwise_spgemm_with(
                    cc,
                    a,
                    &cw_spgemm::SpGemmOptions { parallel: false, ..Default::default() },
                )
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_kernel_ablation);
criterion_main!(benches);
