//! Criterion bench for Fig. 3: fixed/variable clustering with and without
//! upstream reordering, plus hierarchical, against row-wise original.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cw_bench::runner::{build_clustered, ClusterScheme, RunConfig};
use cw_core::clusterwise_spgemm;
use cw_datasets::{representative, Scale};
use cw_reorder::Reordering;
use cw_spgemm::spgemm;

fn bench_fig3(c: &mut Criterion) {
    let cfg = RunConfig::default();
    let mut group = c.benchmark_group("fig3_clusterwise_with_reordering");
    group.sample_size(10);
    let d = &representative(Scale::Small)[8]; // M6-like scrambled mesh
    let a = d.build(Scale::Small);
    group.bench_function("rowwise_original", |b| b.iter(|| spgemm(&a, &a)));
    for reorder in [Reordering::Original, Reordering::Rcm, Reordering::Hp(16)] {
        let pa = reorder.compute(&a, 7).permute_symmetric(&a);
        for scheme in [ClusterScheme::Fixed, ClusterScheme::Variable] {
            let (cc, _, square) = build_clustered(&pa, scheme, &cfg);
            group.bench_with_input(
                BenchmarkId::new(format!("{}+{}", reorder.name(), scheme.name()), d.name),
                &(&cc, &square),
                |b, (cc, sq)| b.iter(|| clusterwise_spgemm(cc, sq)),
            );
        }
    }
    let (cc, _, square) = build_clustered(&a, ClusterScheme::Hierarchical, &cfg);
    group.bench_function("Hierarchical", |b| b.iter(|| clusterwise_spgemm(&cc, &square)));
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
