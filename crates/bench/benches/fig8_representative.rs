//! Criterion bench for Fig. 8: the three cluster-wise schemes vs the
//! row-wise baseline on representative datasets (`A²`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cw_bench::runner::{build_clustered, ClusterScheme, RunConfig};
use cw_core::clusterwise_spgemm;
use cw_datasets::{representative, Scale};
use cw_spgemm::spgemm;

fn bench_fig8(c: &mut Criterion) {
    let cfg = RunConfig::default();
    let mut group = c.benchmark_group("fig8_clusterwise_a2");
    group.sample_size(10);
    // A fast, structurally diverse subset keeps `cargo bench` short.
    for d in representative(Scale::Small).iter().take(4) {
        let a = d.build(Scale::Small);
        group.bench_with_input(BenchmarkId::new("rowwise", d.name), &a, |b, a| {
            b.iter(|| spgemm(a, a))
        });
        for scheme in [ClusterScheme::Fixed, ClusterScheme::Variable, ClusterScheme::Hierarchical] {
            let (cc, _, square) = build_clustered(&a, scheme, &cfg);
            group.bench_with_input(
                BenchmarkId::new(scheme.name(), d.name),
                &(&cc, &square),
                |b, (cc, sq)| b.iter(|| clusterwise_spgemm(cc, sq)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
