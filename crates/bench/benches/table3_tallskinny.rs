//! Criterion bench for Tables 3–4: tall-skinny (BC frontier) SpGEMM,
//! row-wise vs hierarchical cluster-wise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cw_core::{clusterwise_spgemm, hierarchical_clustering, ClusterConfig};
use cw_datasets::frontier::bc_frontiers;
use cw_datasets::{tall_skinny_suite, Scale};
use cw_spgemm::spgemm;

fn bench_tall_skinny(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_tall_skinny");
    group.sample_size(10);
    for d in tall_skinny_suite(Scale::Small).iter().filter(|d| d.name.contains("road")) {
        let a = d.build(Scale::Small);
        let frontiers = bc_frontiers(&a, 32, 3, 1);
        let h = hierarchical_clustering(&a, &ClusterConfig::default());
        let (cc, _) = h.build_symmetric(&a);
        for (i, f) in frontiers.iter().enumerate() {
            group.bench_with_input(
                BenchmarkId::new("rowwise", format!("{}-i{}", d.name, i + 1)),
                &(&a, f),
                |b, (a, f)| b.iter(|| spgemm(a, f)),
            );
            let pf = h.perm.permute_rows(f);
            group.bench_with_input(
                BenchmarkId::new("hier-clusterwise", format!("{}-i{}", d.name, i + 1)),
                &(&cc, &pf),
                |b, (cc, pf)| b.iter(|| clusterwise_spgemm(cc, pf)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tall_skinny);
criterion_main!(benches);
