//! Criterion bench for Fig. 2: row-wise `A²` under different reorderings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cw_datasets::{representative, Scale};
use cw_reorder::Reordering;
use cw_spgemm::spgemm;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_rowwise_after_reordering");
    group.sample_size(10);
    // One scrambled mesh (reordering wins big) and one power-law graph
    // (reordering wins little) — the paper's contrast in miniature.
    let picks = ["M6-like", "wb-like"];
    for d in representative(Scale::Small).iter().filter(|d| picks.contains(&d.name)) {
        let a = d.build(Scale::Small);
        for algo in [
            Reordering::Original,
            Reordering::Random,
            Reordering::Rcm,
            Reordering::Gp(16),
            Reordering::Hp(16),
        ] {
            let pa = algo.compute(&a, 7).permute_symmetric(&a);
            group.bench_with_input(BenchmarkId::new(algo.name(), d.name), &pa, |b, pa| {
                b.iter(|| spgemm(pa, pa))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
