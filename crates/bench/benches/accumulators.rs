//! Ablation bench: the three sparse accumulators inside row-wise SpGEMM
//! (the paper fixes the hash accumulator per Nagasaka et al. [40]; this
//! bench justifies that default).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cw_datasets::{representative, Scale};
use cw_spgemm::{spgemm_with, AccumulatorKind, SpGemmOptions};

fn bench_accumulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulator_ablation");
    group.sample_size(10);
    for d in representative(Scale::Small).iter().take(3) {
        let a = d.build(Scale::Small);
        for acc in [AccumulatorKind::Hash, AccumulatorKind::Dense, AccumulatorKind::Sort] {
            let opts = SpGemmOptions { acc, ..Default::default() };
            group.bench_with_input(BenchmarkId::new(format!("{acc:?}"), d.name), &a, |b, a| {
                b.iter(|| spgemm_with(a, a, &opts))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_accumulators);
criterion_main!(benches);
