//! Ablation bench: the graph and hypergraph partitioners backing GP/HP/ND
//! (the dominant preprocessing costs in Fig. 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cw_datasets::{representative, Scale};
use cw_partition::{
    nested_dissection_order, partition_graph, partition_hypergraph, Graph, Hypergraph,
};

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);
    let d = &representative(Scale::Small)[8]; // M6-like mesh
    let a = d.build(Scale::Small);
    let g = Graph::from_matrix(&a);
    let hg = Hypergraph::column_net_model(&a);
    group.bench_with_input(BenchmarkId::new("graph_kway", d.name), &g, |b, g| {
        b.iter(|| partition_graph(g, 16, 7))
    });
    group.bench_with_input(BenchmarkId::new("hypergraph_kway", d.name), &hg, |b, hg| {
        b.iter(|| partition_hypergraph(hg, 16, 7))
    });
    group.bench_with_input(BenchmarkId::new("nested_dissection", d.name), &g, |b, g| {
        b.iter(|| nested_dissection_order(g, 64, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
