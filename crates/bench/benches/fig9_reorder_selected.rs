//! Criterion bench for Fig. 9: preprocessing cost of AMD/RCM/GP/HP (the
//! other axis of the reordering trade-off — Fig. 10's numerator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cw_datasets::{representative, Scale};
use cw_reorder::Reordering;

fn bench_reorder_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_reordering_preprocessing");
    group.sample_size(10);
    let d = &representative(Scale::Small)[9]; // NLR-like
    let a = d.build(Scale::Small);
    for algo in [
        Reordering::Random,
        Reordering::Degree,
        Reordering::Gray,
        Reordering::Rcm,
        Reordering::Amd,
        Reordering::Rabbit,
        Reordering::SlashBurn,
        Reordering::Nd,
        Reordering::Gp(16),
        Reordering::Hp(16),
    ] {
        group.bench_with_input(BenchmarkId::new(algo.name(), d.name), &a, |b, a| {
            b.iter(|| algo.compute(a, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reorder_cost);
criterion_main!(benches);
