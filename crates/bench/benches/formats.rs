//! Ablation bench: CSR_Cluster construction cost for the three clustering
//! schemes (the preprocessing side of Figs. 8/10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cw_core::{
    fixed_clustering, hierarchical_clustering, variable_clustering, ClusterConfig, CsrCluster,
};
use cw_datasets::{representative, Scale};

fn bench_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_cluster_construction");
    group.sample_size(10);
    let cfg = ClusterConfig::default();
    for d in representative(Scale::Small).iter().take(3) {
        let a = d.build(Scale::Small);
        group.bench_with_input(BenchmarkId::new("fixed", d.name), &a, |b, a| {
            b.iter(|| CsrCluster::from_csr(a, &fixed_clustering(a, 8)))
        });
        group.bench_with_input(BenchmarkId::new("variable", d.name), &a, |b, a| {
            b.iter(|| CsrCluster::from_csr(a, &variable_clustering(a, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("hierarchical", d.name), &a, |b, a| {
            b.iter(|| {
                let h = hierarchical_clustering(a, &cfg);
                h.build_symmetric(a)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
