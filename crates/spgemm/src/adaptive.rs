//! Row-adaptive SpGEMM: a per-row kernel zoo.
//!
//! One accumulator does not fit all rows. The upper-bound FLOP count of a
//! row (its intermediate-product count, [`crate::flops::flops_per_row`])
//! is known before any arithmetic happens, and it predicts which
//! accumulator wins:
//!
//! | upper bound                  | kernel         | why                              |
//! |------------------------------|----------------|----------------------------------|
//! | 0                            | skip           | row is empty by construction     |
//! | ≤ `small_flops`              | sorted array   | binary-search insert beats hashing at tiny sizes |
//! | ≥ `dense_fraction · ncols`   | dense SPA      | row saturates; direct indexing, no probing |
//! | otherwise                    | hash table     | the general-purpose middle       |
//!
//! This mirrors the `kernel_flag` 1/2/3 dispatch of per-row adaptive
//! SpGEMM implementations on KNL/GPU (Nagasaka et al.); the thresholds
//! here are CPU-tuned defaults, overridable per call.
//!
//! Selection depends only on the *structure* of `A` and `B`, and every
//! accumulator in the zoo merges duplicate columns in arrival order and
//! extracts in ascending column order — so the adaptive kernel is
//! **bit-identical** to the serial reference no matter where the
//! thresholds fall. The parallel path is single-pass: FLOP-balanced row
//! chunks each build their own output segment (no symbolic re-run), and
//! the segments are stitched in row order afterwards.

use crate::accumulator::{Accumulator, DenseAccumulator, HashAccumulator, SortedArrayAccumulator};
use crate::flops::flops_per_row;
use crate::rowwise::{accumulate_row, balanced_row_chunks};
use cw_sparse::{ColIdx, CsrMatrix, Value};
use rayon::prelude::*;

/// Per-row kernel selection thresholds (see the module table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveThresholds {
    /// Rows with at most this many intermediate products use the
    /// sorted-array accumulator.
    pub small_flops: u64,
    /// Rows whose upper bound reaches this fraction of `ncols` use the
    /// dense SPA.
    pub dense_fraction: f64,
}

impl Default for AdaptiveThresholds {
    fn default() -> Self {
        AdaptiveThresholds { small_flops: 32, dense_fraction: 0.25 }
    }
}

/// Tuning knobs for [`spgemm_adaptive_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveOptions {
    /// Kernel selection thresholds.
    pub thresholds: AdaptiveThresholds,
    /// Use the pool-parallel path (single-threaded runs fall through to
    /// the serial path automatically).
    pub parallel: bool,
}

/// The kernel chosen for one output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowKernel {
    /// No intermediate products: the output row is empty.
    Empty,
    /// Tiny row: sorted-array accumulator.
    SortedArray,
    /// Near-dense row: SPA with generation stamps.
    Dense,
    /// Everything else: open-addressing hash table.
    Hash,
}

/// Selects the kernel for a row with the given upper-bound product count
/// in a `ncols`-wide output.
#[inline]
pub fn select_row_kernel(upper_bound: u64, ncols: usize, t: &AdaptiveThresholds) -> RowKernel {
    if upper_bound == 0 {
        RowKernel::Empty
    } else if upper_bound <= t.small_flops {
        RowKernel::SortedArray
    } else if upper_bound as f64 >= t.dense_fraction * ncols as f64 {
        RowKernel::Dense
    } else {
        RowKernel::Hash
    }
}

/// One worker's set of reusable accumulators. The dense SPA costs
/// `O(ncols)` memory, so it is allocated only once a row actually
/// selects it.
struct Workset {
    ncols: usize,
    hash: HashAccumulator,
    sorted: SortedArrayAccumulator,
    dense: Option<DenseAccumulator>,
}

impl Workset {
    fn new(ncols: usize) -> Self {
        Workset {
            ncols,
            hash: HashAccumulator::new(),
            sorted: SortedArrayAccumulator::new(),
            dense: None,
        }
    }

    fn acc_for(&mut self, kernel: RowKernel) -> &mut dyn Accumulator {
        match kernel {
            RowKernel::SortedArray => &mut self.sorted,
            RowKernel::Dense => self.dense.get_or_insert_with(|| DenseAccumulator::new(self.ncols)),
            _ => &mut self.hash,
        }
    }
}

/// Builds rows `rows` into `(per-row nnz, cols, vals)` using per-row
/// kernel selection on `ub`.
fn build_rows(
    a: &CsrMatrix,
    b: &CsrMatrix,
    rows: (usize, usize),
    ub: &[u64],
    t: &AdaptiveThresholds,
    ws: &mut Workset,
) -> (Vec<usize>, Vec<ColIdx>, Vec<Value>) {
    let (s, e) = rows;
    let mut nnz = Vec::with_capacity(e - s);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for (i, &row_ub) in ub.iter().enumerate().take(e).skip(s) {
        let kernel = select_row_kernel(row_ub, b.ncols, t);
        if kernel == RowKernel::Empty {
            nnz.push(0);
            continue;
        }
        let before = cols.len();
        let acc = ws.acc_for(kernel);
        accumulate_row(a, b, i, acc);
        acc.extract_into(&mut cols, &mut vals);
        nnz.push(cols.len() - before);
    }
    (nnz, cols, vals)
}

/// `C = A · B` with per-row kernel selection, default thresholds,
/// parallel.
pub fn spgemm_adaptive(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    spgemm_adaptive_with(a, b, &AdaptiveOptions { parallel: true, ..Default::default() })
}

/// `C = A · B` with explicit adaptive options. Bit-identical to
/// [`crate::rowwise::spgemm_serial`] for any thresholds.
pub fn spgemm_adaptive_with(a: &CsrMatrix, b: &CsrMatrix, opts: &AdaptiveOptions) -> CsrMatrix {
    assert_eq!(
        a.ncols, b.nrows,
        "dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows, a.ncols, b.nrows, b.ncols
    );
    let ub = flops_per_row(a, b);
    let t = &opts.thresholds;
    let width = rayon::current_num_threads();
    let parts: Vec<(Vec<usize>, Vec<ColIdx>, Vec<Value>)> = if opts.parallel && width > 1 {
        // Single-pass parallel: each FLOP-balanced chunk builds its own
        // segment; no symbolic re-run.
        let ranges = balanced_row_chunks(&ub, width * 8);
        (0..ranges.len())
            .into_par_iter()
            .map_init(|| Workset::new(b.ncols), |ws, ci| build_rows(a, b, ranges[ci], &ub, t, ws))
            .collect()
    } else {
        let mut ws = Workset::new(b.ncols);
        vec![build_rows(a, b, (0, a.nrows), &ub, t, &mut ws)]
    };

    let total: usize = parts.iter().map(|(_, c, _)| c.len()).sum();
    let mut row_ptr = Vec::with_capacity(a.nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(total);
    let mut vals = Vec::with_capacity(total);
    for (nnz, mut c, mut v) in parts {
        for n in nnz {
            row_ptr.push(row_ptr.last().unwrap() + n);
        }
        col_idx.append(&mut c);
        vals.append(&mut v);
    }
    CsrMatrix { nrows: a.nrows, ncols: b.ncols, row_ptr, col_idx, vals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowwise::spgemm_serial;
    use cw_sparse::gen::{er::erdos_renyi, grid::poisson2d, rmat::rmat, rmat::RmatParams};

    fn bits_eq(x: &CsrMatrix, y: &CsrMatrix) -> bool {
        x.row_ptr == y.row_ptr
            && x.col_idx == y.col_idx
            && x.vals.len() == y.vals.len()
            && x.vals.iter().zip(&y.vals).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    #[test]
    fn selection_covers_all_regimes() {
        let t = AdaptiveThresholds::default();
        assert_eq!(select_row_kernel(0, 1000, &t), RowKernel::Empty);
        assert_eq!(select_row_kernel(1, 1000, &t), RowKernel::SortedArray);
        assert_eq!(select_row_kernel(32, 1000, &t), RowKernel::SortedArray);
        assert_eq!(select_row_kernel(33, 1000, &t), RowKernel::Hash);
        assert_eq!(select_row_kernel(250, 1000, &t), RowKernel::Dense);
        // Small matrices: the dense branch can dominate the small branch
        // boundary; dense wins only above the flop floor.
        assert_eq!(select_row_kernel(33, 40, &t), RowKernel::Dense);
    }

    #[test]
    fn adaptive_is_bit_identical_to_serial() {
        for a in [poisson2d(14, 11), erdos_renyi(120, 7, 3), rmat(8, 8, RmatParams::default(), 9)] {
            let expect = spgemm_serial(&a, &a);
            for parallel in [false, true] {
                let opts = AdaptiveOptions { parallel, ..Default::default() };
                let got = spgemm_adaptive_with(&a, &a, &opts);
                assert!(bits_eq(&got, &expect), "parallel={parallel}");
            }
        }
    }

    #[test]
    fn threshold_extremes_stay_bit_identical() {
        // Force everything through each single kernel in turn: the zoo
        // must be bit-transparent wherever the boundaries sit.
        let a = erdos_renyi(90, 6, 11);
        let expect = spgemm_serial(&a, &a);
        let force = [
            AdaptiveThresholds { small_flops: u64::MAX, dense_fraction: f64::INFINITY },
            AdaptiveThresholds { small_flops: 0, dense_fraction: 0.0 },
            AdaptiveThresholds { small_flops: 0, dense_fraction: f64::INFINITY },
        ];
        for t in force {
            let got =
                spgemm_adaptive_with(&a, &a, &AdaptiveOptions { thresholds: t, parallel: false });
            assert!(bits_eq(&got, &expect), "thresholds {t:?}");
        }
    }

    #[test]
    fn empty_and_rectangular() {
        let z = CsrMatrix::zeros(5, 5);
        assert_eq!(spgemm_adaptive(&z, &z).nnz(), 0);
        let a = erdos_renyi(30, 4, 1);
        let b = cw_sparse::gen::er::erdos_renyi_rect(30, 8, 3, 2);
        let got = spgemm_adaptive(&a, &b);
        assert!(bits_eq(&got, &spgemm_serial(&a, &b)));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = CsrMatrix::zeros(3, 4);
        let b = CsrMatrix::zeros(3, 4);
        let _ = spgemm_adaptive(&a, &b);
    }
}
