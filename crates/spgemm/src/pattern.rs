//! Pattern (symbolic-only) SpGEMM: the sparsity structure of `A·B` without
//! numeric values.
//!
//! Used where only the structure matters — the `A·Aᵀ` similarity product of
//! hierarchical clustering counts *overlaps*, and symbolic analysis of
//! fill-in needs structure only. The kernel skips multiplication entirely
//! and collects distinct columns with a stamped dense set, which is also a
//! useful independent cross-check of the numeric kernels' symbolic phase.
//!
//! # Examples
//!
//! The pattern of `I·B` is the pattern of `B`, with every value set to 1:
//!
//! ```
//! use cw_sparse::{CooMatrix, CsrMatrix};
//! use cw_spgemm::spgemm_pattern;
//!
//! let mut coo = CooMatrix::new(2, 3);
//! coo.push(0, 1, 42.0);
//! coo.push(1, 2, -7.0);
//! let b = coo.to_csr();
//! let c = spgemm_pattern(&CsrMatrix::identity(2), &b);
//! assert_eq!(c.row(0), (&[1u32][..], &[1.0][..]));
//! assert_eq!(c.row(1), (&[2u32][..], &[1.0][..]));
//! ```

use cw_sparse::{ColIdx, CsrMatrix};
use rayon::prelude::*;

/// Stamped dense set for symbolic accumulation (reset is O(1)).
struct StampSet {
    stamp: Vec<u32>,
    gen: u32,
    touched: Vec<ColIdx>,
}

impl StampSet {
    fn new(n: usize) -> Self {
        StampSet { stamp: vec![0; n], gen: 1, touched: Vec::new() }
    }

    #[inline]
    fn insert(&mut self, c: ColIdx) {
        let i = c as usize;
        if self.stamp[i] != self.gen {
            self.stamp[i] = self.gen;
            self.touched.push(c);
        }
    }

    fn drain_sorted(&mut self) -> Vec<ColIdx> {
        self.touched.sort_unstable();
        let out = std::mem::take(&mut self.touched);
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
        out
    }
}

/// Structure of `A·B` with all stored values `1.0`.
pub fn spgemm_pattern(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.ncols, b.nrows, "dimension mismatch");
    let rows: Vec<Vec<ColIdx>> = (0..a.nrows)
        .into_par_iter()
        .map_init(
            || StampSet::new(b.ncols),
            |set, i| {
                for &k in a.row_cols(i) {
                    for &j in b.row_cols(k as usize) {
                        set.insert(j);
                    }
                }
                set.drain_sorted()
            },
        )
        .collect();
    let mut row_ptr = Vec::with_capacity(a.nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    for r in rows {
        col_idx.extend_from_slice(&r);
        row_ptr.push(col_idx.len());
    }
    let nnz = col_idx.len();
    CsrMatrix { nrows: a.nrows, ncols: b.ncols, row_ptr, col_idx, vals: vec![1.0; nnz] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowwise::spgemm_serial;
    use cw_sparse::gen::er::erdos_renyi;
    use cw_sparse::gen::grid::poisson2d;

    #[test]
    fn pattern_matches_numeric_structure() {
        let a = poisson2d(8, 7);
        let numeric = spgemm_serial(&a, &a);
        let pattern = spgemm_pattern(&a, &a);
        assert_eq!(pattern.row_ptr, numeric.row_ptr);
        assert_eq!(pattern.col_idx, numeric.col_idx);
        assert!(pattern.vals.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn pattern_on_random_matrix() {
        let a = erdos_renyi(50, 5, 3);
        let numeric = spgemm_serial(&a, &a);
        let pattern = spgemm_pattern(&a, &a);
        assert_eq!(pattern.col_idx, numeric.col_idx);
        pattern.validate().unwrap();
    }

    #[test]
    fn identity_pattern() {
        let i = CsrMatrix::identity(6);
        let p = spgemm_pattern(&i, &i);
        assert!(p.approx_eq(&i, 0.0));
    }

    #[test]
    fn empty_pattern() {
        let z = CsrMatrix::zeros(3, 3);
        assert_eq!(spgemm_pattern(&z, &z).nnz(), 0);
    }
}
