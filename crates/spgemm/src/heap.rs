//! Heap-merge row-wise SpGEMM — the accumulator-free alternative.
//!
//! Instead of scattering partial products into an accumulator, each output
//! row is formed by a k-way merge of the (already sorted) `B` rows selected
//! by the `A` row, driven by a binary min-heap of cursors. This is the
//! "heap SpGEMM" of the literature (e.g. CombBLAS): `O(f log k)` work per
//! row but perfectly streaming access — a useful contrast to the hash
//! accumulator in the ablation benchmarks, and an independent
//! implementation for cross-validation.

use cw_sparse::{ColIdx, CsrMatrix, Value};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One cursor into a scaled B row: `(current column, stream id)`.
type Cursor = Reverse<(ColIdx, u32)>;

/// `C = A · B` via per-row k-way heap merge (parallel over rows).
pub fn spgemm_heap(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.ncols, b.nrows, "dimension mismatch");
    let rows: Vec<(Vec<ColIdx>, Vec<Value>)> =
        (0..a.nrows).into_par_iter().map(|i| merge_row(a, b, i)).collect();
    let mut row_ptr = Vec::with_capacity(a.nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    for (c, v) in rows {
        col_idx.extend_from_slice(&c);
        vals.extend_from_slice(&v);
        row_ptr.push(col_idx.len());
    }
    CsrMatrix { nrows: a.nrows, ncols: b.ncols, row_ptr, col_idx, vals }
}

fn merge_row(a: &CsrMatrix, b: &CsrMatrix, i: usize) -> (Vec<ColIdx>, Vec<Value>) {
    let (a_cols, a_vals) = a.row(i);
    let k = a_cols.len();
    // Per-stream state: the B row slice and the A scale factor.
    let mut positions = vec![0usize; k];
    let mut heap: BinaryHeap<Cursor> = BinaryHeap::with_capacity(k);
    for (s, &bk) in a_cols.iter().enumerate() {
        let cols = b.row_cols(bk as usize);
        if !cols.is_empty() {
            heap.push(Reverse((cols[0], s as u32)));
        }
    }
    let mut out_c: Vec<ColIdx> = Vec::new();
    let mut out_v: Vec<Value> = Vec::new();
    while let Some(Reverse((col, s))) = heap.pop() {
        let s = s as usize;
        let bk = a_cols[s] as usize;
        let (b_cols, b_vals) = b.row(bk);
        let contrib = a_vals[s] * b_vals[positions[s]];
        match out_c.last() {
            Some(&last) if last == col => *out_v.last_mut().unwrap() += contrib,
            _ => {
                out_c.push(col);
                out_v.push(contrib);
            }
        }
        positions[s] += 1;
        if positions[s] < b_cols.len() {
            heap.push(Reverse((b_cols[positions[s]], s as u32)));
        }
    }
    (out_c, out_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowwise::{dense_reference, spgemm_serial};
    use cw_sparse::gen::banded::block_diagonal;
    use cw_sparse::gen::er::erdos_renyi;
    use cw_sparse::gen::grid::poisson2d;

    #[test]
    fn heap_matches_hash_kernel() {
        let a = poisson2d(10, 9);
        let expect = spgemm_serial(&a, &a);
        let got = spgemm_heap(&a, &a);
        assert!(got.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn heap_matches_dense_on_random() {
        let a = erdos_renyi(35, 5, 4);
        assert!(spgemm_heap(&a, &a).numerically_eq(&dense_reference(&a, &a), 1e-9));
    }

    #[test]
    fn heap_handles_duplicate_heavy_rows() {
        // Dense blocks maximize merge collisions.
        let a = block_diagonal(48, (6, 6), 0.0, 2);
        assert!(spgemm_heap(&a, &a).approx_eq(&spgemm_serial(&a, &a), 1e-10));
    }

    #[test]
    fn heap_output_is_sorted_and_valid() {
        let a = erdos_renyi(25, 6, 8);
        spgemm_heap(&a, &a).validate().unwrap();
    }

    #[test]
    fn heap_empty_rows() {
        let a = CsrMatrix::from_row_lists(3, vec![vec![], vec![(0, 2.0)], vec![]]);
        let b = CsrMatrix::identity(3);
        let c = spgemm_heap(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(1, 0), Some(2.0));
    }
}
