//! `SpGEMM_TopK` — candidate similar-row pairs via one pattern SpGEMM
//! (paper Alg. 3, line 3).
//!
//! Hierarchical clustering needs, for every row `i`, the rows `j` whose
//! column sets overlap `i`'s the most. The paper's insight is that a single
//! SpGEMM of the 0/1 pattern of `A` with `Aᵀ` computes *all* pairwise
//! overlap counts: `(A·Aᵀ)[i,j] = |cols(i) ∩ cols(j)|`. Keeping the top-K
//! entries per row (by Jaccard score, derived from the overlap count) and
//! filtering by a similarity threshold yields the candidate pairs — faster
//! and more accurate than the LSH pipeline of the prior SpMM work \[32\].
//!
//! The per-row top-k *numeric* truncation this relies on is also available
//! as a standalone output shape — [`crate::row_topk`] — which the engine's
//! `OutputShape::TopK` plan knob applies to any product.
//!
//! # Examples
//!
//! Two identical band rows are each other's best candidate:
//!
//! ```
//! use cw_sparse::CooMatrix;
//! use cw_spgemm::spgemm_topk;
//!
//! let mut coo = CooMatrix::new(3, 4);
//! for j in 0..3 {
//!     coo.push(0, j, 1.0); // rows 0 and 1 share columns {0, 1, 2}
//!     coo.push(1, j, 1.0);
//! }
//! coo.push(2, 3, 1.0); // row 2 overlaps nobody
//! let pairs = spgemm_topk(&coo.to_csr(), 4, 0.5);
//! assert_eq!(pairs.len(), 1);
//! assert_eq!((pairs[0].row_i, pairs[0].row_j), (0, 1));
//! assert_eq!(pairs[0].jaccard, 1.0);
//! ```

use crate::accumulator::{Accumulator, HashAccumulator};
use cw_sparse::jaccard::jaccard_from_overlap;
use cw_sparse::CsrMatrix;
use rayon::prelude::*;

/// A candidate similar-row pair with its exact Jaccard score (`row_i < row_j`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePair {
    /// Smaller row index.
    pub row_i: u32,
    /// Larger row index.
    pub row_j: u32,
    /// Jaccard similarity of the two rows' column sets.
    pub jaccard: f64,
}

/// Computes candidate pairs: for each row `i`, the up-to-`topk` most similar
/// other rows with Jaccard ≥ `jacc_th`.
///
/// Pairs are deduplicated to `row_i < row_j` and sorted by descending
/// Jaccard (ties broken by indices, so the output is deterministic).
///
/// The transpose is taken internally on the *pattern* of `a` (values reset
/// to 1, per the paper: "we reset all values in matrix A to 1 so that the
/// output reflects the count of overlapping nonzeros").
pub fn spgemm_topk(a: &CsrMatrix, topk: usize, jacc_th: f64) -> Vec<CandidatePair> {
    let at = a.transpose();
    let row_sizes: Vec<usize> = (0..a.nrows).map(|i| a.row_nnz(i)).collect();

    // Per-row scan: accumulate overlap counts against all other rows via
    // A row i's columns k -> Aᵀ row k lists every row j sharing column k.
    let mut per_row: Vec<Vec<CandidatePair>> = (0..a.nrows)
        .into_par_iter()
        .map_init(HashAccumulator::new, |acc, i| {
            for &k in a.row_cols(i) {
                for &j in at.row_cols(k as usize) {
                    if j as usize != i {
                        acc.add(j, 1.0);
                    }
                }
            }
            let (mut cols, mut counts) = (Vec::new(), Vec::new());
            acc.extract_into(&mut cols, &mut counts);
            let mut cands: Vec<CandidatePair> = cols
                .iter()
                .zip(&counts)
                .filter_map(|(&j, &cnt)| {
                    let score =
                        jaccard_from_overlap(cnt as usize, row_sizes[i], row_sizes[j as usize]);
                    if score >= jacc_th {
                        let (lo, hi) = if (i as u32) < j { (i as u32, j) } else { (j, i as u32) };
                        Some(CandidatePair { row_i: lo, row_j: hi, jaccard: score })
                    } else {
                        None
                    }
                })
                .collect();
            // Keep only the top-K most similar per row.
            cands.sort_unstable_by(|x, y| {
                y.jaccard
                    .partial_cmp(&x.jaccard)
                    .unwrap()
                    .then(x.row_i.cmp(&y.row_i))
                    .then(x.row_j.cmp(&y.row_j))
            });
            cands.truncate(topk);
            cands
        })
        .collect();

    // Merge, dedup (each surviving pair may appear from both endpoints).
    let mut all: Vec<CandidatePair> = per_row.drain(..).flatten().collect();
    all.sort_unstable_by(|x, y| {
        x.row_i
            .cmp(&y.row_i)
            .then(x.row_j.cmp(&y.row_j))
            .then(y.jaccard.partial_cmp(&x.jaccard).unwrap())
    });
    all.dedup_by_key(|p| (p.row_i, p.row_j));
    all.sort_unstable_by(|x, y| {
        y.jaccard
            .partial_cmp(&x.jaccard)
            .unwrap()
            .then(x.row_i.cmp(&y.row_i))
            .then(x.row_j.cmp(&y.row_j))
    });
    all
}

/// Brute-force reference: all pairs with Jaccard ≥ `jacc_th`, truncated to
/// `topk` per row (testing only; `O(n²·nnz/row)`).
pub fn brute_force_pairs(a: &CsrMatrix, topk: usize, jacc_th: f64) -> Vec<CandidatePair> {
    use cw_sparse::jaccard::jaccard;
    let mut per_row: Vec<Vec<CandidatePair>> = vec![Vec::new(); a.nrows];
    for (i, row) in per_row.iter_mut().enumerate() {
        for j in 0..a.nrows {
            if i == j {
                continue;
            }
            let s = jaccard(a.row_cols(i), a.row_cols(j));
            // Rows with zero overlap never appear in A·Aᵀ; skip to match.
            if s >= jacc_th && s > 0.0 {
                let (lo, hi) = if i < j { (i as u32, j as u32) } else { (j as u32, i as u32) };
                row.push(CandidatePair { row_i: lo, row_j: hi, jaccard: s });
            }
        }
        row.sort_unstable_by(|x, y| {
            y.jaccard
                .partial_cmp(&x.jaccard)
                .unwrap()
                .then(x.row_i.cmp(&y.row_i))
                .then(x.row_j.cmp(&y.row_j))
        });
        row.truncate(topk);
    }
    let mut all: Vec<CandidatePair> = per_row.into_iter().flatten().collect();
    all.sort_unstable_by(|x, y| {
        x.row_i
            .cmp(&y.row_i)
            .then(x.row_j.cmp(&y.row_j))
            .then(y.jaccard.partial_cmp(&x.jaccard).unwrap())
    });
    all.dedup_by_key(|p| (p.row_i, p.row_j));
    all.sort_unstable_by(|x, y| {
        y.jaccard
            .partial_cmp(&x.jaccard)
            .unwrap()
            .then(x.row_i.cmp(&y.row_i))
            .then(x.row_j.cmp(&y.row_j))
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::{banded::block_diagonal, er::erdos_renyi};

    #[test]
    fn fig7_example_counts() {
        // Paper Fig. 7(a): reordered matrix whose A·Aᵀ has known values.
        let a = CsrMatrix::from_row_lists(
            6,
            vec![
                vec![(0, 1.0), (1, 1.0), (2, 1.0)],
                vec![(1, 1.0), (2, 1.0), (5, 1.0)],
                vec![(0, 1.0), (2, 1.0), (4, 1.0)],
                vec![(3, 1.0), (4, 1.0)],
                vec![(2, 1.0), (3, 1.0), (4, 1.0)],
                vec![(1, 1.0), (4, 1.0), (5, 1.0)],
            ],
        );
        let pairs = spgemm_topk(&a, 8, 0.0);
        // Overlap(0,1) = |{1,2}| = 2, sizes 3,3 -> jaccard 2/4 = 0.5
        let p01 = pairs.iter().find(|p| p.row_i == 0 && p.row_j == 1).unwrap();
        assert!((p01.jaccard - 0.5).abs() < 1e-12);
        // Overlap(3,4) = |{3,4}| = 2, sizes 2,3 -> jaccard 2/3
        let p34 = pairs.iter().find(|p| p.row_i == 3 && p.row_j == 4).unwrap();
        assert!((p34.jaccard - 2.0 / 3.0).abs() < 1e-12);
        // Rows 0 and 3 share nothing -> no pair.
        assert!(!pairs.iter().any(|p| p.row_i == 0 && p.row_j == 3));
    }

    #[test]
    fn matches_brute_force_unlimited_k() {
        let a = erdos_renyi(30, 4, 9);
        let fast = spgemm_topk(&a, usize::MAX, 0.2);
        let slow = brute_force_pairs(&a, usize::MAX, 0.2);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!((f.row_i, f.row_j), (s.row_i, s.row_j));
            assert!((f.jaccard - s.jaccard).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_brute_force_with_topk() {
        let a = block_diagonal(40, (3, 6), 0.1, 4);
        let fast = spgemm_topk(&a, 3, 0.25);
        let slow = brute_force_pairs(&a, 3, 0.25);
        assert_eq!(fast.len(), slow.len(), "fast {fast:?}\nslow {slow:?}");
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!((f.row_i, f.row_j), (s.row_i, s.row_j));
        }
    }

    #[test]
    fn block_diagonal_pairs_stay_in_blocks() {
        let a = block_diagonal(32, (4, 4), 0.0, 8);
        let pairs = spgemm_topk(&a, 7, 0.3);
        assert!(!pairs.is_empty());
        for p in &pairs {
            assert_eq!(p.row_i / 4, p.row_j / 4, "pair {p:?} crosses blocks");
            assert_eq!(p.jaccard, 1.0); // identical patterns inside blocks
        }
    }

    #[test]
    fn threshold_filters_everything() {
        let a = CsrMatrix::identity(10); // disjoint singleton rows
        assert!(spgemm_topk(&a, 8, 0.1).is_empty());
    }

    #[test]
    fn output_sorted_by_score_then_indices() {
        let a = block_diagonal(24, (2, 5), 0.2, 3);
        let pairs = spgemm_topk(&a, 4, 0.1);
        for w in pairs.windows(2) {
            assert!(
                w[0].jaccard > w[1].jaccard
                    || (w[0].jaccard == w[1].jaccard
                        && (w[0].row_i, w[0].row_j) <= (w[1].row_i, w[1].row_j))
            );
        }
    }
}
