//! Output-shape postprocess kernels: masked and per-row top-k truncation.
//!
//! SpGEMM consumers rarely want the full product: similarity search keeps
//! only the `k` strongest entries per row, and masked SpGEMM (the
//! GraphBLAS `C⟨M⟩ = A·B` idiom) keeps only positions named by a mask
//! pattern. Both are **row-local** transforms — each output row depends
//! only on the same row of the input — so they commute with row
//! permutation, which is what lets every execution backend compute the
//! full product in its own (possibly reordered) row order and apply the
//! shape before un-permuting, while staying bit-identical to the serial
//! reference applying the same shape.
//!
//! Both kernels are deterministic: [`apply_mask`] preserves the input's
//! column order, and [`row_topk`] breaks magnitude ties toward the
//! smaller column index, so two backends producing bit-identical full
//! products produce bit-identical shaped products.

use cw_sparse::{ColIdx, CsrMatrix, Value};

/// Keeps only the entries of `c` whose positions appear in `mask`'s
/// sparsity pattern (values come from `c`; `mask`'s values are ignored).
///
/// This is the GraphBLAS-style structural mask: `out[i][j] = c[i][j]` iff
/// `mask` has an entry at `(i, j)` — including explicit zeros, which count
/// as present. Rows of `mask` that are empty erase the whole output row.
///
/// # Panics
///
/// Panics if `mask` is not the same shape as `c` (`nrows × ncols`).
///
/// # Examples
///
/// ```
/// use cw_sparse::CsrMatrix;
/// use cw_spgemm::apply_mask;
///
/// let c = CsrMatrix {
///     nrows: 2,
///     ncols: 3,
///     row_ptr: vec![0, 3, 4],
///     col_idx: vec![0, 1, 2, 1],
///     vals: vec![1.0, 2.0, 3.0, 4.0],
/// };
/// // Keep only column 1 of row 0; row 1's mask row is empty.
/// let mask = CsrMatrix {
///     nrows: 2,
///     ncols: 3,
///     row_ptr: vec![0, 1, 1],
///     col_idx: vec![1],
///     vals: vec![1.0],
/// };
/// let shaped = apply_mask(&c, &mask);
/// assert_eq!(shaped.row(0), (&[1u32][..], &[2.0][..]));
/// assert_eq!(shaped.row(1), (&[][..], &[][..]));
/// ```
pub fn apply_mask(c: &CsrMatrix, mask: &CsrMatrix) -> CsrMatrix {
    assert_eq!((mask.nrows, mask.ncols), (c.nrows, c.ncols), "mask must match the product's shape");
    let mut row_ptr = Vec::with_capacity(c.nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<ColIdx> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    for i in 0..c.nrows {
        let (c_cols, c_vals) = c.row(i);
        let (m_cols, _) = mask.row(i);
        // Sorted-list intersection: both sides are strictly increasing.
        let (mut p, mut q) = (0usize, 0usize);
        while p < c_cols.len() && q < m_cols.len() {
            match c_cols[p].cmp(&m_cols[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    col_idx.push(c_cols[p]);
                    vals.push(c_vals[p]);
                    p += 1;
                    q += 1;
                }
            }
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix { nrows: c.nrows, ncols: c.ncols, row_ptr, col_idx, vals }
}

/// Keeps the `k` largest-magnitude entries of each row of `c`.
///
/// Rows with at most `k` entries are kept whole; `k == 0` empties every
/// row. Ties in `|value|` are broken toward the **smaller column index**,
/// and the surviving entries are emitted in ascending column order, so
/// the result is deterministic for any input. NaN magnitudes rank above
/// all finite magnitudes (IEEE-754 `total_cmp` order), so a NaN entry is
/// always kept while room remains.
///
/// # Examples
///
/// ```
/// use cw_sparse::CsrMatrix;
/// use cw_spgemm::row_topk;
///
/// let c = CsrMatrix {
///     nrows: 1,
///     ncols: 4,
///     row_ptr: vec![0, 4],
///     col_idx: vec![0, 1, 2, 3],
///     vals: vec![0.5, -3.0, 2.0, 1.0],
/// };
/// let top2 = row_topk(&c, 2);
/// // The two largest magnitudes are -3.0 (col 1) and 2.0 (col 2),
/// // emitted back in column order.
/// assert_eq!(top2.row(0), (&[1u32, 2][..], &[-3.0, 2.0][..]));
///
/// // k at least the row's nnz keeps the row bit-identical.
/// assert_eq!(row_topk(&c, 10), c);
/// ```
pub fn row_topk(c: &CsrMatrix, k: usize) -> CsrMatrix {
    let mut row_ptr = Vec::with_capacity(c.nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<ColIdx> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    let mut order: Vec<usize> = Vec::new();
    for i in 0..c.nrows {
        let (cols, row_vals) = c.row(i);
        if cols.len() <= k {
            col_idx.extend_from_slice(cols);
            vals.extend_from_slice(row_vals);
        } else if k > 0 {
            order.clear();
            order.extend(0..cols.len());
            // Largest magnitude first; ties toward the smaller column.
            order.sort_by(|&a, &b| {
                row_vals[b].abs().total_cmp(&row_vals[a].abs()).then_with(|| cols[a].cmp(&cols[b]))
            });
            order.truncate(k);
            order.sort_unstable(); // back to ascending column order
            for &p in &order {
                col_idx.push(cols[p]);
                vals.push(row_vals[p]);
            }
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix { nrows: c.nrows, ncols: c.ncols, row_ptr, col_idx, vals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 5);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, -5.0);
        coo.push(0, 4, 5.0); // magnitude tie with col 2
        coo.push(1, 1, 0.0); // explicit zero
        coo.push(2, 0, 2.0);
        coo.push(2, 1, 3.0);
        coo.push(2, 3, -1.0);
        coo.to_csr()
    }

    #[test]
    fn mask_keeps_only_named_positions() {
        let c = sample();
        let mut m = CooMatrix::new(4, 5);
        m.push(0, 2, 9.0); // present in c
        m.push(0, 3, 9.0); // absent in c
        m.push(2, 1, 0.0); // explicit-zero mask entry still counts
        let masked = apply_mask(&c, &m.to_csr());
        assert_eq!(masked.row(0), (&[2u32][..], &[-5.0][..]));
        assert_eq!(masked.row(1).0.len(), 0);
        assert_eq!(masked.row(2), (&[1u32][..], &[3.0][..]));
        assert_eq!(masked.row(3).0.len(), 0);
    }

    #[test]
    fn empty_mask_empties_everything() {
        let c = sample();
        let masked = apply_mask(&c, &CsrMatrix::zeros(4, 5));
        assert_eq!(masked.nnz(), 0);
        assert_eq!(masked.nrows, 4);
        assert_eq!(masked.ncols, 5);
    }

    #[test]
    #[should_panic(expected = "mask must match")]
    fn mask_shape_mismatch_panics() {
        apply_mask(&sample(), &CsrMatrix::zeros(4, 4));
    }

    #[test]
    fn topk_ties_break_toward_smaller_column() {
        let c = sample();
        // Row 0 has |-5.0| at col 2 and |5.0| at col 4: k=1 keeps col 2.
        let top1 = row_topk(&c, 1);
        assert_eq!(top1.row(0), (&[2u32][..], &[-5.0][..]));
        // Rows at or under k are bit-identical.
        assert_eq!(top1.row(1), c.row(1));
    }

    #[test]
    fn topk_extremes() {
        let c = sample();
        assert_eq!(row_topk(&c, 0).nnz(), 0);
        assert_eq!(row_topk(&c, usize::MAX), c);
    }

    #[test]
    fn topk_output_stays_column_sorted() {
        let c = sample();
        let t = row_topk(&c, 2);
        for i in 0..t.nrows {
            let (cols, _) = t.row(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} not sorted: {cols:?}");
        }
    }
}
