//! B-row access traces.
//!
//! Row-wise Gustavson touches row `k` of `B` once for every nonzero `a_ik`,
//! in row-major order of `A`. The *sequence* of those accesses is exactly
//! what determines temporal locality in `B` — the quantity reordering and
//! clustering optimize. `cw-cachesim` replays these traces through a cache
//! model to measure locality deterministically (our stand-in for the paper's
//! hardware measurements).

use cw_sparse::CsrMatrix;

/// The sequence of `B`-row indices accessed by row-wise Gustavson on `A·B`.
///
/// This is simply `A.col_idx` in row order — one access per nonzero of `A`.
pub fn rowwise_b_access_trace(a: &CsrMatrix) -> Vec<u32> {
    a.col_idx.clone()
}

/// Number of *distinct* B rows touched (the compulsory-miss floor for any
/// ordering or clustering of `A`).
pub fn distinct_b_rows(a: &CsrMatrix) -> usize {
    let mut seen = vec![false; a.ncols];
    let mut n = 0usize;
    for &c in &a.col_idx {
        if !seen[c as usize] {
            seen[c as usize] = true;
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_col_idx_in_row_order() {
        let a = CsrMatrix::from_row_lists(4, vec![vec![(2, 1.0), (3, 1.0)], vec![(0, 1.0)]]);
        assert_eq!(rowwise_b_access_trace(&a), vec![2, 3, 0]);
    }

    #[test]
    fn distinct_counts_unique_columns() {
        let a = CsrMatrix::from_row_lists(
            4,
            vec![vec![(1, 1.0), (3, 1.0)], vec![(1, 1.0)], vec![(3, 1.0)]],
        );
        assert_eq!(distinct_b_rows(&a), 2);
    }

    #[test]
    fn empty_matrix_trace() {
        let a = CsrMatrix::zeros(3, 3);
        assert!(rowwise_b_access_trace(&a).is_empty());
        assert_eq!(distinct_b_rows(&a), 0);
    }
}
