//! Row-wise Gustavson SpGEMM over CSR (paper Fig. 1 / §2.2).
//!
//! The kernel follows the classical two-phase structure:
//!
//! 1. **symbolic** — count `nnz` of every output row (exactly) so the output
//!    arrays are allocated once;
//! 2. **numeric** — re-run the row products, accumulating into a sparse
//!    accumulator and copying each finished row into its pre-sized slot.
//!
//! The parallel path partitions rows into contiguous chunks balanced by
//! FLOP count, splits the output arrays into the matching disjoint slices
//! (`split_at_mut`, no unsafe), and runs chunks under rayon with one
//! accumulator per chunk.

use crate::accumulator::{make_accumulator, Accumulator, AccumulatorKind};
use crate::flops::flops_per_row;
use cw_sparse::{ColIdx, CsrMatrix, Value};
use rayon::prelude::*;

/// Tuning knobs for [`spgemm_with`].
#[derive(Debug, Clone, Copy)]
pub struct SpGemmOptions {
    /// Accumulator implementation for both phases.
    pub acc: AccumulatorKind,
    /// Use the rayon-parallel path.
    pub parallel: bool,
    /// Target number of row chunks per rayon thread (higher = better load
    /// balance, more scheduling overhead).
    pub chunks_per_thread: usize,
}

impl Default for SpGemmOptions {
    fn default() -> Self {
        SpGemmOptions { acc: AccumulatorKind::Hash, parallel: true, chunks_per_thread: 8 }
    }
}

/// `C = A · B` with default options (hash accumulator, parallel).
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    spgemm_with(a, b, &SpGemmOptions::default())
}

/// `C = A · B` on a single thread (hash accumulator).
pub fn spgemm_serial(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    spgemm_with(a, b, &SpGemmOptions { parallel: false, ..Default::default() })
}

/// `C = A · B` with explicit options.
pub fn spgemm_with(a: &CsrMatrix, b: &CsrMatrix, opts: &SpGemmOptions) -> CsrMatrix {
    assert_eq!(
        a.ncols, b.nrows,
        "dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows, a.ncols, b.nrows, b.ncols
    );
    // At an effective width of 1 the two-phase parallel path would do the
    // symbolic accumulation twice on one thread for nothing — fall through
    // to the single-pass serial kernel (bit-identical output either way).
    if opts.parallel && rayon::current_num_threads() > 1 {
        spgemm_parallel_impl(a, b, opts)
    } else {
        spgemm_serial_impl(a, b, opts)
    }
}

/// Accumulates `A[i,:] · B` into `acc`.
///
/// Every kernel in the crate funnels through this loop, so partial
/// products for one output entry always arrive in the same (ascending-k)
/// order — the invariant that makes accumulator choice bit-transparent.
#[inline]
pub(crate) fn accumulate_row(a: &CsrMatrix, b: &CsrMatrix, i: usize, acc: &mut dyn Accumulator) {
    let (a_cols, a_vals) = a.row(i);
    for (&k, &av) in a_cols.iter().zip(a_vals) {
        let (b_cols, b_vals) = b.row(k as usize);
        for (&j, &bv) in b_cols.iter().zip(b_vals) {
            acc.add(j, av * bv);
        }
    }
}

fn spgemm_serial_impl(a: &CsrMatrix, b: &CsrMatrix, opts: &SpGemmOptions) -> CsrMatrix {
    let mut acc = make_accumulator(opts.acc, b.ncols);
    let mut row_ptr = Vec::with_capacity(a.nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<ColIdx> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    for i in 0..a.nrows {
        accumulate_row(a, b, i, acc.as_mut());
        acc.extract_into(&mut col_idx, &mut vals);
        row_ptr.push(col_idx.len());
    }
    CsrMatrix { nrows: a.nrows, ncols: b.ncols, row_ptr, col_idx, vals }
}

/// Exact symbolic phase: `nnz(C[i,:])` for every row, in parallel.
pub fn symbolic_row_nnz(a: &CsrMatrix, b: &CsrMatrix, kind: AccumulatorKind) -> Vec<usize> {
    (0..a.nrows)
        .into_par_iter()
        .map_init(
            || make_accumulator(kind, b.ncols),
            |acc, i| {
                accumulate_row(a, b, i, acc.as_mut());
                let n = acc.len();
                acc.clear();
                n
            },
        )
        .collect()
}

/// Contiguous row chunks whose FLOP totals are roughly balanced.
///
/// Returns half-open row ranges covering `0..nrows`. `target_chunks` is a
/// hint; fewer chunks are returned for tiny matrices.
pub fn balanced_row_chunks(flops: &[u64], target_chunks: usize) -> Vec<(usize, usize)> {
    let nrows = flops.len();
    if nrows == 0 {
        return Vec::new();
    }
    let total: u64 = flops.iter().sum();
    let target = (total / target_chunks.max(1) as u64).max(1);
    let mut chunks = Vec::with_capacity(target_chunks + 1);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &f) in flops.iter().enumerate() {
        // +1 per row so empty rows still advance chunks eventually.
        acc += f + 1;
        if acc >= target && i + 1 < nrows {
            chunks.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    chunks.push((start, nrows));
    chunks
}

fn spgemm_parallel_impl(a: &CsrMatrix, b: &CsrMatrix, opts: &SpGemmOptions) -> CsrMatrix {
    // --- symbolic ---
    let row_nnz = symbolic_row_nnz(a, b, opts.acc);
    let mut row_ptr = Vec::with_capacity(a.nrows + 1);
    row_ptr.push(0usize);
    let mut total = 0usize;
    for &n in &row_nnz {
        total += n;
        row_ptr.push(total);
    }
    let mut col_idx = vec![0 as ColIdx; total];
    let mut vals = vec![0.0 as Value; total];

    // --- chunking by flops ---
    let flops = flops_per_row(a, b);
    let n_chunks = rayon::current_num_threads() * opts.chunks_per_thread;
    let ranges = balanced_row_chunks(&flops, n_chunks);

    // Split the output arrays into per-chunk disjoint slices.
    struct Job<'s> {
        rows: (usize, usize),
        cols: &'s mut [ColIdx],
        vals: &'s mut [Value],
    }
    let mut jobs: Vec<Job<'_>> = Vec::with_capacity(ranges.len());
    {
        let mut rest_c: &mut [ColIdx] = &mut col_idx;
        let mut rest_v: &mut [Value] = &mut vals;
        let mut consumed = 0usize;
        for &(s, e) in &ranges {
            let len = row_ptr[e] - consumed;
            let (c_here, c_rest) = rest_c.split_at_mut(len);
            let (v_here, v_rest) = rest_v.split_at_mut(len);
            rest_c = c_rest;
            rest_v = v_rest;
            consumed = row_ptr[e];
            jobs.push(Job { rows: (s, e), cols: c_here, vals: v_here });
        }
    }

    // --- numeric ---
    jobs.par_iter_mut().for_each_init(
        || (make_accumulator(opts.acc, b.ncols), Vec::<ColIdx>::new(), Vec::<Value>::new()),
        |(acc, buf_c, buf_v), job| {
            let (s, e) = job.rows;
            buf_c.clear();
            buf_v.clear();
            for i in s..e {
                accumulate_row(a, b, i, acc.as_mut());
                acc.extract_into(buf_c, buf_v);
            }
            job.cols.copy_from_slice(buf_c);
            job.vals.copy_from_slice(buf_v);
        },
    );

    CsrMatrix { nrows: a.nrows, ncols: b.ncols, row_ptr, col_idx, vals }
}

/// Dense reference multiply for testing (`O(n³)`, small inputs only).
pub fn dense_reference(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.ncols, b.nrows);
    let da = a.to_dense();
    let db = b.to_dense();
    let mut dc = vec![0.0; a.nrows * b.ncols];
    for i in 0..a.nrows {
        for k in 0..a.ncols {
            let av = da[i * a.ncols + k];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.ncols {
                dc[i * b.ncols + j] += av * db[k * b.ncols + j];
            }
        }
    }
    CsrMatrix::from_dense(a.nrows, b.ncols, &dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen::{er::erdos_renyi, grid::poisson2d, rmat::rmat, rmat::RmatParams};

    fn all_kinds() -> [AccumulatorKind; 3] {
        [AccumulatorKind::Hash, AccumulatorKind::Dense, AccumulatorKind::Sort]
    }

    #[test]
    fn identity_times_identity() {
        let i = CsrMatrix::identity(5);
        let c = spgemm(&i, &i);
        assert!(c.approx_eq(&i, 1e-15));
    }

    #[test]
    fn matches_dense_reference_small() {
        let a = CsrMatrix::from_dense(3, 4, &[1., 0., 2., 0., 0., 3., 0., 1., 4., 0., 0., 5.]);
        let b = CsrMatrix::from_dense(4, 2, &[1., 2., 0., 1., 3., 0., 1., 1.]);
        let expect = dense_reference(&a, &b);
        for kind in all_kinds() {
            for parallel in [false, true] {
                let c = spgemm_with(
                    &a,
                    &b,
                    &SpGemmOptions { acc: kind, parallel, chunks_per_thread: 2 },
                );
                assert!(c.numerically_eq(&expect, 1e-12), "kind {kind:?} parallel {parallel}");
            }
        }
    }

    #[test]
    fn a_squared_poisson_all_accumulators_agree() {
        let a = poisson2d(12, 9);
        let reference = spgemm_serial(&a, &a);
        for kind in all_kinds() {
            for parallel in [false, true] {
                let c = spgemm_with(
                    &a,
                    &a,
                    &SpGemmOptions { acc: kind, parallel, chunks_per_thread: 4 },
                );
                assert!(c.approx_eq(&reference, 1e-10), "kind {kind:?} parallel {parallel}");
            }
        }
    }

    #[test]
    fn a_squared_matches_dense_on_random() {
        let a = erdos_renyi(40, 5, 77);
        let expect = dense_reference(&a, &a);
        let c = spgemm(&a, &a);
        assert!(c.numerically_eq(&expect, 1e-9));
    }

    #[test]
    fn rmat_squared_parallel_equals_serial() {
        let a = rmat(8, 6, RmatParams::default(), 5);
        let s = spgemm_serial(&a, &a);
        let p = spgemm(&a, &a);
        assert!(s.approx_eq(&p, 1e-10));
        s.validate().unwrap();
    }

    #[test]
    fn rectangular_product() {
        let a = erdos_renyi(30, 4, 1);
        let b = cw_sparse::gen::er::erdos_renyi_rect(30, 8, 3, 2);
        let c = spgemm(&a, &b);
        assert_eq!(c.nrows, 30);
        assert_eq!(c.ncols, 8);
        assert!(c.numerically_eq(&dense_reference(&a, &b), 1e-9));
    }

    #[test]
    fn empty_rows_and_matrices() {
        let z = CsrMatrix::zeros(4, 4);
        let c = spgemm(&z, &z);
        assert_eq!(c.nnz(), 0);
        let i = CsrMatrix::identity(4);
        assert_eq!(spgemm(&z, &i).nnz(), 0);
        assert_eq!(spgemm(&i, &z).nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = CsrMatrix::zeros(3, 4);
        let b = CsrMatrix::zeros(3, 4);
        let _ = spgemm(&a, &b);
    }

    #[test]
    fn symbolic_matches_numeric() {
        let a = poisson2d(7, 7);
        let nnz = symbolic_row_nnz(&a, &a, AccumulatorKind::Hash);
        let c = spgemm_serial(&a, &a);
        let actual: Vec<usize> = (0..c.nrows).map(|i| c.row_nnz(i)).collect();
        assert_eq!(nnz, actual);
    }

    #[test]
    fn balanced_chunks_cover_all_rows() {
        let flops = vec![5u64, 0, 100, 3, 3, 3, 50, 0, 0, 1];
        let chunks = balanced_row_chunks(&flops, 4);
        assert_eq!(chunks.first().unwrap().0, 0);
        assert_eq!(chunks.last().unwrap().1, flops.len());
        for w in chunks.windows(2) {
            assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
        }
        assert!(chunks.len() <= 5);
    }

    #[test]
    fn balanced_chunks_empty_input() {
        assert!(balanced_row_chunks(&[], 4).is_empty());
    }

    #[test]
    fn numeric_cancellation_keeps_explicit_zero() {
        // a row that produces +1 and -1 in the same output column: value 0,
        // but the entry stays (symbolic counts it) — matching C++ SpGEMM
        // behaviour where numeric zeros are not pruned.
        let a = CsrMatrix::from_row_lists(2, vec![vec![(0, 1.0), (1, 1.0)]]);
        let b = CsrMatrix::from_row_lists(1, vec![vec![(0, 1.0)], vec![(0, -1.0)]]);
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(0.0));
    }
}
