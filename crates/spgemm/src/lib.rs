//! Row-wise Gustavson SpGEMM and its sparse accumulators (paper §2.2).
//!
//! This crate is the *baseline* the paper compares against, plus the shared
//! machinery the cluster-wise kernel (in `cw-core`) reuses:
//!
//! * [`accumulator`] — sparse accumulators: the hash-table accumulator the
//!   paper adopts from Nagasaka et al. \[40\], a dense "SPA" accumulator with
//!   generation stamping, and a sort-merge accumulator, all behind one trait.
//! * [`rowwise`] — serial and rayon-parallel two-phase (symbolic + numeric)
//!   Gustavson SpGEMM over CSR.
//! * [`adaptive`] — the per-row kernel zoo: sorted-array / hash / dense
//!   accumulators selected per row from upper-bound FLOP estimates,
//!   bit-identical to the serial reference.
//! * [`flops`] — multiplication FLOP counts and the compression ratio
//!   (`flops / nnz(C)`) that prior work uses to predict SpGEMM throughput.
//! * [`topk`] — `SpGEMM_TopK(A, Aᵀ)`: the candidate-pair generation step of
//!   hierarchical clustering (paper Alg. 3 line 3).
//! * [`shape`] — output-shape postprocess kernels ([`apply_mask`],
//!   [`row_topk`]): the row-local masked / per-row top-k truncations the
//!   engine's `OutputShape` plan knob dispatches onto.
//! * [`trace`] — extraction of the B-row access sequence a kernel performs,
//!   consumed by `cw-cachesim` for deterministic locality measurements.
//! * [`colwise`], [`heap`], [`pattern`] — alternative kernels (column-wise
//!   Gustavson, k-way heap merge, symbolic-only) used for ablations and as
//!   independent cross-validation paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod adaptive;
pub mod colwise;
pub mod flops;
pub mod heap;
pub mod pattern;
pub mod rowwise;
pub mod shape;
pub mod topk;
pub mod trace;

pub use accumulator::{
    Accumulator, AccumulatorKind, DenseAccumulator, HashAccumulator, SortAccumulator,
    SortedArrayAccumulator,
};
pub use adaptive::{spgemm_adaptive, spgemm_adaptive_with, AdaptiveOptions, AdaptiveThresholds};
pub use colwise::spgemm_colwise;
pub use heap::spgemm_heap;
pub use pattern::spgemm_pattern;
pub use rowwise::{spgemm, spgemm_serial, spgemm_with, SpGemmOptions};
pub use shape::{apply_mask, row_topk};
pub use topk::{spgemm_topk, CandidatePair};
