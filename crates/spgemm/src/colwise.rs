//! Column-wise Gustavson SpGEMM — the mirror-image baseline.
//!
//! Gustavson's 1978 paper gives both orientations: the row-wise form used
//! throughout the paper, and the column-wise form `C(:,j) = Σ_k B_kj ·
//! A(:,k)` over CSC operands. The study focuses on the row-wise kernel
//! (reordering/clustering the *rows* of `A`); this module provides the
//! column-wise form so the choice is testable rather than assumed, and to
//! cross-validate the row-wise kernel through an independent code path.

use crate::accumulator::{make_accumulator, AccumulatorKind};
use cw_sparse::{ColIdx, CscMatrix, CsrMatrix, Value};
use rayon::prelude::*;

/// `C = A · B` computed column-wise over CSC operands; returns CSC.
pub fn spgemm_colwise_csc(a: &CscMatrix, b: &CscMatrix, kind: AccumulatorKind) -> CscMatrix {
    assert_eq!(
        a.ncols, b.nrows,
        "dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows, a.ncols, b.nrows, b.ncols
    );
    // One output column per B column; independent, so parallel per column.
    let columns: Vec<(Vec<ColIdx>, Vec<Value>)> = (0..b.ncols)
        .into_par_iter()
        .map_init(
            || make_accumulator(kind, a.nrows),
            |acc, j| {
                let (b_rows, b_vals) = (b.col_rows(j), b.col_vals(j));
                for (&k, &bv) in b_rows.iter().zip(b_vals) {
                    let (a_rows, a_vals) = (a.col_rows(k as usize), a.col_vals(k as usize));
                    for (&i, &av) in a_rows.iter().zip(a_vals) {
                        acc.add(i, av * bv);
                    }
                }
                let (mut rows, mut vals) = (Vec::new(), Vec::new());
                acc.extract_into(&mut rows, &mut vals);
                (rows, vals)
            },
        )
        .collect();
    let mut col_ptr = Vec::with_capacity(b.ncols + 1);
    col_ptr.push(0usize);
    let mut row_idx = Vec::new();
    let mut vals = Vec::new();
    for (r, v) in columns {
        row_idx.extend_from_slice(&r);
        vals.extend_from_slice(&v);
        col_ptr.push(row_idx.len());
    }
    CscMatrix { nrows: a.nrows, ncols: b.ncols, col_ptr, row_idx, vals }
}

/// Convenience wrapper: CSR in, CSR out, computed column-wise internally.
pub fn spgemm_colwise(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let ac = CscMatrix::from_csr(a);
    let bc = CscMatrix::from_csr(b);
    spgemm_colwise_csc(&ac, &bc, AccumulatorKind::Hash).to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowwise::{dense_reference, spgemm_serial};
    use cw_sparse::gen::er::{erdos_renyi, erdos_renyi_rect};
    use cw_sparse::gen::grid::poisson2d;

    #[test]
    fn colwise_matches_rowwise_on_square() {
        let a = poisson2d(9, 8);
        let row = spgemm_serial(&a, &a);
        let col = spgemm_colwise(&a, &a);
        assert!(col.approx_eq(&row, 1e-10));
    }

    #[test]
    fn colwise_matches_dense_on_rectangular() {
        let a = erdos_renyi(30, 5, 1);
        let b = erdos_renyi_rect(30, 7, 3, 2);
        let c = spgemm_colwise(&a, &b);
        assert!(c.numerically_eq(&dense_reference(&a, &b), 1e-9));
    }

    #[test]
    fn all_accumulators_agree_colwise() {
        let a = erdos_renyi(40, 4, 9);
        let ac = CscMatrix::from_csr(&a);
        let reference = spgemm_colwise_csc(&ac, &ac, AccumulatorKind::Hash).to_csr();
        for kind in [AccumulatorKind::Dense, AccumulatorKind::Sort] {
            let c = spgemm_colwise_csc(&ac, &ac, kind).to_csr();
            assert!(c.approx_eq(&reference, 1e-10), "{kind:?}");
        }
    }

    #[test]
    fn empty_matrices() {
        let z = CsrMatrix::zeros(4, 4);
        assert_eq!(spgemm_colwise(&z, &z).nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = CsrMatrix::zeros(3, 4);
        let b = CsrMatrix::zeros(3, 3);
        let _ = spgemm_colwise(&a, &b);
    }
}
