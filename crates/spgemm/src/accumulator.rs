//! Sparse accumulators for Gustavson-style SpGEMM.
//!
//! A sparse accumulator collects the intermediate products of one output row
//! (`accumulate` in paper Fig. 1) and emits the compressed, sorted result
//! (`copy`). The paper uses a hash-table accumulator following Nagasaka et
//! al. \[40\]; a dense SPA and a sort-merge accumulator are provided for the
//! ablation benchmarks.
//!
//! Accumulators are designed for reuse across rows: `extract_into` drains
//! and resets in `O(row nnz)`, never `O(ncols)`, so one accumulator instance
//! serves a whole thread's worth of rows without re-allocation.

use cw_sparse::{ColIdx, Value};

/// Sentinel for an empty hash slot (no valid column id equals `u32::MAX`
/// because matrix dimensions are `< u32::MAX`).
const EMPTY: u32 = u32::MAX;

/// Which accumulator implementation a kernel should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccumulatorKind {
    /// Open-addressing hash table (the paper's choice, \[40\]).
    #[default]
    Hash,
    /// Dense array with generation stamps (classic SPA).
    Dense,
    /// Append + sort + merge (ESC-style).
    Sort,
}

/// Common interface of all sparse accumulators.
///
/// `Send` is a supertrait so boxed accumulators can serve as per-worker
/// state in the work-stealing pool's `map_init`/`for_each_init` (worker
/// state slots may be handed between OS threads across calls).
pub trait Accumulator: Send {
    /// Adds `val` at column `col`, merging with any existing entry.
    fn add(&mut self, col: ColIdx, val: Value);
    /// Number of distinct columns currently held.
    fn len(&self) -> usize;
    /// True if no columns are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Appends the accumulated `(col, val)` entries to `cols`/`vals` in
    /// ascending column order, then resets the accumulator for the next row.
    fn extract_into(&mut self, cols: &mut Vec<ColIdx>, vals: &mut Vec<Value>);
    /// Drops the accumulated entries without emitting them (symbolic-phase
    /// use: callers read [`Accumulator::len`] first).
    fn clear(&mut self);
}

/// Fibonacci-style multiplicative hash: fast, good-enough spread for column
/// ids (the perf-book guidance: never SipHash in a kernel).
#[inline(always)]
fn hash32(x: u32, mask: usize) -> usize {
    (x.wrapping_mul(0x9E37_79B9) as usize) & mask
}

/// Open-addressing (linear probing) hash accumulator.
///
/// Capacity is always a power of two and grows at 50% load. `keys` holds
/// column ids (EMPTY = free), `vals` the running sums, and `occupied` the
/// list of used slots so reset costs `O(entries)` rather than `O(capacity)`.
#[derive(Debug)]
pub struct HashAccumulator {
    keys: Vec<u32>,
    vals: Vec<Value>,
    occupied: Vec<u32>,
    mask: usize,
    scratch: Vec<(ColIdx, Value)>,
}

impl HashAccumulator {
    /// Creates an accumulator sized for about `expected` entries.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        HashAccumulator {
            keys: vec![EMPTY; cap],
            vals: vec![0.0; cap],
            occupied: Vec::with_capacity(expected.max(8)),
            mask: cap - 1,
            scratch: Vec::new(),
        }
    }

    /// Creates an accumulator with the default small capacity.
    pub fn new() -> Self {
        Self::with_capacity(8)
    }

    #[inline]
    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(16);
        let mut keys = vec![EMPTY; new_cap];
        let mut vals = vec![0.0; new_cap];
        let mask = new_cap - 1;
        let mut occupied = Vec::with_capacity(self.occupied.len() * 2);
        for &slot in &self.occupied {
            let (k, v) = (self.keys[slot as usize], self.vals[slot as usize]);
            let mut h = hash32(k, mask);
            while keys[h] != EMPTY {
                h = (h + 1) & mask;
            }
            keys[h] = k;
            vals[h] = v;
            occupied.push(h as u32);
        }
        self.keys = keys;
        self.vals = vals;
        self.mask = mask;
        self.occupied = occupied;
    }
}

impl Default for HashAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Accumulator for HashAccumulator {
    #[inline]
    fn add(&mut self, col: ColIdx, val: Value) {
        debug_assert_ne!(col, EMPTY);
        if self.occupied.len() * 2 >= self.keys.len() {
            self.grow();
        }
        let mut h = hash32(col, self.mask);
        loop {
            let k = self.keys[h];
            if k == col {
                self.vals[h] += val;
                return;
            }
            if k == EMPTY {
                self.keys[h] = col;
                self.vals[h] = val;
                self.occupied.push(h as u32);
                return;
            }
            h = (h + 1) & self.mask;
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.occupied.len()
    }

    fn extract_into(&mut self, cols: &mut Vec<ColIdx>, vals: &mut Vec<Value>) {
        self.scratch.clear();
        self.scratch.reserve(self.occupied.len());
        for &slot in &self.occupied {
            self.scratch.push((self.keys[slot as usize], self.vals[slot as usize]));
            self.keys[slot as usize] = EMPTY;
        }
        self.occupied.clear();
        self.scratch.sort_unstable_by_key(|&(c, _)| c);
        cols.extend(self.scratch.iter().map(|&(c, _)| c));
        vals.extend(self.scratch.iter().map(|&(_, v)| v));
    }

    fn clear(&mut self) {
        for &slot in &self.occupied {
            self.keys[slot as usize] = EMPTY;
        }
        self.occupied.clear();
    }
}

/// Dense accumulator ("SPA"): a value per column plus a generation stamp, so
/// reset is `O(1)` (bump the generation) and only touched columns are sorted
/// on extraction.
#[derive(Debug)]
pub struct DenseAccumulator {
    vals: Vec<Value>,
    stamp: Vec<u32>,
    gen: u32,
    touched: Vec<ColIdx>,
}

impl DenseAccumulator {
    /// Creates a dense accumulator for matrices with `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        DenseAccumulator {
            vals: vec![0.0; ncols],
            stamp: vec![0; ncols],
            gen: 1,
            touched: Vec::new(),
        }
    }
}

impl Accumulator for DenseAccumulator {
    #[inline]
    fn add(&mut self, col: ColIdx, val: Value) {
        let c = col as usize;
        debug_assert!(c < self.vals.len());
        if self.stamp[c] == self.gen {
            self.vals[c] += val;
        } else {
            self.stamp[c] = self.gen;
            self.vals[c] = val;
            self.touched.push(col);
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.touched.len()
    }

    fn extract_into(&mut self, cols: &mut Vec<ColIdx>, vals: &mut Vec<Value>) {
        self.touched.sort_unstable();
        for &c in &self.touched {
            cols.push(c);
            vals.push(self.vals[c as usize]);
        }
        self.touched.clear();
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Stamp wrap-around: invalidate everything once per 2^32 rows.
            self.stamp.fill(0);
            self.gen = 1;
        }
    }

    fn clear(&mut self) {
        self.touched.clear();
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
    }
}

/// Sort-merge accumulator: appends every partial product, then sorts and
/// merges duplicates on extraction (expand-sort-compress). Cheap `add`, no
/// random memory traffic, but `O(f log f)` extraction — the classic
/// trade-off benchmarked in `benches/accumulators.rs`.
#[derive(Debug, Default)]
pub struct SortAccumulator {
    entries: Vec<(ColIdx, Value)>,
    distinct: usize,
    dirty: bool,
}

impl SortAccumulator {
    /// Creates an empty sort accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn compact(&mut self) {
        self.entries.sort_unstable_by_key(|&(c, _)| c);
        let mut w = 0usize;
        let mut r = 0usize;
        while r < self.entries.len() {
            let (c, mut v) = self.entries[r];
            r += 1;
            while r < self.entries.len() && self.entries[r].0 == c {
                v += self.entries[r].1;
                r += 1;
            }
            self.entries[w] = (c, v);
            w += 1;
        }
        self.entries.truncate(w);
        self.distinct = w;
        self.dirty = false;
    }
}

impl Accumulator for SortAccumulator {
    #[inline]
    fn add(&mut self, col: ColIdx, val: Value) {
        self.entries.push((col, val));
        self.dirty = true;
    }

    fn len(&self) -> usize {
        if self.dirty {
            // `len` must be exact for the symbolic phase; compact lazily.
            // Interior mutability is avoided by requiring &mut in practice:
            // symbolic callers use `clear` right after, so we recompute here
            // on a clone-free path via a const estimate. Instead, keep it
            // simple and exact: compact on a temporary copy is wasteful, so
            // we document that `len` is exact only after `compacted_len`.
            // To keep the trait honest, compute exactly:
            let mut sorted: Vec<ColIdx> = self.entries.iter().map(|&(c, _)| c).collect();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.len()
        } else {
            self.distinct
        }
    }

    fn extract_into(&mut self, cols: &mut Vec<ColIdx>, vals: &mut Vec<Value>) {
        if self.dirty {
            self.compact();
        }
        cols.extend(self.entries.iter().map(|&(c, _)| c));
        vals.extend(self.entries.iter().map(|&(_, v)| v));
        self.entries.clear();
        self.distinct = 0;
        self.dirty = false;
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.distinct = 0;
        self.dirty = false;
    }
}

/// Sorted-array accumulator: keeps the row's entries in a column-sorted
/// array at all times, merging each partial product on arrival via binary
/// search + insert. `add` is `O(log k + k)` (memmove on insert), which is
/// only competitive when the row's intermediate-product count is tiny —
/// exactly the regime the adaptive kernel zoo routes here, where it beats
/// both the hash table (hashing overhead) and the SPA (per-row `touched`
/// sort). Unlike [`SortAccumulator`], duplicate columns merge in arrival
/// order, so results are bit-identical to the hash and dense paths.
#[derive(Debug, Default)]
pub struct SortedArrayAccumulator {
    cols: Vec<ColIdx>,
    vals: Vec<Value>,
}

impl SortedArrayAccumulator {
    /// Creates an empty sorted-array accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Accumulator for SortedArrayAccumulator {
    #[inline]
    fn add(&mut self, col: ColIdx, val: Value) {
        match self.cols.binary_search(&col) {
            Ok(pos) => self.vals[pos] += val,
            Err(pos) => {
                self.cols.insert(pos, col);
                self.vals.insert(pos, val);
            }
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.cols.len()
    }

    fn extract_into(&mut self, cols: &mut Vec<ColIdx>, vals: &mut Vec<Value>) {
        cols.append(&mut self.cols);
        vals.append(&mut self.vals);
    }

    fn clear(&mut self) {
        self.cols.clear();
        self.vals.clear();
    }
}

/// A boxed accumulator of the requested kind, sized for `ncols` columns.
pub fn make_accumulator(kind: AccumulatorKind, ncols: usize) -> Box<dyn Accumulator> {
    match kind {
        AccumulatorKind::Hash => Box::new(HashAccumulator::new()),
        AccumulatorKind::Dense => Box::new(DenseAccumulator::new(ncols)),
        AccumulatorKind::Sort => Box::new(SortAccumulator::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(acc: &mut dyn Accumulator) {
        // Insert with duplicates, out of order.
        acc.add(5, 1.0);
        acc.add(2, 2.0);
        acc.add(5, 3.0);
        acc.add(9, -1.0);
        acc.add(2, 0.5);
        assert_eq!(acc.len(), 3);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        acc.extract_into(&mut cols, &mut vals);
        assert_eq!(cols, vec![2, 5, 9]);
        assert_eq!(vals, vec![2.5, 4.0, -1.0]);
        // Accumulator must be reusable after extraction.
        assert_eq!(acc.len(), 0);
        acc.add(1, 1.0);
        assert_eq!(acc.len(), 1);
        let (mut c2, mut v2) = (Vec::new(), Vec::new());
        acc.extract_into(&mut c2, &mut v2);
        assert_eq!(c2, vec![1]);
        assert_eq!(v2, vec![1.0]);
    }

    #[test]
    fn hash_accumulator_basic() {
        exercise(&mut HashAccumulator::new());
    }

    #[test]
    fn dense_accumulator_basic() {
        exercise(&mut DenseAccumulator::new(16));
    }

    #[test]
    fn sort_accumulator_basic() {
        exercise(&mut SortAccumulator::new());
    }

    #[test]
    fn sorted_array_accumulator_basic() {
        exercise(&mut SortedArrayAccumulator::new());
    }

    #[test]
    fn sorted_array_merges_duplicates_in_arrival_order() {
        // Bit-identity with the hash/dense paths requires duplicate
        // columns to sum in arrival order; verify against a hash run on
        // values where float addition order is observable.
        let seq = [(3u32, 0.1), (3, 0.2), (1, 1e16), (1, 1.0), (1, -1e16)];
        let mut sa = SortedArrayAccumulator::new();
        let mut ha = HashAccumulator::new();
        for &(c, v) in &seq {
            sa.add(c, v);
            ha.add(c, v);
        }
        let (mut c1, mut v1) = (Vec::new(), Vec::new());
        let (mut c2, mut v2) = (Vec::new(), Vec::new());
        sa.extract_into(&mut c1, &mut v1);
        ha.extract_into(&mut c2, &mut v2);
        assert_eq!(c1, c2);
        assert!(v1.iter().zip(&v2).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn hash_grows_past_initial_capacity() {
        let mut acc = HashAccumulator::with_capacity(2);
        for c in 0..1000u32 {
            acc.add(c * 7 % 997, 1.0);
        }
        // 997 distinct keys mod 997 -> 0..996, with duplicates merged.
        assert_eq!(acc.len(), 997);
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        acc.extract_into(&mut cols, &mut vals);
        assert_eq!(cols.len(), 997);
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let total: f64 = vals.iter().sum();
        assert_eq!(total, 1000.0);
    }

    #[test]
    fn clear_discards_without_emitting() {
        for acc in [
            &mut HashAccumulator::new() as &mut dyn Accumulator,
            &mut DenseAccumulator::new(8),
            &mut SortAccumulator::new(),
        ] {
            acc.add(3, 1.0);
            acc.add(4, 1.0);
            acc.clear();
            assert_eq!(acc.len(), 0);
            acc.add(3, 2.0);
            let (mut c, mut v) = (Vec::new(), Vec::new());
            acc.extract_into(&mut c, &mut v);
            assert_eq!(v, vec![2.0]); // old 1.0 must not leak through
        }
    }

    #[test]
    fn dense_generation_wraparound_is_safe() {
        let mut acc = DenseAccumulator::new(4);
        acc.gen = u32::MAX; // force wrap on next extract
        acc.add(1, 5.0);
        let (mut c, mut v) = (Vec::new(), Vec::new());
        acc.extract_into(&mut c, &mut v);
        assert_eq!(v, vec![5.0]);
        // After wrap, stale stamps must not alias.
        acc.add(1, 7.0);
        let (mut c2, mut v2) = (Vec::new(), Vec::new());
        acc.extract_into(&mut c2, &mut v2);
        assert_eq!(v2, vec![7.0]);
    }

    #[test]
    fn sort_len_is_exact_while_dirty() {
        let mut acc = SortAccumulator::new();
        acc.add(3, 1.0);
        acc.add(3, 1.0);
        acc.add(1, 1.0);
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn make_accumulator_dispatches() {
        for kind in [AccumulatorKind::Hash, AccumulatorKind::Dense, AccumulatorKind::Sort] {
            let mut acc = make_accumulator(kind, 32);
            acc.add(7, 1.5);
            assert_eq!(acc.len(), 1);
        }
    }
}
