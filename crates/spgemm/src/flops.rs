//! FLOP counting and the compression ratio (paper §4.3).
//!
//! `flops(A·B) = 2 · Σ_{a_ik ≠ 0} nnz(B[k,:])` is the standard work measure
//! for SpGEMM. The *compression ratio* `flops/2 / nnz(C)` measures how much
//! accumulation collapses intermediate products; Nagasaka et al. \[40\] show
//! throughput correlates with it, and the paper's §4.3 observes reordering
//! helps *even when the compression ratio is unchanged* — an observation our
//! `cw-cachesim` experiments can reproduce deterministically.

use cw_sparse::CsrMatrix;
use rayon::prelude::*;

/// Multiply-add count per row of the product `A·B` (not doubled).
pub fn flops_per_row(a: &CsrMatrix, b: &CsrMatrix) -> Vec<u64> {
    assert_eq!(a.ncols, b.nrows);
    (0..a.nrows)
        .into_par_iter()
        .map(|i| a.row_cols(i).iter().map(|&k| b.row_nnz(k as usize) as u64).sum())
        .collect()
}

/// Total multiply-adds of `A·B` (the conventional `flops/2`).
pub fn multiply_adds(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    flops_per_row(a, b).iter().sum()
}

/// Conventional FLOP count (`2 ×` multiply-adds).
pub fn flops(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    2 * multiply_adds(a, b)
}

/// Compression ratio `multiply_adds / nnz(C)`.
///
/// `1.0` means no accumulation at all; large values mean many intermediate
/// products collapse into each output nonzero.
pub fn compression_ratio(a: &CsrMatrix, b: &CsrMatrix, c: &CsrMatrix) -> f64 {
    let ma = multiply_adds(a, b);
    if c.nnz() == 0 {
        return 0.0;
    }
    ma as f64 / c.nnz() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowwise::spgemm;

    #[test]
    fn identity_flops() {
        let i = CsrMatrix::identity(6);
        assert_eq!(multiply_adds(&i, &i), 6);
        assert_eq!(flops(&i, &i), 12);
        let c = spgemm(&i, &i);
        assert_eq!(compression_ratio(&i, &i, &c), 1.0);
    }

    #[test]
    fn flops_per_row_counts_b_rows() {
        // A row with entries in columns k pulls nnz(B[k,:]) each.
        let a = CsrMatrix::from_row_lists(3, vec![vec![(0, 1.0), (2, 1.0)]]);
        let b = CsrMatrix::from_row_lists(
            4,
            vec![vec![(0, 1.0), (1, 1.0)], vec![(2, 1.0)], vec![(0, 1.0), (1, 1.0), (3, 1.0)]],
        );
        assert_eq!(flops_per_row(&a, &b), vec![5]);
    }

    #[test]
    fn compression_ratio_on_overlapping_products() {
        // Both columns of A's row hit B rows with the same output column.
        let a = CsrMatrix::from_row_lists(2, vec![vec![(0, 1.0), (1, 1.0)]]);
        let b = CsrMatrix::from_row_lists(1, vec![vec![(0, 2.0)], vec![(0, 3.0)]]);
        let c = spgemm(&a, &b);
        assert_eq!(multiply_adds(&a, &b), 2);
        assert_eq!(c.nnz(), 1);
        assert_eq!(compression_ratio(&a, &b, &c), 2.0);
    }

    #[test]
    fn empty_product_ratio_is_zero() {
        let z = CsrMatrix::zeros(3, 3);
        let c = spgemm(&z, &z);
        assert_eq!(compression_ratio(&z, &z, &c), 0.0);
    }
}
