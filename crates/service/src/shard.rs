//! Worker shards: each owns an [`Engine`] (and thus a private plan cache)
//! and drains coalesced batches off its channel.
//!
//! Because the dispatcher routes every request for a given lhs fingerprint
//! to the same shard, a shard's cache sees *all* traffic for its matrices
//! and *only* that traffic — no cross-thread cache locking, no duplicate
//! preparations of one operand on two shards.
//!
//! Within a batch, consecutive requests that share the *same* `Arc`'d lhs
//! (pointer identity — a strict identity proof, no hashing needed) and the
//! same plan source reuse the head request's prepared operand directly,
//! skipping even the engine's per-call fingerprint + `O(nnz)` checksum
//! verification. That is the batching payoff: one lookup, many kernels.
//!
//! Shard telemetry lives on the service's [`cw_obs`] substrate: every
//! counter a worker bumps is an `Arc`'d obs cell also bound into the
//! service [`cw_obs::MetricsRegistry`], so [`crate::ServiceStats`] and the
//! metrics snapshot are two views over the same atomics. When tracing is
//! enabled each request becomes a [`cw_obs::RequestTrace`]: retroactive
//! `queue`/`coalesce`/`dispatch` spans from the dispatcher's timestamps, a
//! live `serve` span around the engine call (under which the engine records
//! `plan`/`prepare`/`execute`/`postprocess`), and a `request` root closing
//! the trace into the flight recorder.

use crate::request::{MultiplyResponse, RequestShape, ServiceError, ServiceReport};
use crate::stats::{LatencyReservoir, ShardStats};
use cw_engine::{
    BackendId, CacheCounters, Engine, OutputShape, Plan, PlanKnobs, PreparedMatrix, StageTimings,
};
use cw_obs::{Counter, Gauge, LogHistogram, Tracer};
use cw_sparse::{CsrMatrix, MatrixFingerprint};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// RAII claim on one queue-capacity slot: decrements `in_flight` exactly
/// once, when dropped. Because every [`Submission`] carries one, a
/// submission dropped *unserved* (a worker died, a teardown raced a
/// dispatch) still returns its slot — the backpressure bound can never
/// leak shut.
pub(crate) struct SlotGuard(pub(crate) Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One accepted request traveling through the service internals.
pub(crate) struct Submission {
    pub(crate) id: u64,
    pub(crate) lhs: Arc<CsrMatrix>,
    pub(crate) rhs: Arc<CsrMatrix>,
    pub(crate) plan: Option<Plan>,
    /// Requested output shape (carries the mask operand for masked
    /// requests; the service front door already validated its dimensions).
    pub(crate) shape: RequestShape,
    /// Expiry instant; a worker pulling an already-expired submission
    /// drops it with [`ServiceError::DeadlineExceeded`] instead of
    /// executing dead work.
    pub(crate) deadline: Option<Instant>,
    pub(crate) priority: crate::Priority,
    pub(crate) fingerprint: MatrixFingerprint,
    pub(crate) submitted: Instant,
    /// When the dispatcher pulled it off the submission queue (stamped by
    /// the dispatcher; until then, equals `submitted`). The
    /// `submitted..received` interval is the queue wait proper.
    pub(crate) received: Instant,
    /// When the dispatcher flushed its batch to a shard (stamped by
    /// `send_batch`). `received..flushed` is the coalescing-window wait.
    pub(crate) flushed: Instant,
    pub(crate) respond: Sender<Result<MultiplyResponse, ServiceError>>,
    /// Held only for its drop effect (releasing the queue slot).
    pub(crate) _slot: SlotGuard,
}

/// A group of submissions sharing one lhs fingerprint, bound for one shard.
pub(crate) struct Batch {
    pub(crate) items: Vec<Submission>,
}

/// Per-shard obs cells: the shard's counters/gauges, each also registered
/// under `shard{N}.*` in the service metrics registry. The worker thread
/// owns the only writer; [`ShardObs::snapshot`] reconstructs the public
/// [`ShardStats`] view on demand.
#[derive(Debug, Clone)]
pub(crate) struct ShardObs {
    pub(crate) shard: usize,
    pub(crate) batches: Arc<Counter>,
    pub(crate) coalesced_batches: Arc<Counter>,
    pub(crate) requests: Arc<Counter>,
    /// Within-batch operand reuses (bypass the engine cache entirely);
    /// folded into the shard's cache-hit statistics on snapshot.
    pub(crate) reuse_hits: Arc<Counter>,
    pub(crate) replans: Arc<Counter>,
    pub(crate) max_batch_size: Arc<Gauge>,
    pub(crate) cached_operands: Arc<Gauge>,
    pub(crate) cached_bytes: Arc<Gauge>,
    pub(crate) tracked_operands: Arc<Gauge>,
    /// Live handles on the shard engine's plan-cache counters.
    pub(crate) cache: CacheCounters,
}

impl ShardObs {
    /// The public [`ShardStats`] view over these cells. Hit/miss
    /// semantics: "request served from an already-prepared operand" —
    /// engine cache hits plus within-batch reuses.
    pub(crate) fn snapshot(&self) -> ShardStats {
        let mut cache = self.cache.snapshot();
        cache.hits += self.reuse_hits.get();
        ShardStats {
            shard: self.shard,
            batches: self.batches.get(),
            coalesced_batches: self.coalesced_batches.get(),
            requests: self.requests.get(),
            max_batch_size: self.max_batch_size.get() as usize,
            cache,
            cached_operands: self.cached_operands.get() as usize,
            cached_bytes: self.cached_bytes.get() as usize,
            replans: self.replans.get(),
            tracked_operands: self.tracked_operands.get() as usize,
        }
    }
}

/// Everything a worker thread needs beyond its engine and batch channel:
/// the shard's obs cells, the service-wide histograms (shared atomics — the
/// registry merges across shards for free), the tracer, and completion
/// bookkeeping.
pub(crate) struct WorkerCtx {
    pub(crate) shard: usize,
    pub(crate) obs: ShardObs,
    pub(crate) reservoir: Arc<Mutex<LatencyReservoir>>,
    pub(crate) completed: Arc<Counter>,
    /// Accepted requests dropped at the worker because their deadline
    /// passed while they queued.
    pub(crate) deadline_dropped: Arc<Counter>,
    pub(crate) tracer: Arc<Tracer>,
    pub(crate) latency_seconds: Arc<LogHistogram>,
    pub(crate) queue_seconds: Arc<LogHistogram>,
    pub(crate) execute_seconds: Arc<LogHistogram>,
    pub(crate) batch_size: Arc<LogHistogram>,
    /// Kernel-seconds histograms, one per backend, indexed parallel to
    /// [`BackendId::ALL`].
    pub(crate) kernel_seconds: Vec<Arc<LogHistogram>>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) in_flight: Arc<AtomicUsize>,
}

/// Position of `id` in [`BackendId::ALL`] (the kernel-histogram index).
pub(crate) fn backend_slot(id: BackendId) -> usize {
    BackendId::ALL.iter().position(|b| *b == id).unwrap_or(0)
}

/// The head request's reusable identity within one coalesced batch — the
/// lhs operand, forced-plan knobs, output shape, and the preparation they
/// resolved to.
type BatchHead = (Arc<CsrMatrix>, Option<PlanKnobs>, OutputShape, Arc<PreparedMatrix>);

/// Drains batches until the dispatcher hangs up, then exits. Responses go
/// straight to each request's private channel; counters land in the
/// shard's [`ShardObs`] cells so [`crate::SpgemmService::stats`] and the
/// metrics registry can read them without talking to the thread.
pub(crate) fn worker_loop(rx: Receiver<Batch>, mut engine: Engine, ctx: WorkerCtx) {
    while let Ok(batch) = rx.recv() {
        let batch_size = batch.items.len();
        ctx.batch_size.record(batch_size as f64);
        ctx.queue_depth.set(ctx.in_flight.load(Ordering::SeqCst) as i64);
        // Head request's resolved operand, reusable by identical followers.
        // The shape joins the identity because shaped preparations live
        // under their own cache keys; the *mask* does not — preparation is
        // mask-independent, so two masked requests with different masks
        // still share one prepared operand.
        let mut head: Option<BatchHead> = None;
        for sub in batch.items {
            let started = Instant::now();
            // The deadline already gated admission; here it gates
            // execution — a request that died waiting in the queue is
            // dropped before any trace, cache, or kernel work happens.
            // Dropping `sub` hangs up its response channel (the ticket
            // resolves `ServiceError::Disconnected`) and the SlotGuard
            // frees the queue slot.
            if sub.deadline.is_some_and(|d| started >= d) {
                ctx.deadline_dropped.inc();
                continue;
            }
            let queue_seconds = started.saturating_duration_since(sub.submitted).as_secs_f64();
            ctx.tracer.begin_trace(sub.id);
            if ctx.tracer.enabled() {
                // Pre-execution waits, reconstructed from the dispatcher's
                // stamps (monotone-clamped so the spans always tile).
                let submitted_ns = ctx.tracer.ns_of(sub.submitted);
                let received_ns = ctx.tracer.ns_of(sub.received).max(submitted_ns);
                let flushed_ns = ctx.tracer.ns_of(sub.flushed).max(received_ns);
                let started_ns = ctx.tracer.ns_of(started).max(flushed_ns);
                ctx.tracer.record_span_at("queue", submitted_ns, received_ns, 1);
                ctx.tracer.record_span_at("coalesce", received_ns, flushed_ns, 1);
                ctx.tracer.record_span_at("dispatch", flushed_ns, started_ns, 1);
            }
            let serve_span = ctx.tracer.span("serve");
            let plan_knobs = sub.plan.map(|p| p.knobs());
            let shape = sub.shape.output_shape();
            let reused = matches!(
                &head,
                Some((lhs0, knobs0, shape0, _))
                    if Arc::ptr_eq(lhs0, &sub.lhs) && *knobs0 == plan_knobs && *shape0 == shape
            );
            let (prepared, prep_timings, cache_hit) = if reused {
                ctx.obs.reuse_hits.inc();
                // A batch-reuse never enters the engine, so stand in for
                // its plan/prepare spans (zero-length: no work was done).
                let now = ctx.tracer.now_ns();
                ctx.tracer.record_span("plan", now, now);
                ctx.tracer.record_span("prepare", now, now);
                let (_, _, _, prep) = head.as_ref().expect("reused implies head");
                (Arc::clone(prep), StageTimings::default(), true)
            } else {
                let (prep, timings, hit) = engine.prepare_with_shape(&sub.lhs, sub.plan, shape);
                head = Some((Arc::clone(&sub.lhs), plan_knobs, shape, Arc::clone(&prep)));
                (prep, timings, hit)
            };
            // Execute + record + report through the engine's shared tail:
            // each shard owns its engine, so observed timings close the
            // feedback loop with no cross-thread locking. Forced-plan
            // requests whose knobs match a tracked candidate feed that
            // candidate's EWMA too (an ablation run can promote a faster
            // plan for the shard's auto traffic).
            let (product, execution) = engine.execute_prepared_shaped(
                &prepared,
                &sub.rhs,
                sub.shape.mask().map(Arc::as_ref),
                prep_timings,
                cache_hit,
            );
            drop(serve_span);
            if execution.feedback.is_some_and(|f| f.switched) {
                ctx.obs.replans.inc();
            }
            let execute_seconds = started.elapsed().as_secs_f64();
            let latency_seconds = sub.submitted.elapsed().as_secs_f64();
            ctx.queue_seconds.record(queue_seconds);
            ctx.execute_seconds.record(execute_seconds);
            ctx.latency_seconds.record(latency_seconds);
            ctx.kernel_seconds[backend_slot(execution.backend)]
                .record(execution.timings.kernel_seconds);
            ctx.reservoir.lock().unwrap().record(latency_seconds);
            let report = ServiceReport {
                request_id: sub.id,
                shard: ctx.shard,
                batch_size,
                queue_seconds,
                execute_seconds,
                latency_seconds,
                cache_hit: execution.cache_hit,
                backend: execution.backend,
                priority: sub.priority,
                shape: execution.plan.shape,
                deadline_slack_seconds: sub.deadline.map(|d| {
                    let now = Instant::now();
                    match d.checked_duration_since(now) {
                        Some(left) => left.as_secs_f64(),
                        None => -now.saturating_duration_since(d).as_secs_f64(),
                    }
                }),
                execution,
            };
            // Root span from submission to now: it closes *after* the
            // latency measurement (so root duration ≥ reported latency)
            // but *before* the response is sent, so a caller who has seen
            // the response can already find the trace in the recorder.
            ctx.tracer.end_trace(sub.id, "request", ctx.tracer.ns_of(sub.submitted));
            ctx.completed.inc();
            // A dropped Ticket is fine: the response is simply discarded.
            let _ = sub.respond.send(Ok(MultiplyResponse { product, report }));
            // `sub` (and its SlotGuard) drops here, releasing the queue
            // slot only after the response is delivered.
        }
        ctx.obs.batches.inc();
        if batch_size > 1 {
            ctx.obs.coalesced_batches.inc();
        }
        ctx.obs.requests.add(batch_size as u64);
        ctx.obs.max_batch_size.set_max(batch_size as i64);
        ctx.obs.cached_operands.set(engine.cached_operands() as i64);
        ctx.obs.cached_bytes.set(engine.cache().bytes() as i64);
        ctx.obs.tracked_operands.set(engine.feedback().len() as i64);
    }
}
