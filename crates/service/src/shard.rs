//! Worker shards: each owns an [`Engine`] (and thus a private plan cache)
//! and drains coalesced batches off its channel.
//!
//! Because the dispatcher routes every request for a given lhs fingerprint
//! to the same shard, a shard's cache sees *all* traffic for its matrices
//! and *only* that traffic — no cross-thread cache locking, no duplicate
//! preparations of one operand on two shards.
//!
//! Within a batch, consecutive requests that share the *same* `Arc`'d lhs
//! (pointer identity — a strict identity proof, no hashing needed) and the
//! same plan source reuse the head request's prepared operand directly,
//! skipping even the engine's per-call fingerprint + `O(nnz)` checksum
//! verification. That is the batching payoff: one lookup, many kernels.

use crate::request::{MultiplyResponse, ServiceError, ServiceReport};
use crate::stats::{LatencyReservoir, ShardStats};
use cw_engine::{Engine, Plan, PlanKnobs, PreparedMatrix, StageTimings};
use cw_sparse::{CsrMatrix, MatrixFingerprint};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// RAII claim on one queue-capacity slot: decrements `in_flight` exactly
/// once, when dropped. Because every [`Submission`] carries one, a
/// submission dropped *unserved* (a worker died, a teardown raced a
/// dispatch) still returns its slot — the backpressure bound can never
/// leak shut.
pub(crate) struct SlotGuard(pub(crate) Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One accepted request traveling through the service internals.
pub(crate) struct Submission {
    pub(crate) id: u64,
    pub(crate) lhs: Arc<CsrMatrix>,
    pub(crate) rhs: Arc<CsrMatrix>,
    pub(crate) plan: Option<Plan>,
    pub(crate) fingerprint: MatrixFingerprint,
    pub(crate) submitted: Instant,
    pub(crate) respond: Sender<Result<MultiplyResponse, ServiceError>>,
    /// Held only for its drop effect (releasing the queue slot).
    pub(crate) _slot: SlotGuard,
}

/// A group of submissions sharing one lhs fingerprint, bound for one shard.
pub(crate) struct Batch {
    pub(crate) items: Vec<Submission>,
}

/// Shared completion counter (queue capacity itself is released by each
/// submission's [`SlotGuard`], served or not).
pub(crate) struct Completion {
    pub(crate) completed: Arc<AtomicU64>,
}

/// Drains batches until the dispatcher hangs up, then exits. Responses go
/// straight to each request's private channel; per-batch counters and a
/// cache snapshot land in `slot` so [`crate::SpgemmService::stats`] can
/// read them without talking to the thread.
pub(crate) fn worker_loop(
    shard: usize,
    rx: Receiver<Batch>,
    mut engine: Engine,
    slot: Arc<Mutex<ShardStats>>,
    reservoir: Arc<Mutex<LatencyReservoir>>,
    completion: Completion,
) {
    // Requests served from a batch-shared prepared operand, counted into
    // the shard's hit statistics (they bypass the engine cache entirely).
    let mut reuse_hits: u64 = 0;
    // Feedback-loop plan switches observed on this shard.
    let mut replans: u64 = 0;
    while let Ok(batch) = rx.recv() {
        let batch_size = batch.items.len();
        // Head request's resolved operand, reusable by identical followers.
        let mut head: Option<(Arc<CsrMatrix>, Option<PlanKnobs>, Arc<PreparedMatrix>)> = None;
        for sub in batch.items {
            let started = Instant::now();
            let queue_seconds = started.saturating_duration_since(sub.submitted).as_secs_f64();
            let plan_knobs = sub.plan.map(|p| p.knobs());
            let reused = matches!(
                &head,
                Some((lhs0, knobs0, _)) if Arc::ptr_eq(lhs0, &sub.lhs) && *knobs0 == plan_knobs
            );
            let (prepared, prep_timings, cache_hit) = if reused {
                reuse_hits += 1;
                let (_, _, prep) = head.as_ref().expect("reused implies head");
                (Arc::clone(prep), StageTimings::default(), true)
            } else {
                let (prep, timings, hit) = engine.prepare_with(&sub.lhs, sub.plan);
                head = Some((Arc::clone(&sub.lhs), plan_knobs, Arc::clone(&prep)));
                (prep, timings, hit)
            };
            // Execute + record + report through the engine's shared tail:
            // each shard owns its engine, so observed timings close the
            // feedback loop with no cross-thread locking. Forced-plan
            // requests whose knobs match a tracked candidate feed that
            // candidate's EWMA too (an ablation run can promote a faster
            // plan for the shard's auto traffic).
            let (product, execution) =
                engine.execute_prepared(&prepared, &sub.rhs, prep_timings, cache_hit);
            if execution.feedback.is_some_and(|f| f.switched) {
                replans += 1;
            }
            let execute_seconds = started.elapsed().as_secs_f64();
            let latency_seconds = sub.submitted.elapsed().as_secs_f64();
            reservoir.lock().unwrap().record(latency_seconds);
            let report = ServiceReport {
                request_id: sub.id,
                shard,
                batch_size,
                queue_seconds,
                execute_seconds,
                latency_seconds,
                cache_hit: execution.cache_hit,
                backend: execution.backend,
                execution,
            };
            // A dropped Ticket is fine: the response is simply discarded.
            let _ = sub.respond.send(Ok(MultiplyResponse { product, report }));
            completion.completed.fetch_add(1, Ordering::SeqCst);
            // `sub` (and its SlotGuard) drops here, releasing the queue
            // slot only after the response is delivered.
        }
        let mut s = slot.lock().unwrap();
        s.batches += 1;
        if batch_size > 1 {
            s.coalesced_batches += 1;
        }
        s.requests += batch_size as u64;
        s.max_batch_size = s.max_batch_size.max(batch_size);
        // Hit/miss semantics: "request served from an already-prepared
        // operand" — engine cache hits plus within-batch reuses.
        s.cache = engine.cache_stats();
        s.cache.hits += reuse_hits;
        s.cached_operands = engine.cached_operands();
        s.cached_bytes = engine.cache().bytes();
        s.replans = replans;
        s.tracked_operands = engine.feedback().len();
    }
}
