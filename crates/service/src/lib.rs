//! **cw-service** — a threaded serving layer over [`cw_engine::Engine`]
//! for repeated SpGEMM traffic.
//!
//! The paper's cluster-wise pipeline pays a one-time reordering/clustering
//! cost that only amortizes under repeated multiplications (§4.5, Fig. 10)
//! — exactly the serving scenario. [`SpgemmService`] turns the
//! single-threaded engine into a concurrent front door:
//!
//! * **Submission queue with backpressure** — [`SpgemmService::submit`]
//!   accepts [`MultiplyRequest`]s up to a configurable in-flight bound and
//!   rejects the rest with [`SubmitError::Full`], so overload degrades into
//!   fast failures instead of unbounded memory growth.
//! * **Request batching** — a dispatcher thread coalesces requests that
//!   share the same lhs fingerprint within a small batching window
//!   ([`ServiceConfig::batch_window`]), so one prepared operand serves many
//!   right-hand sides back to back.
//! * **Sharded plan caches** — batches are routed by
//!   [`cw_sparse::MatrixFingerprint::shard_index`] to a fixed pool of
//!   worker shards, each owning its *own* [`cw_engine::Engine`] and
//!   [`cw_engine::PlanCache`]. All traffic for one matrix lands on one
//!   shard, so caches need no cross-thread locking at all.
//! * **Per-shard execution feedback** — each shard engine records
//!   observed kernel timings into its private
//!   [`cw_engine::FeedbackStore`], so repeated traffic converges on the
//!   empirically fastest plan per operand with no cross-thread locking;
//!   plan switches surface as [`ServiceReport::replanned`] and the
//!   per-shard `replans` counter.
//! * **Backend selection** — shards execute through the engine's
//!   [`cw_engine::ExecutionBackend`] seam: by default each shard's
//!   planner starts operands on the reference rayon backend and lets
//!   execution feedback adopt alternatives (e.g. the column-tiled
//!   backend); [`ServiceConfig::backend`] pins every shard to one backend
//!   end to end, and each [`ServiceReport`] names the backend that served
//!   it.
//! * **Observability** — every response carries a [`ServiceReport`]
//!   (queue wait, batch size, executing backend, cache outcome, feedback
//!   calibration state, per-stage [`cw_engine::ExecutionReport`]
//!   timings), and
//!   [`SpgemmService::stats`] aggregates throughput, p50/p99 latency from
//!   a streaming reservoir, and per-shard cache hit rates. Underneath,
//!   every counter lives on the [`cw_obs`] substrate: the
//!   [`SpgemmService::metrics`] registry exposes the same cells plus
//!   always-on mergeable histograms (`latency_seconds`, `queue_seconds`,
//!   `execute_seconds`, `batch_size`, `kernel_seconds.<backend>`), and
//!   [`ServiceConfig::tracing`] turns each request into a structured
//!   span trace (`request` → `queue`/`coalesce`/`dispatch`/`serve` →
//!   `plan`/`prepare`/`execute`/`postprocess`) kept in a bounded flight
//!   recorder ([`SpgemmService::dump_flight_recorder`],
//!   [`SpgemmService::export_jsonl`]).
//!
//! Everything is `std::thread` + `std::sync::mpsc` — no async runtime, in
//! keeping with the workspace's offline vendored-dependency discipline.
//!
//! ```
//! use cw_service::{MultiplyRequest, ServiceConfig, SpgemmService};
//! use std::sync::Arc;
//!
//! let a = Arc::new(cw_sparse::gen::grid::poisson2d(12, 12));
//! let service = SpgemmService::new(ServiceConfig::default());
//!
//! let ticket = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
//! let response = ticket.wait().unwrap();
//! assert_eq!(response.product.nrows, a.nrows);
//!
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod request;
mod service;
mod shard;
mod stats;

pub use request::{
    MultiplyRequest, MultiplyResponse, Priority, RequestShape, ServiceError, ServiceReport,
    SubmitError, Ticket,
};
pub use service::{ServiceConfig, SpgemmService};
pub use stats::{LatencyReservoir, LatencySummary, ServiceStats, ShardStats};
