//! The service: submission queue → batching dispatcher → worker shards.

use crate::request::{MultiplyRequest, SubmitError, Ticket};
use crate::shard::{worker_loop, Batch, ShardObs, SlotGuard, Submission, WorkerCtx};
use crate::stats::{LatencyReservoir, LatencySummary, ServiceStats};
use cw_engine::{
    BackendId, CacheBudget, CalibrationProfile, Engine, PlanCache, Planner, PlanningPolicy,
    DEFAULT_CACHE_CAPACITY,
};
use cw_obs::{export, Counter, FlightRecorder, MetricsRegistry, Tracer};
use cw_sparse::{fingerprint, MatrixFingerprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one [`SpgemmService`] instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards, each with a private engine + plan cache. Requests
    /// route to shards by lhs fingerprint, so shard count also bounds how
    /// many distinct operands prepare concurrently.
    pub shards: usize,
    /// Maximum requests in flight (queued + batching + executing); beyond
    /// it [`SpgemmService::submit`] fails fast with [`SubmitError::Full`].
    pub queue_capacity: usize,
    /// How long the dispatcher holds the first pending request open for
    /// companions before flushing (zero = dispatch immediately, no
    /// coalescing across submissions).
    pub batch_window: Duration,
    /// A same-fingerprint group reaching this size flushes without waiting
    /// out the window.
    pub max_batch: usize,
    /// Per-shard plan-cache bound.
    pub cache_budget: CacheBudget,
    /// Seed for each shard's planner (identical seeds ⇒ identical plans
    /// and bit-identical results across shards and vs a direct engine).
    pub seed: u64,
    /// Planning policy for each shard's planner: amortization horizon,
    /// preprocessing budget, and whether the per-shard feedback loop may
    /// re-plan operands from observed timings.
    pub policy: PlanningPolicy,
    /// Execution-backend selection for the shards. `None` (the default)
    /// lets each shard's planner pick per operand — the reference
    /// [`BackendId::ParallelCpu`] path on first sight, with alternative
    /// backends adopted through execution feedback. `Some(id)` pins every
    /// shard's planner to that backend (oracle deployments, ablations,
    /// machines where one backend is known best); per-request forced plans
    /// still override it.
    pub backend: Option<BackendId>,
    /// Optional fitted [`CalibrationProfile`] installed into every shard's
    /// planner ([`Planner::with_profile`]): first-sight plan ranking then
    /// uses this machine's measured cost constants and per-backend kernel
    /// scales instead of the hand-tuned defaults. `None` = uncalibrated
    /// planning (the per-shard feedback loop still corrects online).
    pub profile: Option<CalibrationProfile>,
    /// Latency reservoir size for p50/p99 estimation.
    pub reservoir_capacity: usize,
    /// Start with structured span tracing enabled. Off (the default),
    /// every span site in the hot path costs one atomic load; on, each
    /// request becomes a [`cw_obs::RequestTrace`] in the flight recorder.
    /// Toggle at runtime through [`SpgemmService::tracer`].
    pub tracing: bool,
    /// Flight-recorder capacity: how many recent request traces are kept
    /// for [`SpgemmService::dump_flight_recorder`] /
    /// [`SpgemmService::export_jsonl`].
    pub flight_capacity: usize,
    /// Parallel-pool width for the shard workers' kernels. `None` (the
    /// default) uses the process default (`RAYON_NUM_THREADS`, read once,
    /// else the machine's parallelism). `Some(w)` pins every shard worker
    /// to a `w`-wide pool via [`rayon::with_pool_width`] — deterministic
    /// deployments, ablations, and in-process width tests.
    pub pool_width: Option<usize>,
    /// QoS admission watermark for [`crate::Priority::Low`] traffic:
    /// `Some(n)` sheds low-priority submissions with [`SubmitError::Full`]
    /// once `n` requests are already in flight, reserving the remaining
    /// `queue_capacity - n` slots for high-priority traffic. `None` (the
    /// default) admits both classes identically — prior behavior.
    pub low_priority_watermark: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            queue_capacity: 256,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            cache_budget: CacheBudget::entries(DEFAULT_CACHE_CAPACITY),
            seed: Planner::default().seed,
            policy: PlanningPolicy::default(),
            backend: None,
            profile: None,
            reservoir_capacity: 1024,
            tracing: false,
            flight_capacity: FlightRecorder::DEFAULT_CAPACITY,
            pool_width: None,
            low_priority_watermark: None,
        }
    }
}

/// Lifetime request counters shared between the front door and workers —
/// obs [`Counter`]s, so the same cells back both [`SpgemmService::stats`]
/// and the service metrics registry.
#[derive(Debug)]
struct Counters {
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    completed: Arc<Counter>,
    /// Submissions rejected at the front door because their deadline had
    /// already passed (a subset of `rejected`).
    deadline_rejected: Arc<Counter>,
    /// Accepted requests dropped by a worker because their deadline passed
    /// while they queued.
    deadline_dropped: Arc<Counter>,
}

/// A threaded SpGEMM serving layer over [`cw_engine::Engine`].
///
/// See the crate docs for the architecture. The service is `Sync`: share
/// it behind an `Arc` and submit from any number of client threads.
/// Dropping it (or calling [`SpgemmService::shutdown`]) drains in-flight
/// requests gracefully before joining the worker threads.
///
/// ```
/// use cw_service::{MultiplyRequest, ServiceConfig, SpgemmService};
/// use std::sync::Arc;
///
/// let a = Arc::new(cw_sparse::gen::grid::poisson2d(10, 10));
/// let service = SpgemmService::new(ServiceConfig { shards: 1, ..ServiceConfig::default() });
///
/// // Same operand twice: the second request rides the shard's plan cache
/// // (or the same coalesced batch) and skips preprocessing.
/// let t1 = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
/// let t2 = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
/// let (r1, r2) = (t1.wait().unwrap(), t2.wait().unwrap());
/// assert!(r1.product.numerically_eq(&r2.product, 0.0));
///
/// let stats = service.shutdown();
/// assert_eq!(stats.completed, 2);
/// assert_eq!(stats.total_cache().hits, 1);
/// ```
#[derive(Debug)]
pub struct SpgemmService {
    config: ServiceConfig,
    submit_tx: Mutex<Option<Sender<Submission>>>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    in_flight: Arc<AtomicUsize>,
    counters: Counters,
    shard_obs: Vec<ShardObs>,
    queue_depth: Arc<cw_obs::Gauge>,
    // One reservoir per shard: the owning worker's lock is uncontended on
    // the hot path (stats() readers aside); merged for service quantiles.
    reservoirs: Vec<Arc<Mutex<LatencyReservoir>>>,
    metrics: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    started: Instant,
    pool_tasks: Arc<Counter>,
    pool_steals: Arc<Counter>,
    pool_split_depth: Arc<cw_obs::Gauge>,
}

/// Per-shard reservoir seed: the legacy constant xor'd with a
/// golden-ratio-scrambled shard index. Shard 0 keeps the legacy seed
/// (determinism pins stay valid); shards sampling the same stream no
/// longer share one eviction pattern.
fn shard_reservoir_seed(shard: usize) -> u64 {
    0x5EED_1E55_C0FF_EE00 ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl SpgemmService {
    /// Spawns the dispatcher and `config.shards` worker threads.
    /// Degenerate knobs are normalized up front (`shards`, `max_batch`,
    /// and `queue_capacity` floors of 1), so [`SpgemmService::config`]
    /// always reports what actually runs and a zero capacity cannot
    /// produce a service that rejects everything forever.
    pub fn new(mut config: ServiceConfig) -> SpgemmService {
        config.shards = config.shards.max(1);
        config.max_batch = config.max_batch.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        let shards = config.shards;
        let in_flight = Arc::new(AtomicUsize::new(0));

        let metrics = Arc::new(MetricsRegistry::new());
        let tracer = Arc::new(Tracer::new(config.flight_capacity));
        tracer.set_enabled(config.tracing);
        let counters = Counters {
            submitted: metrics.counter("requests_submitted"),
            rejected: metrics.counter("requests_rejected"),
            completed: metrics.counter("requests_completed"),
            deadline_rejected: metrics.counter("requests_deadline_rejected"),
            deadline_dropped: metrics.counter("requests_deadline_dropped"),
        };
        let queue_depth = metrics.gauge("queue_depth");
        // Service-wide histograms: shards share the same atomic buckets,
        // which is exactly the registry's merge semantics applied eagerly.
        let latency_seconds = metrics.histogram("latency_seconds");
        let queue_seconds = metrics.histogram("queue_seconds");
        let execute_seconds = metrics.histogram("execute_seconds");
        let batch_size = metrics.histogram("batch_size");
        let kernel_seconds: Vec<_> = BackendId::ALL
            .iter()
            .map(|b| metrics.histogram(&format!("kernel_seconds.{}", b.name())))
            .collect();
        // Parallel-pool telemetry (see `rayon::pool_stats`): registered up
        // front so the names are present in every export, synced lazily on
        // the read paths (`stats`/`metrics`/`export_jsonl`).
        let pool_tasks = metrics.counter("pool.tasks");
        let pool_steals = metrics.counter("pool.steals");
        let pool_split_depth = metrics.gauge("pool.split_depth");

        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_obs = Vec::with_capacity(shards);
        let mut reservoirs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel::<Batch>();
            let reservoir = Arc::new(Mutex::new(LatencyReservoir::with_seed(
                config.reservoir_capacity,
                shard_reservoir_seed(shard),
            )));
            let base = match config.profile.clone() {
                Some(profile) => Planner::with_profile(config.seed, profile),
                None => Planner::with_seed(config.seed),
            };
            let planner = Planner { forced_backend: config.backend, policy: config.policy, ..base };
            let mut engine =
                Engine::with_cache(planner, PlanCache::with_budget(config.cache_budget));
            engine.set_tracer(Arc::clone(&tracer));
            // Shard telemetry: obs cells registered under `shard{N}.*`,
            // cloned into both the worker and the service's stats view.
            let p = format!("shard{shard}.");
            engine.cache().bind_metrics(&metrics, &format!("{p}cache."));
            let obs = ShardObs {
                shard,
                batches: metrics.counter(&format!("{p}batches")),
                coalesced_batches: metrics.counter(&format!("{p}coalesced_batches")),
                requests: metrics.counter(&format!("{p}requests")),
                reuse_hits: metrics.counter(&format!("{p}reuse_hits")),
                replans: metrics.counter(&format!("{p}replans")),
                max_batch_size: metrics.gauge(&format!("{p}max_batch_size")),
                cached_operands: metrics.gauge(&format!("{p}cached_operands")),
                cached_bytes: metrics.gauge(&format!("{p}cached_bytes")),
                tracked_operands: metrics.gauge(&format!("{p}tracked_operands")),
                cache: engine.cache().counters().clone(),
            };
            let ctx = WorkerCtx {
                shard,
                obs: obs.clone(),
                reservoir: Arc::clone(&reservoir),
                completed: Arc::clone(&counters.completed),
                deadline_dropped: Arc::clone(&counters.deadline_dropped),
                tracer: Arc::clone(&tracer),
                latency_seconds: Arc::clone(&latency_seconds),
                queue_seconds: Arc::clone(&queue_seconds),
                execute_seconds: Arc::clone(&execute_seconds),
                batch_size: Arc::clone(&batch_size),
                kernel_seconds: kernel_seconds.clone(),
                queue_depth: Arc::clone(&queue_depth),
                in_flight: Arc::clone(&in_flight),
            };
            let pool_width = config.pool_width;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cw-service-shard-{shard}"))
                    .spawn(move || match pool_width {
                        Some(w) => rayon::with_pool_width(w, || worker_loop(rx, engine, ctx)),
                        None => worker_loop(rx, engine, ctx),
                    })
                    .expect("spawn shard worker"),
            );
            shard_txs.push(tx);
            shard_obs.push(obs);
            reservoirs.push(reservoir);
        }

        let (submit_tx, submit_rx) = mpsc::channel::<Submission>();
        let (window, max_batch) = (config.batch_window, config.max_batch);
        let dispatcher = std::thread::Builder::new()
            .name("cw-service-dispatcher".to_string())
            .spawn(move || dispatcher_loop(submit_rx, shard_txs, window, max_batch))
            .expect("spawn dispatcher");

        SpgemmService {
            config,
            submit_tx: Mutex::new(Some(submit_tx)),
            dispatcher: Mutex::new(Some(dispatcher)),
            workers: Mutex::new(workers),
            next_id: AtomicU64::new(0),
            in_flight,
            counters,
            shard_obs,
            queue_depth,
            reservoirs,
            metrics,
            tracer,
            started: Instant::now(),
            pool_tasks,
            pool_steals,
            pool_split_depth,
        }
    }

    /// Folds the process-wide parallel-pool counters
    /// ([`rayon::pool_stats`]) into the registry's stable names:
    /// `pool.tasks` and `pool.steals` (monotone counters, delta-synced so
    /// repeated reads never double-count) and `pool.split_depth` (a
    /// high-water gauge of the deepest recursive split). The pool is
    /// shared by every consumer in the process, so these are process
    /// totals, not per-service attributions.
    fn sync_pool_metrics(&self) {
        let s = rayon::pool_stats();
        self.pool_tasks.add(s.tasks.saturating_sub(self.pool_tasks.get()));
        self.pool_steals.add(s.steals.saturating_sub(self.pool_steals.get()));
        self.pool_split_depth.set_max(s.max_split_depth as i64);
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Requests currently queued, batching, or executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Submits a multiply. Returns a [`Ticket`] redeemable for the
    /// response, [`SubmitError::ShapeMismatch`] when the operands do not
    /// compose, [`SubmitError::DeadlineExpired`] when the request's
    /// deadline already passed, [`SubmitError::Full`] when the in-flight
    /// bound (or the low-priority watermark) is hit (backpressure — retry
    /// later), or [`SubmitError::ShuttingDown`] after
    /// [`SpgemmService::shutdown`] began.
    pub fn submit(&self, request: MultiplyRequest) -> Result<Ticket, SubmitError> {
        // Validate at the front door: a malformed pair must never reach
        // (and panic) a worker shard.
        if request.lhs.ncols != request.rhs.nrows {
            return Err(SubmitError::ShapeMismatch {
                lhs_ncols: request.lhs.ncols,
                rhs_nrows: request.rhs.nrows,
            });
        }
        // A masked request's mask must match the product it will filter.
        if let crate::RequestShape::Masked(mask) = &request.shape {
            if mask.nrows != request.lhs.nrows || mask.ncols != request.rhs.ncols {
                return Err(SubmitError::MaskShapeMismatch {
                    mask_nrows: mask.nrows,
                    mask_ncols: mask.ncols,
                    product_nrows: request.lhs.nrows,
                    product_ncols: request.rhs.ncols,
                });
            }
        }
        // QoS: an already-dead request is shed before it takes a queue
        // slot, costs a fingerprint, or wakes the dispatcher.
        if request.deadline.is_some_and(|d| Instant::now() >= d) {
            self.counters.rejected.inc();
            self.counters.deadline_rejected.inc();
            return Err(SubmitError::DeadlineExpired);
        }

        // The mutex guards only the sender clone; fingerprinting and
        // admission run outside it so concurrent clients don't serialize.
        let tx = {
            let guard = self.submit_tx.lock().unwrap();
            guard.as_ref().ok_or(SubmitError::ShuttingDown)?.clone()
        };

        // Low-priority traffic is capped at the watermark (when set), so
        // the slots above it stay reserved for high-priority requests.
        let cap = match (request.priority, self.config.low_priority_watermark) {
            (crate::Priority::Low, Some(mark)) => mark.min(self.config.queue_capacity),
            _ => self.config.queue_capacity,
        };
        let admitted = self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| (n < cap).then_some(n + 1));
        let depth = match admitted {
            Ok(n) => n + 1,
            Err(_) => {
                self.counters.rejected.inc();
                return Err(SubmitError::Full);
            }
        };
        self.queue_depth.set(depth as i64);
        // From here the slot is owned by the guard: any path that drops
        // the submission unserved still releases it.
        let slot = SlotGuard(Arc::clone(&self.in_flight));
        // Counted at admission so `submitted >= completed` holds at every
        // instant a reader can observe (workers only see the request after
        // the send below).
        self.counters.submitted.inc();

        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let fp = fingerprint(&request.lhs);
        let (respond, rx) = mpsc::channel();
        let now = Instant::now();
        let submission = Submission {
            id,
            lhs: request.lhs,
            rhs: request.rhs,
            // A forced plan inherits the request's shape: the request is
            // authoritative about *what* to compute, the plan about *how*.
            plan: request.plan.map(|p| p.with_shape(request.shape.output_shape())),
            shape: request.shape,
            deadline: request.deadline,
            priority: request.priority,
            fingerprint: fp,
            submitted: now,
            received: now,
            flushed: now,
            respond,
            _slot: slot,
        };
        if tx.send(submission).is_err() {
            // Dispatcher is gone (tear-down raced this submit); the
            // dropped submission's SlotGuard returned the slot, and the
            // admission count is rolled back.
            self.counters.submitted.sub(1);
            return Err(SubmitError::ShuttingDown);
        }
        Ok(Ticket { id, rx })
    }

    /// Point-in-time service statistics (callable any time, including
    /// after shutdown). A view over the same obs cells the metrics
    /// registry exports — the two can never disagree.
    pub fn stats(&self) -> ServiceStats {
        self.sync_pool_metrics();
        let completed = self.counters.completed.get();
        let elapsed = self.started.elapsed().as_secs_f64();
        let latency = {
            let guards: Vec<_> = self.reservoirs.iter().map(|r| r.lock().unwrap()).collect();
            LatencySummary::merged(guards.iter().map(|g| &**g))
        };
        ServiceStats {
            submitted: self.counters.submitted.get(),
            rejected: self.counters.rejected.get(),
            deadline_rejected: self.counters.deadline_rejected.get(),
            deadline_dropped: self.counters.deadline_dropped.get(),
            completed,
            elapsed_seconds: elapsed,
            throughput_rps: completed as f64 / elapsed.max(1e-9),
            latency,
            shards: self.shard_obs.iter().map(ShardObs::snapshot).collect(),
        }
    }

    /// The service's span tracer: toggle recording at runtime
    /// (`tracer().set_enabled(true)`) and read the flight recorder.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The service's metrics registry: counters, gauges, and mergeable
    /// latency/queue/execute/batch-size/kernel histograms, all named (see
    /// the crate docs for the taxonomy).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.sync_pool_metrics();
        &self.metrics
    }

    /// Human-readable dump of the flight recorder and metrics snapshot —
    /// the post-incident view. Also printed to stderr if a shard worker
    /// panics (observed at [`SpgemmService::shutdown`] join).
    pub fn dump_flight_recorder(&self) -> String {
        self.sync_pool_metrics();
        export::render_human(&self.tracer.flight_traces(), &self.metrics.snapshot())
    }

    /// The versioned JSON-lines export of recent request traces plus the
    /// metrics snapshot (see [`cw_obs::export`] for the schema).
    pub fn export_jsonl(&self) -> String {
        self.sync_pool_metrics();
        export::export_jsonl(&self.tracer.flight_traces(), &self.metrics.snapshot())
    }

    /// Graceful shutdown: stops accepting work, flushes every pending
    /// batch, serves all in-flight requests, joins the threads, and
    /// returns the final statistics. Idempotent. A crashed worker dumps
    /// the flight recorder to stderr for post-mortem.
    pub fn shutdown(&self) -> ServiceStats {
        // Dropping the submit sender wakes the dispatcher with
        // `Disconnected` once the queue drains; it flushes pending groups
        // and hangs up on the shards, which drain and exit in turn.
        drop(self.submit_tx.lock().unwrap().take());
        if let Some(d) = self.dispatcher.lock().unwrap().take() {
            let _ = d.join();
        }
        for w in self.workers.lock().unwrap().drain(..) {
            if w.join().is_err() {
                eprintln!(
                    "cw-service: shard worker panicked; flight recorder dump:\n{}",
                    self.dump_flight_recorder()
                );
            }
        }
        self.stats()
    }
}

impl Drop for SpgemmService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher: pulls submissions, groups them by lhs fingerprint, and
/// flushes groups to shards when the batching window closes, a group hits
/// `max_batch`, or the service shuts down.
fn dispatcher_loop(
    rx: Receiver<Submission>,
    shard_txs: Vec<Sender<Batch>>,
    window: Duration,
    max_batch: usize,
) {
    let mut pending: HashMap<MatrixFingerprint, Vec<Submission>> = HashMap::new();
    let mut deadline: Option<Instant> = None;
    loop {
        let mut received = match deadline {
            // Nothing pending: sleep until traffic or shutdown.
            None => match rx.recv() {
                Ok(sub) => sub,
                Err(_) => break,
            },
            // Window open: wait only until it closes.
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    flush_all(&mut pending, &shard_txs);
                    deadline = None;
                    continue;
                }
                match rx.recv_timeout(d - now) {
                    Ok(sub) => sub,
                    Err(RecvTimeoutError::Timeout) => {
                        flush_all(&mut pending, &shard_txs);
                        deadline = None;
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        // Stamp when the dispatcher saw it: queue wait ends here, the
        // coalescing-window wait begins (tracing's `queue`/`coalesce`
        // span boundary).
        received.received = Instant::now();

        let fp = received.fingerprint;
        let group = pending.entry(fp).or_default();
        group.push(received);
        if group.len() >= max_batch {
            let items = pending.remove(&fp).expect("group just pushed");
            send_batch(items, &shard_txs);
            if pending.is_empty() {
                deadline = None;
            }
        } else if window.is_zero() {
            flush_all(&mut pending, &shard_txs);
            deadline = None;
        } else if deadline.is_none() {
            deadline = Some(Instant::now() + window);
        }
    }
    // Shutdown: serve whatever was still batching.
    flush_all(&mut pending, &shard_txs);
}

/// Flushes every pending group as one batch each.
fn flush_all(
    pending: &mut HashMap<MatrixFingerprint, Vec<Submission>>,
    shard_txs: &[Sender<Batch>],
) {
    for (_, items) in pending.drain() {
        send_batch(items, shard_txs);
    }
}

/// Routes one same-fingerprint batch to its shard. A send failure means
/// the worker is gone (tear-down); dropping the items disconnects their
/// response channels, which tickets observe as [`crate::ServiceError`].
fn send_batch(mut items: Vec<Submission>, shard_txs: &[Sender<Batch>]) {
    debug_assert!(!items.is_empty());
    let flushed = Instant::now();
    for it in &mut items {
        it.flushed = flushed;
    }
    let shard = items[0].fingerprint.shard_index(shard_txs.len());
    let _ = shard_txs[shard].send(Batch { items });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen;
    use cw_sparse::CsrMatrix;
    use cw_spgemm::spgemm_serial;

    fn arc(m: CsrMatrix) -> Arc<CsrMatrix> {
        Arc::new(m)
    }

    #[test]
    fn single_request_round_trips_and_matches_baseline() {
        let a = arc(gen::grid::poisson2d(10, 10));
        let service = SpgemmService::new(ServiceConfig::default());
        let ticket = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        let resp = ticket.wait().unwrap();
        assert!(resp.product.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        assert!(!resp.report.cache_hit, "first request must prepare");
        assert!(resp.report.latency_seconds >= resp.report.execute_seconds);
        let stats = service.shutdown();
        assert_eq!((stats.submitted, stats.completed, stats.rejected), (1, 1, 0));
        assert_eq!(stats.latency.count, 1);
    }

    #[test]
    fn same_lhs_requests_coalesce_into_one_batch() {
        let a = arc(gen::grid::poisson2d(12, 12));
        // A window far longer than the test makes the shutdown flush the
        // only dispatch trigger, so the batch composition is deterministic
        // even on a stalled CI machine.
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            batch_window: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap())
            .collect();
        let stats = service.shutdown();
        for t in tickets {
            let resp = t.wait().unwrap();
            assert_eq!(resp.report.batch_size, 4, "all four must ride one batch");
        }
        assert_eq!(stats.coalesced_batches(), 1);
        assert_eq!(stats.max_batch_size(), 4);
        let cache = stats.total_cache();
        assert_eq!(cache.misses, 1, "one preparation");
        assert_eq!(cache.hits, 3, "three cache hits");
    }

    #[test]
    fn zero_window_dispatches_each_submission_alone() {
        let a = arc(gen::grid::poisson2d(9, 9));
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            batch_window: Duration::ZERO,
            ..ServiceConfig::default()
        });
        for _ in 0..3 {
            let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
            let resp = t.wait().unwrap();
            assert_eq!(resp.report.batch_size, 1);
        }
        let stats = service.shutdown();
        assert_eq!(stats.coalesced_batches(), 0);
        // Coalescing is off but the shard cache still amortizes.
        assert_eq!(stats.total_cache().hits, 2);
    }

    #[test]
    fn max_batch_flushes_a_group_early() {
        let a = arc(gen::grid::poisson2d(8, 8));
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            max_batch: 2,
            // Window long enough that only max_batch can be the trigger.
            batch_window: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let t1 = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        let t2 = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        assert_eq!(t1.wait().unwrap().report.batch_size, 2);
        assert_eq!(t2.wait().unwrap().report.batch_size, 2);
        service.shutdown();
    }

    #[test]
    fn forced_plan_requests_execute_that_plan() {
        let a = arc(gen::grid::poisson2d(9, 9));
        let plan = cw_engine::Plan {
            clustering: cw_engine::ClusteringStrategy::Fixed(4),
            kernel: cw_engine::KernelChoice::ClusterWise,
            ..cw_engine::Plan::baseline()
        };
        let service = SpgemmService::new(ServiceConfig::default());
        let t = service
            .submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a)).with_plan(plan))
            .unwrap();
        let resp = t.wait().unwrap();
        assert_eq!(resp.report.execution.plan.knobs(), plan.knobs());
        assert!(resp.product.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        service.shutdown();
    }

    #[test]
    fn pinned_backend_serves_every_request_on_it() {
        let a = arc(gen::grid::poisson2d(11, 11));
        let service = SpgemmService::new(ServiceConfig {
            shards: 2,
            backend: Some(BackendId::SerialReference),
            ..ServiceConfig::default()
        });
        for _ in 0..3 {
            let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
            let resp = t.wait().unwrap();
            assert_eq!(resp.report.backend, BackendId::SerialReference);
            assert_eq!(resp.report.execution.plan.backend, BackendId::SerialReference);
            assert!(resp.product.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        }
        service.shutdown();

        // The default config stays on the planner's choice: parallel-cpu.
        let service = SpgemmService::new(ServiceConfig::default());
        let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        assert_eq!(t.wait().unwrap().report.backend, BackendId::ParallelCpu);
        service.shutdown();
    }

    #[test]
    fn shape_mismatch_is_rejected_at_submit_and_shards_survive() {
        let a = arc(gen::grid::poisson2d(10, 10)); // 100 × 100
        let bad = arc(gen::grid::poisson2d(5, 5)); // 25 × 25
        let service = SpgemmService::new(ServiceConfig::default());
        let err =
            service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&bad))).unwrap_err();
        assert_eq!(err, SubmitError::ShapeMismatch { lhs_ncols: 100, rhs_nrows: 25 });
        assert_eq!(service.in_flight(), 0, "rejected request must not hold a queue slot");
        // The shards never saw the malformed pair and keep serving.
        let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        assert!(t.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!((stats.submitted, stats.completed), (1, 1));
    }

    #[test]
    fn expired_deadline_is_shed_before_taking_a_slot() {
        let a = arc(gen::grid::poisson2d(8, 8));
        let service = SpgemmService::new(ServiceConfig::default());
        let dead = Instant::now() - Duration::from_millis(1);
        let err = service
            .submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a)).with_deadline_at(dead))
            .unwrap_err();
        assert_eq!(err, SubmitError::DeadlineExpired);
        assert_eq!(service.in_flight(), 0, "shed request must not hold a queue slot");
        // A generous deadline sails through and is served normally.
        let t = service
            .submit(
                MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))
                    .with_deadline_in(Duration::from_secs(300)),
            )
            .unwrap();
        let resp = t.wait().unwrap();
        let slack = resp.report.deadline_slack_seconds.expect("deadline was set");
        assert!(slack > 0.0 && slack < 300.0, "slack {slack}");
        let stats = service.shutdown();
        assert_eq!((stats.rejected, stats.deadline_rejected, stats.completed), (1, 1, 1));
        assert_eq!(stats.deadline_dropped, 0);
        let snap = service.metrics().snapshot();
        assert_eq!(snap.counter("requests_deadline_rejected"), Some(1));
    }

    #[test]
    fn queued_request_whose_deadline_passes_is_dropped_by_the_worker() {
        let a = arc(gen::grid::poisson2d(8, 8));
        // A 60 s window means submissions sit in the dispatcher until the
        // shutdown flush — deterministically long enough for a short
        // deadline to expire while queued.
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            batch_window: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let doomed = service
            .submit(
                MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))
                    .with_deadline_in(Duration::from_millis(20)),
            )
            .unwrap();
        let healthy = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let stats = service.shutdown();
        assert_eq!(doomed.wait().unwrap_err(), crate::ServiceError::Disconnected);
        assert!(healthy.wait().is_ok(), "undeadlined companion still serves");
        assert_eq!((stats.deadline_dropped, stats.completed), (1, 1));
        assert_eq!(service.in_flight(), 0, "dropped request released its slot");
    }

    #[test]
    fn low_priority_is_shed_at_the_watermark() {
        let a = arc(gen::grid::poisson2d(8, 8));
        // Capacity 4, watermark 1: with one request parked in the
        // dispatcher (60 s window), low-priority traffic is at its cap
        // while high-priority still has three slots.
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            queue_capacity: 4,
            low_priority_watermark: Some(1),
            batch_window: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let parked = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        let err = service
            .submit(
                MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))
                    .with_priority(crate::Priority::Low),
            )
            .unwrap_err();
        assert_eq!(err, SubmitError::Full, "low priority sheds at the watermark");
        let high = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        let stats = service.shutdown();
        assert!(parked.wait().is_ok());
        let resp = high.wait().unwrap();
        assert_eq!(resp.report.priority, crate::Priority::High);
        assert_eq!((stats.rejected, stats.completed), (1, 2));
        assert_eq!(stats.deadline_rejected, 0, "watermark shed is not a deadline shed");
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let a = arc(gen::grid::poisson2d(6, 6));
        let service = SpgemmService::new(ServiceConfig::default());
        service.shutdown();
        let err = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        // Shutdown is idempotent.
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn tracing_disabled_by_default_records_nothing() {
        let a = arc(gen::grid::poisson2d(8, 8));
        let service = SpgemmService::new(ServiceConfig::default());
        let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        t.wait().unwrap();
        service.shutdown();
        assert!(!service.tracer().enabled());
        assert!(service.tracer().flight_traces().is_empty());
        assert!(service.tracer().ambient_spans().is_empty());
        // Metrics are always on regardless of tracing.
        assert_eq!(service.metrics().snapshot().counter("requests_completed"), Some(1));
    }

    #[test]
    fn traced_requests_nest_and_reconcile_with_reports() {
        let a = arc(gen::grid::poisson2d(10, 10));
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            batch_window: Duration::ZERO,
            tracing: true,
            ..ServiceConfig::default()
        });
        let mut reports = Vec::new();
        for _ in 0..3 {
            let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
            reports.push(t.wait().unwrap().report);
        }
        service.shutdown();

        let traces = service.tracer().flight_traces();
        assert_eq!(traces.len(), 3);
        for report in &reports {
            let tr = traces
                .iter()
                .find(|t| t.trace_id == report.request_id)
                .expect("every request leaves a trace");
            assert!(tr.nests_correctly(), "spans must nest: {tr:?}");
            for name in
                ["request", "queue", "coalesce", "dispatch", "serve", "plan", "prepare", "execute"]
            {
                assert!(tr.span(name).is_some(), "missing span {name} in {tr:?}");
            }
            // The pre-execution spans tile the reported queue wait.
            let waits: f64 = ["queue", "coalesce", "dispatch"]
                .iter()
                .map(|n| tr.span(n).unwrap().duration_seconds())
                .sum();
            assert!(
                (waits - report.queue_seconds).abs() < 1e-5,
                "queue+coalesce+dispatch ({waits}s) must reconcile with queue_seconds ({}s)",
                report.queue_seconds
            );
            // The engine's kernel span reconciles with the report, and the
            // serve span covers it.
            let execute = tr.span("execute").unwrap();
            let kernel = report.execution.timings.kernel_seconds;
            assert!((execute.duration_seconds() - kernel).abs() < 1e-5);
            let serve = tr.span("serve").unwrap();
            assert!(serve.start_ns <= execute.start_ns && execute.end_ns <= serve.end_ns);
            // The root closes after the latency measurement.
            let root = tr.root().unwrap();
            assert!(root.duration_seconds() + 1e-6 >= report.latency_seconds);
        }
        // Cache hits (requests 2 and 3) still show the full stage chain,
        // with zero-length plan/prepare.
        let hit = traces.iter().find(|t| t.trace_id == reports[1].request_id).unwrap();
        assert_eq!(hit.span("prepare").unwrap().duration_ns(), 0);
    }

    #[test]
    fn metrics_registry_mirrors_service_stats() {
        let a = arc(gen::grid::poisson2d(12, 12));
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            batch_window: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap())
            .collect();
        let stats = service.shutdown();
        for t in tickets {
            t.wait().unwrap();
        }

        let snap = service.metrics().snapshot();
        assert_eq!(snap.counter("requests_submitted"), Some(stats.submitted));
        assert_eq!(snap.counter("requests_completed"), Some(stats.completed));
        assert_eq!(snap.counter("shard0.coalesced_batches"), Some(stats.coalesced_batches()));
        assert_eq!(
            snap.counter("shard0.cache.misses"),
            Some(stats.shards[0].cache.misses),
            "registry and ShardStats are views over the same cells"
        );
        // ShardStats folds within-batch reuses into hits; the registry
        // keeps the raw split.
        assert_eq!(
            snap.counter("shard0.cache.hits").unwrap() + snap.counter("shard0.reuse_hits").unwrap(),
            stats.shards[0].cache.hits
        );
        assert_eq!(snap.gauge("shard0.max_batch_size"), Some(4));
        let latency = snap.histogram("latency_seconds").expect("latency histogram");
        assert_eq!(latency.count, stats.completed);
        assert!(latency.quantile(0.5) > 0.0);
        // Kernel time was recorded for the backend that actually served.
        let kernels: u64 = BackendId::ALL
            .iter()
            .filter_map(|b| snap.histogram(&format!("kernel_seconds.{}", b.name())))
            .map(|h| h.count)
            .sum();
        assert_eq!(kernels, stats.completed);
        // The JSON-lines export is non-empty and versioned even without
        // tracing (metrics line only).
        assert!(service.export_jsonl().starts_with("{\"schema_version\":"));
        assert!(service.dump_flight_recorder().contains("latency_seconds"));
        // Parallel-pool telemetry is registered under its stable names and
        // lands in the JSONL export. The cells mirror process-wide pool
        // totals (shared across every test in this binary), so only
        // presence — not magnitude — is pinned here.
        assert!(snap.counter("pool.tasks").is_some());
        assert!(snap.counter("pool.steals").is_some());
        assert!(snap.gauge("pool.split_depth").is_some());
        let jsonl = service.export_jsonl();
        for name in ["pool.tasks", "pool.steals", "pool.split_depth"] {
            assert!(jsonl.contains(name), "JSONL export missing {name}");
        }
    }

    #[test]
    fn pool_width_pin_is_bit_identical_across_widths() {
        let a = arc(gen::er::erdos_renyi(140, 6, 5));
        let products: Vec<_> = [Some(1), Some(2), None]
            .into_iter()
            .map(|pool_width| {
                let service = SpgemmService::new(ServiceConfig {
                    shards: 1,
                    pool_width,
                    ..ServiceConfig::default()
                });
                let t =
                    service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
                let resp = t.wait().unwrap();
                service.shutdown();
                resp.product
            })
            .collect();
        let serial = spgemm_serial(&a, &a);
        for (i, p) in products.iter().enumerate() {
            assert_eq!(p.row_ptr, serial.row_ptr, "width config #{i}");
            assert_eq!(p.col_idx, serial.col_idx, "width config #{i}");
            assert!(
                p.vals.iter().zip(&serial.vals).all(|(x, y)| x.to_bits() == y.to_bits()),
                "width config #{i}: values must be bit-identical to the serial reference"
            );
        }
    }

    #[test]
    fn service_is_shareable_across_client_threads() {
        let service = Arc::new(SpgemmService::new(ServiceConfig {
            shards: 2,
            batch_window: Duration::from_millis(10),
            ..ServiceConfig::default()
        }));
        let mats: Vec<Arc<CsrMatrix>> =
            (0..4).map(|s| arc(gen::er::erdos_renyi(80, 4, s))).collect();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let service = Arc::clone(&service);
                let a = Arc::clone(&mats[i]);
                std::thread::spawn(move || {
                    let t = service
                        .submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a)))
                        .unwrap();
                    let resp = t.wait().unwrap();
                    assert!(resp.product.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 4);
    }
}
