//! The service: submission queue → batching dispatcher → worker shards.

use crate::request::{MultiplyRequest, SubmitError, Ticket};
use crate::shard::{worker_loop, Batch, Completion, SlotGuard, Submission};
use crate::stats::{LatencyReservoir, LatencySummary, ServiceStats, ShardStats};
use cw_engine::{
    BackendId, CacheBudget, CalibrationProfile, Engine, PlanCache, Planner, PlanningPolicy,
    DEFAULT_CACHE_CAPACITY,
};
use cw_sparse::{fingerprint, MatrixFingerprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one [`SpgemmService`] instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards, each with a private engine + plan cache. Requests
    /// route to shards by lhs fingerprint, so shard count also bounds how
    /// many distinct operands prepare concurrently.
    pub shards: usize,
    /// Maximum requests in flight (queued + batching + executing); beyond
    /// it [`SpgemmService::submit`] fails fast with [`SubmitError::Full`].
    pub queue_capacity: usize,
    /// How long the dispatcher holds the first pending request open for
    /// companions before flushing (zero = dispatch immediately, no
    /// coalescing across submissions).
    pub batch_window: Duration,
    /// A same-fingerprint group reaching this size flushes without waiting
    /// out the window.
    pub max_batch: usize,
    /// Per-shard plan-cache bound.
    pub cache_budget: CacheBudget,
    /// Seed for each shard's planner (identical seeds ⇒ identical plans
    /// and bit-identical results across shards and vs a direct engine).
    pub seed: u64,
    /// Planning policy for each shard's planner: amortization horizon,
    /// preprocessing budget, and whether the per-shard feedback loop may
    /// re-plan operands from observed timings.
    pub policy: PlanningPolicy,
    /// Execution-backend selection for the shards. `None` (the default)
    /// lets each shard's planner pick per operand — the reference
    /// [`BackendId::ParallelCpu`] path on first sight, with alternative
    /// backends adopted through execution feedback. `Some(id)` pins every
    /// shard's planner to that backend (oracle deployments, ablations,
    /// machines where one backend is known best); per-request forced plans
    /// still override it.
    pub backend: Option<BackendId>,
    /// Optional fitted [`CalibrationProfile`] installed into every shard's
    /// planner ([`Planner::with_profile`]): first-sight plan ranking then
    /// uses this machine's measured cost constants and per-backend kernel
    /// scales instead of the hand-tuned defaults. `None` = uncalibrated
    /// planning (the per-shard feedback loop still corrects online).
    pub profile: Option<CalibrationProfile>,
    /// Latency reservoir size for p50/p99 estimation.
    pub reservoir_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            queue_capacity: 256,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            cache_budget: CacheBudget::entries(DEFAULT_CACHE_CAPACITY),
            seed: Planner::default().seed,
            policy: PlanningPolicy::default(),
            backend: None,
            profile: None,
            reservoir_capacity: 1024,
        }
    }
}

/// Lifetime request counters shared between the front door and workers.
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: Arc<AtomicU64>,
}

/// A threaded SpGEMM serving layer over [`cw_engine::Engine`].
///
/// See the crate docs for the architecture. The service is `Sync`: share
/// it behind an `Arc` and submit from any number of client threads.
/// Dropping it (or calling [`SpgemmService::shutdown`]) drains in-flight
/// requests gracefully before joining the worker threads.
///
/// ```
/// use cw_service::{MultiplyRequest, ServiceConfig, SpgemmService};
/// use std::sync::Arc;
///
/// let a = Arc::new(cw_sparse::gen::grid::poisson2d(10, 10));
/// let service = SpgemmService::new(ServiceConfig { shards: 1, ..ServiceConfig::default() });
///
/// // Same operand twice: the second request rides the shard's plan cache
/// // (or the same coalesced batch) and skips preprocessing.
/// let t1 = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
/// let t2 = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
/// let (r1, r2) = (t1.wait().unwrap(), t2.wait().unwrap());
/// assert!(r1.product.numerically_eq(&r2.product, 0.0));
///
/// let stats = service.shutdown();
/// assert_eq!(stats.completed, 2);
/// assert_eq!(stats.total_cache().hits, 1);
/// ```
#[derive(Debug)]
pub struct SpgemmService {
    config: ServiceConfig,
    submit_tx: Mutex<Option<Sender<Submission>>>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    in_flight: Arc<AtomicUsize>,
    counters: Counters,
    shard_slots: Vec<Arc<Mutex<ShardStats>>>,
    // One reservoir per shard: the owning worker's lock is uncontended on
    // the hot path (stats() readers aside); merged for service quantiles.
    reservoirs: Vec<Arc<Mutex<LatencyReservoir>>>,
    started: Instant,
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counters")
            .field("submitted", &self.submitted.load(Ordering::SeqCst))
            .field("rejected", &self.rejected.load(Ordering::SeqCst))
            .field("completed", &self.completed.load(Ordering::SeqCst))
            .finish()
    }
}

impl SpgemmService {
    /// Spawns the dispatcher and `config.shards` worker threads.
    /// Degenerate knobs are normalized up front (`shards`, `max_batch`,
    /// and `queue_capacity` floors of 1), so [`SpgemmService::config`]
    /// always reports what actually runs and a zero capacity cannot
    /// produce a service that rejects everything forever.
    pub fn new(mut config: ServiceConfig) -> SpgemmService {
        config.shards = config.shards.max(1);
        config.max_batch = config.max_batch.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        let shards = config.shards;
        let completed = Arc::new(AtomicU64::new(0));
        let in_flight = Arc::new(AtomicUsize::new(0));

        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_slots = Vec::with_capacity(shards);
        let mut reservoirs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel::<Batch>();
            let slot = Arc::new(Mutex::new(ShardStats { shard, ..ShardStats::default() }));
            let reservoir = Arc::new(Mutex::new(LatencyReservoir::new(config.reservoir_capacity)));
            let base = match config.profile.clone() {
                Some(profile) => Planner::with_profile(config.seed, profile),
                None => Planner::with_seed(config.seed),
            };
            let planner = Planner { forced_backend: config.backend, policy: config.policy, ..base };
            let engine = Engine::with_cache(planner, PlanCache::with_budget(config.cache_budget));
            let completion = Completion { completed: Arc::clone(&completed) };
            let (slot_c, reservoir_c) = (Arc::clone(&slot), Arc::clone(&reservoir));
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cw-service-shard-{shard}"))
                    .spawn(move || worker_loop(shard, rx, engine, slot_c, reservoir_c, completion))
                    .expect("spawn shard worker"),
            );
            shard_txs.push(tx);
            shard_slots.push(slot);
            reservoirs.push(reservoir);
        }

        let (submit_tx, submit_rx) = mpsc::channel::<Submission>();
        let (window, max_batch) = (config.batch_window, config.max_batch);
        let dispatcher = std::thread::Builder::new()
            .name("cw-service-dispatcher".to_string())
            .spawn(move || dispatcher_loop(submit_rx, shard_txs, window, max_batch))
            .expect("spawn dispatcher");

        SpgemmService {
            config,
            submit_tx: Mutex::new(Some(submit_tx)),
            dispatcher: Mutex::new(Some(dispatcher)),
            workers: Mutex::new(workers),
            next_id: AtomicU64::new(0),
            in_flight,
            counters: Counters {
                submitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                completed,
            },
            shard_slots,
            reservoirs,
            started: Instant::now(),
        }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Requests currently queued, batching, or executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Submits a multiply. Returns a [`Ticket`] redeemable for the
    /// response, [`SubmitError::ShapeMismatch`] when the operands do not
    /// compose, [`SubmitError::Full`] when the in-flight bound is hit
    /// (backpressure — retry later), or [`SubmitError::ShuttingDown`]
    /// after [`SpgemmService::shutdown`] began.
    pub fn submit(&self, request: MultiplyRequest) -> Result<Ticket, SubmitError> {
        // Validate at the front door: a malformed pair must never reach
        // (and panic) a worker shard.
        if request.lhs.ncols != request.rhs.nrows {
            return Err(SubmitError::ShapeMismatch {
                lhs_ncols: request.lhs.ncols,
                rhs_nrows: request.rhs.nrows,
            });
        }

        // The mutex guards only the sender clone; fingerprinting and
        // admission run outside it so concurrent clients don't serialize.
        let tx = {
            let guard = self.submit_tx.lock().unwrap();
            guard.as_ref().ok_or(SubmitError::ShuttingDown)?.clone()
        };

        let cap = self.config.queue_capacity;
        let admitted = self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| (n < cap).then_some(n + 1));
        if admitted.is_err() {
            self.counters.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(SubmitError::Full);
        }
        // From here the slot is owned by the guard: any path that drops
        // the submission unserved still releases it.
        let slot = SlotGuard(Arc::clone(&self.in_flight));
        // Counted at admission so `submitted >= completed` holds at every
        // instant a reader can observe (workers only see the request after
        // the send below).
        self.counters.submitted.fetch_add(1, Ordering::SeqCst);

        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let fp = fingerprint(&request.lhs);
        let (respond, rx) = mpsc::channel();
        let submission = Submission {
            id,
            lhs: request.lhs,
            rhs: request.rhs,
            plan: request.plan,
            fingerprint: fp,
            submitted: Instant::now(),
            respond,
            _slot: slot,
        };
        if tx.send(submission).is_err() {
            // Dispatcher is gone (tear-down raced this submit); the
            // dropped submission's SlotGuard returned the slot, and the
            // admission count is rolled back.
            self.counters.submitted.fetch_sub(1, Ordering::SeqCst);
            return Err(SubmitError::ShuttingDown);
        }
        Ok(Ticket { id, rx })
    }

    /// Point-in-time service statistics (callable any time, including
    /// after shutdown).
    pub fn stats(&self) -> ServiceStats {
        let completed = self.counters.completed.load(Ordering::SeqCst);
        let elapsed = self.started.elapsed().as_secs_f64();
        let latency = {
            let guards: Vec<_> = self.reservoirs.iter().map(|r| r.lock().unwrap()).collect();
            LatencySummary::merged(guards.iter().map(|g| &**g))
        };
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::SeqCst),
            rejected: self.counters.rejected.load(Ordering::SeqCst),
            completed,
            elapsed_seconds: elapsed,
            throughput_rps: completed as f64 / elapsed.max(1e-9),
            latency,
            shards: self.shard_slots.iter().map(|s| s.lock().unwrap().clone()).collect(),
        }
    }

    /// Graceful shutdown: stops accepting work, flushes every pending
    /// batch, serves all in-flight requests, joins the threads, and
    /// returns the final statistics. Idempotent.
    pub fn shutdown(&self) -> ServiceStats {
        // Dropping the submit sender wakes the dispatcher with
        // `Disconnected` once the queue drains; it flushes pending groups
        // and hangs up on the shards, which drain and exit in turn.
        drop(self.submit_tx.lock().unwrap().take());
        if let Some(d) = self.dispatcher.lock().unwrap().take() {
            let _ = d.join();
        }
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl Drop for SpgemmService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher: pulls submissions, groups them by lhs fingerprint, and
/// flushes groups to shards when the batching window closes, a group hits
/// `max_batch`, or the service shuts down.
fn dispatcher_loop(
    rx: Receiver<Submission>,
    shard_txs: Vec<Sender<Batch>>,
    window: Duration,
    max_batch: usize,
) {
    let mut pending: HashMap<MatrixFingerprint, Vec<Submission>> = HashMap::new();
    let mut deadline: Option<Instant> = None;
    loop {
        let received = match deadline {
            // Nothing pending: sleep until traffic or shutdown.
            None => match rx.recv() {
                Ok(sub) => sub,
                Err(_) => break,
            },
            // Window open: wait only until it closes.
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    flush_all(&mut pending, &shard_txs);
                    deadline = None;
                    continue;
                }
                match rx.recv_timeout(d - now) {
                    Ok(sub) => sub,
                    Err(RecvTimeoutError::Timeout) => {
                        flush_all(&mut pending, &shard_txs);
                        deadline = None;
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };

        let fp = received.fingerprint;
        let group = pending.entry(fp).or_default();
        group.push(received);
        if group.len() >= max_batch {
            let items = pending.remove(&fp).expect("group just pushed");
            send_batch(items, &shard_txs);
            if pending.is_empty() {
                deadline = None;
            }
        } else if window.is_zero() {
            flush_all(&mut pending, &shard_txs);
            deadline = None;
        } else if deadline.is_none() {
            deadline = Some(Instant::now() + window);
        }
    }
    // Shutdown: serve whatever was still batching.
    flush_all(&mut pending, &shard_txs);
}

/// Flushes every pending group as one batch each.
fn flush_all(
    pending: &mut HashMap<MatrixFingerprint, Vec<Submission>>,
    shard_txs: &[Sender<Batch>],
) {
    for (_, items) in pending.drain() {
        send_batch(items, shard_txs);
    }
}

/// Routes one same-fingerprint batch to its shard. A send failure means
/// the worker is gone (tear-down); dropping the items disconnects their
/// response channels, which tickets observe as [`crate::ServiceError`].
fn send_batch(items: Vec<Submission>, shard_txs: &[Sender<Batch>]) {
    debug_assert!(!items.is_empty());
    let shard = items[0].fingerprint.shard_index(shard_txs.len());
    let _ = shard_txs[shard].send(Batch { items });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen;
    use cw_sparse::CsrMatrix;
    use cw_spgemm::spgemm_serial;

    fn arc(m: CsrMatrix) -> Arc<CsrMatrix> {
        Arc::new(m)
    }

    #[test]
    fn single_request_round_trips_and_matches_baseline() {
        let a = arc(gen::grid::poisson2d(10, 10));
        let service = SpgemmService::new(ServiceConfig::default());
        let ticket = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        let resp = ticket.wait().unwrap();
        assert!(resp.product.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        assert!(!resp.report.cache_hit, "first request must prepare");
        assert!(resp.report.latency_seconds >= resp.report.execute_seconds);
        let stats = service.shutdown();
        assert_eq!((stats.submitted, stats.completed, stats.rejected), (1, 1, 0));
        assert_eq!(stats.latency.count, 1);
    }

    #[test]
    fn same_lhs_requests_coalesce_into_one_batch() {
        let a = arc(gen::grid::poisson2d(12, 12));
        // A window far longer than the test makes the shutdown flush the
        // only dispatch trigger, so the batch composition is deterministic
        // even on a stalled CI machine.
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            batch_window: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap())
            .collect();
        let stats = service.shutdown();
        for t in tickets {
            let resp = t.wait().unwrap();
            assert_eq!(resp.report.batch_size, 4, "all four must ride one batch");
        }
        assert_eq!(stats.coalesced_batches(), 1);
        assert_eq!(stats.max_batch_size(), 4);
        let cache = stats.total_cache();
        assert_eq!(cache.misses, 1, "one preparation");
        assert_eq!(cache.hits, 3, "three cache hits");
    }

    #[test]
    fn zero_window_dispatches_each_submission_alone() {
        let a = arc(gen::grid::poisson2d(9, 9));
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            batch_window: Duration::ZERO,
            ..ServiceConfig::default()
        });
        for _ in 0..3 {
            let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
            let resp = t.wait().unwrap();
            assert_eq!(resp.report.batch_size, 1);
        }
        let stats = service.shutdown();
        assert_eq!(stats.coalesced_batches(), 0);
        // Coalescing is off but the shard cache still amortizes.
        assert_eq!(stats.total_cache().hits, 2);
    }

    #[test]
    fn max_batch_flushes_a_group_early() {
        let a = arc(gen::grid::poisson2d(8, 8));
        let service = SpgemmService::new(ServiceConfig {
            shards: 1,
            max_batch: 2,
            // Window long enough that only max_batch can be the trigger.
            batch_window: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        let t1 = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        let t2 = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        assert_eq!(t1.wait().unwrap().report.batch_size, 2);
        assert_eq!(t2.wait().unwrap().report.batch_size, 2);
        service.shutdown();
    }

    #[test]
    fn forced_plan_requests_execute_that_plan() {
        let a = arc(gen::grid::poisson2d(9, 9));
        let plan = cw_engine::Plan {
            clustering: cw_engine::ClusteringStrategy::Fixed(4),
            kernel: cw_engine::KernelChoice::ClusterWise,
            ..cw_engine::Plan::baseline()
        };
        let service = SpgemmService::new(ServiceConfig::default());
        let t = service
            .submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a)).with_plan(plan))
            .unwrap();
        let resp = t.wait().unwrap();
        assert_eq!(resp.report.execution.plan.knobs(), plan.knobs());
        assert!(resp.product.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        service.shutdown();
    }

    #[test]
    fn pinned_backend_serves_every_request_on_it() {
        let a = arc(gen::grid::poisson2d(11, 11));
        let service = SpgemmService::new(ServiceConfig {
            shards: 2,
            backend: Some(BackendId::SerialReference),
            ..ServiceConfig::default()
        });
        for _ in 0..3 {
            let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
            let resp = t.wait().unwrap();
            assert_eq!(resp.report.backend, BackendId::SerialReference);
            assert_eq!(resp.report.execution.plan.backend, BackendId::SerialReference);
            assert!(resp.product.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        }
        service.shutdown();

        // The default config stays on the planner's choice: parallel-cpu.
        let service = SpgemmService::new(ServiceConfig::default());
        let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        assert_eq!(t.wait().unwrap().report.backend, BackendId::ParallelCpu);
        service.shutdown();
    }

    #[test]
    fn shape_mismatch_is_rejected_at_submit_and_shards_survive() {
        let a = arc(gen::grid::poisson2d(10, 10)); // 100 × 100
        let bad = arc(gen::grid::poisson2d(5, 5)); // 25 × 25
        let service = SpgemmService::new(ServiceConfig::default());
        let err =
            service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&bad))).unwrap_err();
        assert_eq!(err, SubmitError::ShapeMismatch { lhs_ncols: 100, rhs_nrows: 25 });
        assert_eq!(service.in_flight(), 0, "rejected request must not hold a queue slot");
        // The shards never saw the malformed pair and keep serving.
        let t = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap();
        assert!(t.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!((stats.submitted, stats.completed), (1, 1));
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let a = arc(gen::grid::poisson2d(6, 6));
        let service = SpgemmService::new(ServiceConfig::default());
        service.shutdown();
        let err = service.submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a))).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        // Shutdown is idempotent.
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn service_is_shareable_across_client_threads() {
        let service = Arc::new(SpgemmService::new(ServiceConfig {
            shards: 2,
            batch_window: Duration::from_millis(10),
            ..ServiceConfig::default()
        }));
        let mats: Vec<Arc<CsrMatrix>> =
            (0..4).map(|s| arc(gen::er::erdos_renyi(80, 4, s))).collect();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let service = Arc::clone(&service);
                let a = Arc::clone(&mats[i]);
                std::thread::spawn(move || {
                    let t = service
                        .submit(MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a)))
                        .unwrap();
                    let resp = t.wait().unwrap();
                    assert!(resp.product.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 4);
    }
}
