//! Service-level statistics: streaming latency quantiles and per-shard
//! counters.

use cw_engine::CacheStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fixed-size uniform latency sample (Vitter's Algorithm R) over an
/// unbounded request stream, in `O(capacity)` memory. The internal RNG is
/// seeded, not OS-entropy, so a given record sequence reproduces exactly.
/// Each worker shard owns one (no cross-shard locking on the hot path);
/// [`LatencySummary::merged`] combines them for service-wide quantiles.
#[derive(Debug, Clone)]
pub struct LatencyReservoir {
    capacity: usize,
    seen: u64,
    rng: SmallRng,
    samples: Vec<f64>,
}

impl LatencyReservoir {
    /// Reservoir keeping at most `capacity` samples (`0` keeps none but
    /// still counts observations), with the default seed.
    pub fn new(capacity: usize) -> LatencyReservoir {
        LatencyReservoir::with_seed(capacity, 0x5EED_1E55_C0FF_EE00)
    }

    /// Reservoir with an explicit RNG seed. Reservoirs that sample *the
    /// same* stream must use *different* seeds or their eviction choices
    /// correlate perfectly — the service derives one seed per shard (see
    /// [`crate::SpgemmService`]) so the merged quantiles do not inherit a
    /// shared eviction pattern.
    pub fn with_seed(capacity: usize, seed: u64) -> LatencyReservoir {
        LatencyReservoir {
            capacity,
            seen: 0,
            rng: SmallRng::seed_from_u64(seed),
            samples: Vec::with_capacity(capacity.min(1024)),
        }
    }

    /// Observes one latency (seconds).
    pub fn record(&mut self, seconds: f64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(seconds);
            return;
        }
        if self.capacity == 0 {
            return;
        }
        // Replace a random resident with probability capacity/seen.
        let j = self.rng.gen_range(0..self.seen);
        if (j as usize) < self.capacity {
            self.samples[j as usize] = seconds;
        }
    }

    /// Total observations (including ones not resident in the sample).
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Resident samples (unordered).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Summarizes the current sample into quantiles.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::merged([self])
    }
}

/// Latency quantiles over the sampled request stream, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Observations recorded (sampled + unsampled).
    pub count: u64,
    /// Median end-to-end latency.
    pub p50_seconds: f64,
    /// 90th-percentile latency.
    pub p90_seconds: f64,
    /// 99th-percentile latency.
    pub p99_seconds: f64,
    /// Worst resident sample.
    pub max_seconds: f64,
}

impl LatencySummary {
    /// Quantiles over the union of several reservoirs' samples, each
    /// sample weighted by how many observations it stands for
    /// (`seen / resident`) — a capped reservoir on a hot shard represents
    /// far more traffic per sample than an uncapped one on a cold shard,
    /// and unweighted pooling would bias service-wide quantiles toward
    /// low-traffic shards. `count` sums every observation, resident or
    /// not. How the service aggregates its per-shard reservoirs.
    pub fn merged<'a>(
        reservoirs: impl IntoIterator<Item = &'a LatencyReservoir>,
    ) -> LatencySummary {
        let mut weighted: Vec<(f64, f64)> = Vec::new();
        let mut count = 0;
        for r in reservoirs {
            count += r.count();
            let resident = r.samples().len();
            if resident > 0 {
                let w = r.count() as f64 / resident as f64;
                weighted.extend(r.samples().iter().map(|&s| (s, w)));
            }
        }
        if weighted.is_empty() {
            return LatencySummary { count, ..LatencySummary::default() };
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total_weight: f64 = weighted.iter().map(|(_, w)| w).sum();
        let q = |frac: f64| {
            let target = frac * total_weight;
            let mut acc = 0.0;
            for &(v, w) in &weighted {
                acc += w;
                if acc >= target {
                    return v;
                }
            }
            weighted.last().unwrap().0
        };
        LatencySummary {
            count,
            p50_seconds: q(0.50),
            p90_seconds: q(0.90),
            p99_seconds: q(0.99),
            max_seconds: weighted.last().unwrap().0,
        }
    }
}

/// Counters for one worker shard.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Batches executed.
    pub batches: u64,
    /// Batches holding more than one request (coalescing actually paid).
    pub coalesced_batches: u64,
    /// Requests served.
    pub requests: u64,
    /// Largest batch served.
    pub max_batch_size: usize,
    /// Requests served from an already-prepared operand: the shard
    /// engine's plan-cache counters, with within-batch operand reuses
    /// counted as additional hits.
    pub cache: CacheStats,
    /// Prepared operands currently resident in the shard cache.
    pub cached_operands: usize,
    /// Resident bytes in the shard cache.
    pub cached_bytes: usize,
    /// Plan switches the shard engine's feedback loop has made (observed
    /// timings contradicted the cost model strongly enough to re-plan).
    pub replans: u64,
    /// Operand fingerprints the shard engine's feedback store tracks.
    pub tracked_operands: usize,
}

/// Point-in-time snapshot of a running (or drained) service.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected at submission ([`crate::SubmitError::Full`] or
    /// [`crate::SubmitError::DeadlineExpired`]).
    pub rejected: u64,
    /// Rejections whose cause was an already-expired deadline (a subset
    /// of `rejected`).
    pub deadline_rejected: u64,
    /// Accepted requests a worker dropped with
    /// [`crate::ServiceError::Disconnected`] because their deadline
    /// passed while they queued.
    pub deadline_dropped: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Seconds since the service started.
    pub elapsed_seconds: f64,
    /// Completed requests per second of service lifetime.
    pub throughput_rps: f64,
    /// End-to-end latency quantiles from the streaming reservoir.
    pub latency: LatencySummary,
    /// Per-shard batch/cache counters.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Cache counters summed across every shard.
    pub fn total_cache(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.hits += s.cache.hits;
            total.misses += s.cache.misses;
            total.collisions += s.cache.collisions;
            total.evictions += s.cache.evictions;
            total.insertions += s.cache.insertions;
        }
        total
    }

    /// Batches across every shard that coalesced more than one request.
    pub fn coalesced_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.coalesced_batches).sum()
    }

    /// Feedback-loop plan switches summed across every shard.
    pub fn total_replans(&self) -> u64 {
        self.shards.iter().map(|s| s.replans).sum()
    }

    /// Largest batch served by any shard.
    pub fn max_batch_size(&self) -> usize {
        self.shards.iter().map(|s| s.max_batch_size).max().unwrap_or(0)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "served {}/{} (rejected {}) | {:.1} req/s | p50 {:.3}ms p99 {:.3}ms | \
             cache hit rate {:.2} | coalesced batches {} (max {}) | replans {}",
            self.completed,
            self.submitted,
            self.rejected,
            self.throughput_rps,
            self.latency.p50_seconds * 1e3,
            self.latency.p99_seconds * 1e3,
            self.total_cache().hit_rate(),
            self.coalesced_batches(),
            self.max_batch_size(),
            self.total_replans(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_is_exact_below_capacity() {
        let mut r = LatencyReservoir::new(128);
        for i in 1..=100 {
            r.record(i as f64 / 1000.0);
        }
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert!((s.p50_seconds - 0.050).abs() < 0.002, "p50 {}", s.p50_seconds);
        assert!((s.p99_seconds - 0.099).abs() < 0.002, "p99 {}", s.p99_seconds);
        assert_eq!(s.max_seconds, 0.100);
    }

    #[test]
    fn reservoir_stays_bounded_and_plausible_beyond_capacity() {
        let mut r = LatencyReservoir::new(64);
        for i in 0..10_000 {
            r.record((i % 100) as f64);
        }
        assert_eq!(r.count(), 10_000);
        let s = r.summary();
        // Uniform values in [0, 99]: the sampled median must land inside
        // the support, not at either extreme.
        assert!(s.p50_seconds >= 0.0 && s.p50_seconds <= 99.0);
        assert!(s.p50_seconds > 10.0 && s.p50_seconds < 90.0, "p50 {}", s.p50_seconds);
        assert!(s.max_seconds <= 99.0);
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let mut r = LatencyReservoir::new(32);
            for i in 0..1000 {
                r.record((i * 7 % 97) as f64);
            }
            r.summary()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn distinct_seeds_decorrelate_reservoirs_on_the_same_stream() {
        // `with_seed(_, default)` is exactly `new`.
        let run = |seed| {
            let mut r = LatencyReservoir::with_seed(32, seed);
            for i in 0..5000 {
                r.record(i as f64);
            }
            let mut s = r.samples().to_vec();
            s.sort_by(f64::total_cmp);
            s
        };
        assert_eq!(run(0x5EED_1E55_C0FF_EE00), {
            let mut r = LatencyReservoir::new(32);
            for i in 0..5000 {
                r.record(i as f64);
            }
            let mut s = r.samples().to_vec();
            s.sort_by(f64::total_cmp);
            s
        });
        // Two reservoirs fed the identical overflowing stream must not make
        // identical eviction choices — that was the correlated-sampling bug
        // in the per-shard reservoirs (every shard ran the same RNG).
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn merged_summary_spans_all_reservoirs() {
        let mut low = LatencyReservoir::new(64);
        let mut high = LatencyReservoir::new(64);
        for i in 1..=50 {
            low.record(i as f64);
            high.record((i + 100) as f64);
        }
        let merged = LatencySummary::merged([&low, &high]);
        assert_eq!(merged.count, 100);
        assert_eq!(merged.max_seconds, 150.0);
        // The median straddles the two populations.
        assert!(merged.p50_seconds >= 50.0 && merged.p50_seconds <= 101.0);
        // Single-reservoir summary is the merged view of just itself.
        assert_eq!(low.summary(), LatencySummary::merged([&low]));
    }

    #[test]
    fn merged_summary_weights_shards_by_traffic() {
        // Hot shard: 1000 fast requests squeezed into 4 resident samples
        // (weight 250 each). Cold shard: 4 slow requests, fully resident
        // (weight 1 each). Quantiles must follow the traffic, not the
        // resident sample counts.
        let mut hot = LatencyReservoir::new(4);
        for _ in 0..1000 {
            hot.record(0.001);
        }
        let mut cold = LatencyReservoir::new(4);
        for _ in 0..4 {
            cold.record(0.100);
        }
        let merged = LatencySummary::merged([&hot, &cold]);
        assert_eq!(merged.count, 1004);
        assert_eq!(merged.p50_seconds, 0.001, "p50 must track the hot shard");
        assert_eq!(merged.p99_seconds, 0.001, "99% of traffic was fast");
        assert_eq!(merged.max_seconds, 0.100, "max still surfaces the cold shard");
    }

    #[test]
    fn empty_and_zero_capacity_reservoirs() {
        assert_eq!(LatencyReservoir::new(16).summary(), LatencySummary::default());
        let mut r = LatencyReservoir::new(0);
        r.record(1.0);
        assert_eq!(r.count(), 1);
        // No resident samples to quantile, but the observation count is
        // still reported.
        assert_eq!(r.summary(), LatencySummary { count: 1, ..LatencySummary::default() });
    }

    #[test]
    fn service_stats_aggregate_across_shards() {
        let mk = |shard, hits, misses, coalesced, max_b| ShardStats {
            shard,
            batches: 4,
            coalesced_batches: coalesced,
            requests: 10,
            max_batch_size: max_b,
            cache: CacheStats { hits, misses, ..CacheStats::default() },
            ..ShardStats::default()
        };
        let stats = ServiceStats {
            submitted: 20,
            rejected: 2,
            deadline_rejected: 1,
            deadline_dropped: 0,
            completed: 20,
            elapsed_seconds: 2.0,
            throughput_rps: 10.0,
            latency: LatencySummary::default(),
            shards: vec![mk(0, 6, 4, 1, 3), mk(1, 9, 1, 2, 5)],
        };
        let total = stats.total_cache();
        assert_eq!((total.hits, total.misses), (15, 5));
        assert!((total.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(stats.coalesced_batches(), 3);
        assert_eq!(stats.max_batch_size(), 5);
        assert!(stats.summary().contains("req/s"));
    }
}
