//! Request/response types crossing the service boundary.

use cw_engine::{BackendId, ExecutionReport, OutputShape, Plan};
use cw_sparse::CsrMatrix;
use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Two-level request priority for QoS admission.
///
/// [`Priority::High`] (the default) is admitted up to the full queue
/// capacity. [`Priority::Low`] is additionally subject to
/// [`crate::ServiceConfig::low_priority_watermark`]: once the in-flight
/// count reaches the watermark, low-priority requests are shed with
/// [`SubmitError::Full`] while high-priority traffic still has headroom.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Normal traffic; admitted up to the full queue capacity.
    #[default]
    High,
    /// Best-effort traffic; shed first under load.
    Low,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::High => write!(f, "high"),
            Priority::Low => write!(f, "low"),
        }
    }
}

/// The requested output shape of one multiply, carrying any operand data
/// the shape needs (request-level counterpart of the plan-level
/// [`OutputShape`] knob — the mask travels with the request, never with
/// the cached preparation).
#[derive(Debug, Clone, Default)]
pub enum RequestShape {
    /// The complete product `lhs · rhs` (the default; prior behavior,
    /// bit-identical).
    #[default]
    Full,
    /// Keep only product entries at positions present in the mask's
    /// sparsity pattern (explicit zeros in the mask count as present).
    /// The mask must match the product's dimensions
    /// (`lhs.nrows × rhs.ncols`); [`crate::SpgemmService::submit`] rejects
    /// mismatches with [`SubmitError::MaskShapeMismatch`].
    Masked(Arc<CsrMatrix>),
    /// Keep each output row's `k` largest-magnitude entries (ties broken
    /// toward smaller column — see `row_topk` in `cw-spgemm`).
    TopK(usize),
}

impl RequestShape {
    /// The plan-level shape knob this request shape maps to.
    pub fn output_shape(&self) -> OutputShape {
        match self {
            RequestShape::Full => OutputShape::Full,
            RequestShape::Masked(_) => OutputShape::Masked,
            RequestShape::TopK(k) => OutputShape::TopK(*k),
        }
    }

    /// The mask operand, when this shape carries one.
    pub fn mask(&self) -> Option<&Arc<CsrMatrix>> {
        match self {
            RequestShape::Masked(m) => Some(m),
            _ => None,
        }
    }
}

/// One multiply to serve: `C = shape(lhs · rhs)`, optionally under a
/// forced plan.
///
/// Operands are `Arc`-shared so a request is cheap to move through the
/// queue and many requests can reference the same lhs without copying —
/// that sharing is what batch coalescing exploits.
#[derive(Debug, Clone)]
pub struct MultiplyRequest {
    /// The `A` operand; requests with the same lhs fingerprint coalesce
    /// into one batch and share one prepared operand.
    pub lhs: Arc<CsrMatrix>,
    /// The `B` operand.
    pub rhs: Arc<CsrMatrix>,
    /// `Some` forces this plan instead of the shard planner's choice
    /// (ablations, cross-validation); `None` lets the planner decide.
    pub plan: Option<Plan>,
    /// `Some` bounds the request's useful lifetime: an already-expired
    /// deadline is rejected at [`crate::SpgemmService::submit`] with
    /// [`SubmitError::DeadlineExpired`] (shed cheap, before any queue slot
    /// is taken), and a request whose deadline passes while it waits in
    /// the queue is dropped by the worker instead of executing dead work —
    /// its [`Ticket`] resolves [`ServiceError::Disconnected`] and the drop
    /// is counted in [`crate::ServiceStats::deadline_dropped`]. `None`
    /// (the default) never expires — prior behavior, bit-identical.
    pub deadline: Option<Instant>,
    /// QoS class; see [`Priority`]. Default [`Priority::High`] preserves
    /// prior admission behavior bit-identically.
    pub priority: Priority,
    /// Requested output shape; default [`RequestShape::Full`] computes the
    /// complete product (prior behavior, bit-identical). A non-full shape
    /// becomes part of the executing plan's knobs, so truncated traffic
    /// gets its own cache entries and feedback state on the shard.
    pub shape: RequestShape,
}

impl MultiplyRequest {
    /// Planner-chosen multiply request.
    pub fn new(lhs: Arc<CsrMatrix>, rhs: Arc<CsrMatrix>) -> MultiplyRequest {
        MultiplyRequest {
            lhs,
            rhs,
            plan: None,
            deadline: None,
            priority: Priority::default(),
            shape: RequestShape::default(),
        }
    }

    /// Forces `plan` instead of the shard planner's choice.
    pub fn with_plan(mut self, plan: Plan) -> MultiplyRequest {
        self.plan = Some(plan);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline_at(mut self, deadline: Instant) -> MultiplyRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `budget` from now.
    pub fn with_deadline_in(self, budget: Duration) -> MultiplyRequest {
        self.with_deadline_at(Instant::now() + budget)
    }

    /// Sets the QoS priority class.
    pub fn with_priority(mut self, priority: Priority) -> MultiplyRequest {
        self.priority = priority;
        self
    }

    /// Sets the requested output shape.
    pub fn with_shape(mut self, shape: RequestShape) -> MultiplyRequest {
        self.shape = shape;
        self
    }

    /// Requests each output row truncated to its `k` largest-magnitude
    /// entries (sugar for [`MultiplyRequest::with_shape`]).
    pub fn with_topk(self, k: usize) -> MultiplyRequest {
        self.with_shape(RequestShape::TopK(k))
    }

    /// Requests the product restricted to `mask`'s sparsity pattern
    /// (sugar for [`MultiplyRequest::with_shape`]).
    pub fn with_mask(self, mask: Arc<CsrMatrix>) -> MultiplyRequest {
        self.with_shape(RequestShape::Masked(mask))
    }
}

/// Per-request serving telemetry attached to every response.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Service-assigned request id (monotonic per service instance).
    pub request_id: u64,
    /// Worker shard that executed the request.
    pub shard: usize,
    /// Number of requests in the coalesced batch this one rode in
    /// (`1` = not coalesced).
    pub batch_size: usize,
    /// Seconds from submission until a worker started executing it
    /// (queueing + batching-window wait).
    pub queue_seconds: f64,
    /// Seconds the worker spent executing it (prepare-or-cache-hit +
    /// kernel + postprocess).
    pub execute_seconds: f64,
    /// End-to-end seconds from submission to response.
    pub latency_seconds: f64,
    /// Whether the prepared lhs came from the shard's plan cache.
    pub cache_hit: bool,
    /// The execution backend that served this request (the shard's pinned
    /// backend, the feedback loop's converged choice, or the request's
    /// forced plan — see [`crate::ServiceConfig::backend`]).
    pub backend: BackendId,
    /// QoS class the request was admitted under.
    pub priority: Priority,
    /// Output shape the request executed under (the executing plan's
    /// shape knob — [`OutputShape::Full`] unless the request asked for a
    /// truncated product).
    pub shape: OutputShape,
    /// Seconds of deadline budget left when the response was produced
    /// (`None` when the request carried no deadline). Negative means the
    /// deadline passed mid-execution — after the worker's pre-execution
    /// check — so the response was still produced and delivered late.
    pub deadline_slack_seconds: Option<f64>,
    /// The engine's per-stage report for the underlying multiply.
    pub execution: ExecutionReport,
}

impl ServiceReport {
    /// Feedback-loop calibration state for this request's operand, when
    /// the executed plan carries one (see
    /// [`cw_engine::ExecutionReport::feedback`]).
    pub fn feedback(&self) -> Option<&cw_engine::PlanFeedbackState> {
        self.execution.feedback.as_ref()
    }

    /// Whether this request's observation made the shard switch the
    /// operand's plan (the next non-coalesced request for it will prepare
    /// and run a different pipeline).
    pub fn replanned(&self) -> bool {
        self.execution.feedback.is_some_and(|f| f.switched)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "req {} | shard {} | batch {} | queue {:.3}ms exec {:.3}ms | {}",
            self.request_id,
            self.shard,
            self.batch_size,
            self.queue_seconds * 1e3,
            self.execute_seconds * 1e3,
            self.execution.summary(),
        )
    }
}

/// A served multiply: the product and its [`ServiceReport`].
#[derive(Debug, Clone)]
pub struct MultiplyResponse {
    /// `C = shape(lhs · rhs)`, rows in original order.
    pub product: CsrMatrix,
    /// Serving telemetry for this request.
    pub report: ServiceReport,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded in-flight queue is at capacity; retry later
    /// (backpressure, not failure).
    Full,
    /// `lhs.ncols != rhs.nrows`: the product is undefined. Rejected at
    /// the front door so a malformed request can never reach (and panic)
    /// a worker shard.
    ShapeMismatch {
        /// Columns of the submitted lhs.
        lhs_ncols: usize,
        /// Rows of the submitted rhs.
        rhs_nrows: usize,
    },
    /// A [`RequestShape::Masked`] request whose mask does not match the
    /// product's dimensions (`lhs.nrows × rhs.ncols`). Rejected at the
    /// front door like [`SubmitError::ShapeMismatch`].
    MaskShapeMismatch {
        /// Rows of the submitted mask.
        mask_nrows: usize,
        /// Columns of the submitted mask.
        mask_ncols: usize,
        /// Rows the product will have (`lhs.nrows`).
        product_nrows: usize,
        /// Columns the product will have (`rhs.ncols`).
        product_ncols: usize,
    },
    /// The request's deadline had already passed at submission: rejected
    /// at the front door before taking a queue slot (shed cheap, not deep).
    DeadlineExpired,
    /// The service has begun shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Full => write!(f, "service queue is full"),
            SubmitError::ShapeMismatch { lhs_ncols, rhs_nrows } => write!(
                f,
                "operand shapes do not compose: lhs has {lhs_ncols} cols, rhs has {rhs_nrows} rows"
            ),
            SubmitError::MaskShapeMismatch {
                mask_nrows,
                mask_ncols,
                product_nrows,
                product_ncols,
            } => write!(
                f,
                "mask is {mask_nrows}x{mask_ncols} but the product is \
                 {product_nrows}x{product_ncols}"
            ),
            SubmitError::DeadlineExpired => {
                write!(f, "request deadline expired before admission")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted request produced no response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The request was abandoned unserved: the service was torn down
    /// before it executed, or its deadline passed while it queued and the
    /// worker dropped it instead of executing dead work (counted in
    /// [`crate::ServiceStats::deadline_dropped`]; a caller that set a
    /// deadline can disambiguate by checking whether it has passed).
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Disconnected => {
                write!(f, "service dropped the request before completing it")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Claim check for one accepted submission; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Result<MultiplyResponse, ServiceError>>,
}

impl Ticket {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives (or the service is torn down).
    pub fn wait(self) -> Result<MultiplyResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Disconnected))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn poll(&self) -> Option<Result<MultiplyResponse, ServiceError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceError::Disconnected)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_engine::Plan;

    #[test]
    fn request_builder_carries_forced_plan() {
        let a = Arc::new(CsrMatrix::identity(4));
        let req = MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a));
        assert!(req.plan.is_none());
        let req = req.with_plan(Plan::baseline());
        assert_eq!(req.plan.unwrap().knobs(), Plan::baseline().knobs());
    }

    #[test]
    fn errors_display_and_compare() {
        assert_ne!(SubmitError::Full, SubmitError::ShuttingDown);
        assert!(SubmitError::Full.to_string().contains("full"));
        assert!(ServiceError::Disconnected.to_string().contains("dropped"));
        assert!(SubmitError::DeadlineExpired.to_string().contains("deadline"));
    }

    #[test]
    fn request_defaults_carry_no_qos() {
        let a = Arc::new(CsrMatrix::identity(3));
        let req = MultiplyRequest::new(Arc::clone(&a), Arc::clone(&a));
        assert!(req.deadline.is_none());
        assert_eq!(req.priority, Priority::High);

        let soon = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let req = req.with_deadline_at(soon).with_priority(Priority::Low);
        assert_eq!(req.deadline, Some(soon));
        assert_eq!(req.priority, Priority::Low);
        assert_eq!(Priority::Low.to_string(), "low");

        let budgeted = MultiplyRequest::new(Arc::clone(&a), a)
            .with_deadline_in(std::time::Duration::from_secs(1));
        assert!(budgeted.deadline.unwrap() > std::time::Instant::now());
    }

    #[test]
    fn ticket_poll_reports_disconnect() {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { id: 9, rx };
        assert_eq!(ticket.id(), 9);
        assert!(ticket.poll().is_none(), "nothing sent yet");
        drop(tx);
        assert!(matches!(ticket.poll(), Some(Err(ServiceError::Disconnected))));
        assert!(ticket.wait().is_err());
    }
}
