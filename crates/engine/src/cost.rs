//! The cost model and the execution-feedback loop behind plan selection.
//!
//! The rule-based advisor ranks *techniques*; this module prices *plans*.
//! [`CostModel::estimate`] turns cheap operand features (dimensions, nnz,
//! the advisor [`Profile`]) plus the advisor's per-suggestion `affinity`
//! into a [`CostEstimate`]: predicted preprocessing seconds and predicted
//! kernel seconds per multiply. [`CostEstimate::amortized`] folds the two
//! together under an expected reuse count — the paper's §4.5 amortization
//! argument made explicit — and [`crate::Planner::plans_costed`] ranks
//! candidates by it.
//!
//! Analytic estimates are rough (the SpMV reordering study, Asudeh et al.,
//! shows rule-of-thumb predictions are frequently wrong), so the
//! [`FeedbackStore`] closes the loop: per operand (fingerprint + checksum,
//! so sampled-fingerprint collisions cannot alias plan state) it keeps an
//! EWMA of *observed* kernel seconds per candidate plan, a clamped
//! calibration ratio (observed ÷ predicted) that rescales the untried
//! candidates' predictions, and the index of the currently chosen plan.
//! After each execution [`FeedbackStore::record`] re-ranks: a chosen plan
//! whose observed timing is worse than an alternative's effective cost by
//! more than [`SWITCH_MARGIN`] gets demoted, and a candidate whose observed
//! timing beats its prediction gets promoted on the same comparison —
//! repeated traffic converges on the empirically fastest plan.
//!
//! Switching is deliberately conservative: it needs
//! [`MIN_OBSERVATIONS_TO_SWITCH`] samples of the incumbent, a
//! [`SWITCH_MARGIN`] improvement, and kernels above the policy's
//! noise floor ([`PlanningPolicy::min_adapt_gain_seconds`]) — at
//! microsecond scales timing noise swamps any real plan difference.

use crate::backend::BackendCaps;
use crate::plan::{ClusteringStrategy, KernelChoice, OutputShape, Plan, PlanKnobs};
use cw_reorder::advisor::Profile;
use cw_reorder::Reordering;
use cw_sparse::{CsrMatrix, MatrixFingerprint};
use cw_spgemm::AccumulatorKind;
use std::collections::HashMap;

/// EWMA smoothing factor for observed timings (higher = faster adaptation).
pub const EWMA_ALPHA: f64 = 0.3;

/// Observations of the incumbent plan required before the feedback loop may
/// switch away from it (one noisy sample must not trigger a re-plan).
pub const MIN_OBSERVATIONS_TO_SWITCH: u64 = 3;

/// Relative improvement an alternative's effective cost must show over the
/// incumbent's before the feedback loop switches (hysteresis against
/// oscillation between near-equal plans).
pub const SWITCH_MARGIN: f64 = 0.25;

/// Calibration ratios are clamped to this range so one badly mispredicted
/// plan cannot poison every other candidate's estimate.
pub const CALIBRATION_CLAMP: (f64, f64) = (0.5, 2.0);

/// Floor on [`PlanningPolicy::observation_half_life`]: below this, the
/// continuously-observed incumbent's equilibrium evidence weight
/// (`1 / (1 − 0.5^(1/half_life))`) would sink under
/// [`MIN_OBSERVATIONS_TO_SWITCH`] and the feedback loop could never
/// switch at all. Shorter requested half-lives are clamped up.
pub const MIN_OBSERVATION_HALF_LIFE: u64 = 4;

/// Assumed surviving-output fraction of a masked multiply
/// ([`OutputShape::Masked`]): the mask's density is unknown at plan time
/// (the mask is request data, not plan data), so the model prices masked
/// kernels at this fixed fraction of the full-product kernel cost. The
/// [`FeedbackStore`] corrects it per operand from observed shaped
/// executions — shaped candidates have their own knobs, so the
/// correction never bleeds into full-product pricing.
pub const MASKED_SURVIVING_FRACTION: f64 = 0.25;

/// Floor on the surviving-output fraction of a top-k multiply: even
/// `k = 0` keeps some per-row walk cost, and pricing a kernel at zero
/// would make every truncated plan spuriously free.
pub const MIN_TOPK_SURVIVING_FRACTION: f64 = 0.05;

/// Observation weight below which a decayed candidate is priced as
/// *untried* again (calibrated prediction + prep surcharge): its stale
/// EWMA no longer counts as evidence, which is what lets a long-demoted
/// plan re-promote after the workload drifts. Undecayed stores never hit
/// this (any observed candidate has weight ≥ 1).
pub const STALE_OBSERVATION_WEIGHT: f64 = 0.5;

/// Caller-supplied planning knobs: how much reuse to amortize preprocessing
/// over, an optional hard preprocessing budget, and whether the feedback
/// loop may re-plan at runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanningPolicy {
    /// Expected multiplies per prepared operand; preprocessing cost is
    /// divided by this when ranking candidates (`1` = one-shot traffic,
    /// where preprocessing almost never pays).
    pub expected_reuse: f64,
    /// Hard cap on predicted preprocessing seconds: candidates estimated
    /// over budget rank behind every within-budget candidate regardless of
    /// their amortized cost. `None` = unbounded.
    pub prep_budget_seconds: Option<f64>,
    /// Allow [`FeedbackStore::record`] to switch the chosen plan when
    /// observed timings contradict the model. `false` = observe-only:
    /// EWMAs and calibration still accumulate, the choice never changes.
    pub adapt: bool,
    /// Feedback noise floor: re-planning requires the alternative to save
    /// at least this many *absolute* seconds per multiply on top of the
    /// [`SWITCH_MARGIN`] relative bar. At microsecond kernel scales,
    /// timing noise (and debug-build distortion) dwarfs any real
    /// difference between plans — sub-floor "improvements" are noise.
    pub min_adapt_gain_seconds: f64,
    /// Half-life (in per-operand recorded executions) of observation
    /// evidence. `Some(h)`: every [`FeedbackStore::record`] on an operand
    /// multiplies all its candidates' observation weights by
    /// `0.5^(1/h)`, so a candidate not re-observed for a few half-lives
    /// decays below [`STALE_OBSERVATION_WEIGHT`] and is priced from the
    /// calibrated model again — matrices whose performance drifts between
    /// submissions can re-promote plans demoted under the old regime.
    /// `None` (the default): observations never decay, the pre-decay
    /// behavior. Values below [`MIN_OBSERVATION_HALF_LIFE`] are clamped up.
    pub observation_half_life: Option<u64>,
}

impl Default for PlanningPolicy {
    fn default() -> Self {
        PlanningPolicy {
            expected_reuse: 16.0,
            prep_budget_seconds: None,
            adapt: true,
            min_adapt_gain_seconds: 1e-3,
            observation_half_life: None,
        }
    }
}

impl PlanningPolicy {
    /// Observe-only policy: cost-model selection, no runtime re-planning.
    pub fn frozen() -> PlanningPolicy {
        PlanningPolicy { adapt: false, ..PlanningPolicy::default() }
    }

    /// Policy for one-shot traffic: preprocessing must pay for itself in a
    /// single multiply, so only near-free plans beat the baseline.
    pub fn one_shot() -> PlanningPolicy {
        PlanningPolicy { expected_reuse: 1.0, ..PlanningPolicy::default() }
    }
}

/// Cheap per-operand features the cost model prices plans from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperandFeatures {
    /// Rows of the operand.
    pub nrows: usize,
    /// Columns of the operand (the output-width proxy for `A²`-shaped
    /// traffic; column-tiled backends are priced from it).
    pub ncols: usize,
    /// Stored nonzeros of the operand.
    pub nnz: usize,
    /// The advisor's structural profile.
    pub profile: Profile,
}

impl OperandFeatures {
    /// Features of `a` under an already-computed profile (avoids profiling
    /// twice when the advisor ran first).
    pub fn with_profile(a: &CsrMatrix, profile: Profile) -> OperandFeatures {
        OperandFeatures { nrows: a.nrows, ncols: a.ncols, nnz: a.nnz(), profile }
    }

    /// Estimated multiply-adds of `A·B` for a `B` structurally like `A`:
    /// every nonzero `a_ik` pulls `nnz(B[k,:]) ≈ avg_row_nnz` products —
    /// exact for `A²` when row lengths are uniform, a serviceable proxy
    /// otherwise.
    pub fn estimated_madds(&self) -> f64 {
        self.nnz as f64 * self.profile.avg_row_nnz.max(1.0)
    }
}

/// Predicted cost of one plan on one operand, split the same way
/// [`crate::StageTimings`] splits observed cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostEstimate {
    /// One-off preprocessing seconds (reorder + cluster construction).
    pub prep_seconds: f64,
    /// Per-multiply kernel (+ postprocess) seconds.
    pub kernel_seconds: f64,
}

impl CostEstimate {
    /// Per-multiply cost when preprocessing amortizes over `reuse`
    /// multiplies: `prep / max(reuse, 1) + kernel`. Monotone decreasing in
    /// `reuse`, which is exactly the paper's Fig. 10 break-even argument.
    pub fn amortized(&self, reuse: f64) -> f64 {
        self.prep_seconds / reuse.max(1.0) + self.kernel_seconds
    }
}

/// Analytic per-plan cost model over [`OperandFeatures`].
///
/// All constants are public and deliberately rough: they only need to rank
/// plans sensibly on first sight — the [`FeedbackStore`] corrects them with
/// observed timings. Tests also overwrite them to build adversarially
/// *wrong* models and verify feedback recovers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds per multiply-add for the serial row-wise kernel with the
    /// hash accumulator (the baseline everything is priced relative to).
    pub seconds_per_madd: f64,
    /// Multiplier on `seconds_per_madd` when the dense (SPA) accumulator
    /// runs instead of hash (narrow outputs, paper §2.2 / Nagasaka et al.).
    pub dense_acc_discount: f64,
    /// Effective speedup of the rayon-parallel kernel path.
    pub parallel_speedup: f64,
    /// Largest fraction of kernel time a reordering with affinity `1.0`
    /// is predicted to save on the row-wise kernel (locality recovery).
    pub reorder_gain: f64,
    /// Largest fraction of kernel time cluster-wise computation is
    /// predicted to save when clustered rows fully overlap (shared
    /// B-row fetches, paper Alg. 1).
    pub cluster_gain: f64,
    /// Per-row bookkeeping overhead of the cluster-wise kernel, seconds.
    pub cluster_row_overhead: f64,
    /// Preprocessing seconds per nonzero for cheap, BFS/sort-class
    /// reorderings (RCM, Degree, Gray, Random).
    pub cheap_reorder_per_nnz: f64,
    /// Preprocessing seconds per nonzero for heavy reorderings
    /// (partitioners, AMD/ND, Rabbit, SlashBurn).
    pub heavy_reorder_per_nnz: f64,
    /// Cluster-construction seconds per nonzero for fixed-length grouping.
    pub fixed_cluster_per_nnz: f64,
    /// Cluster-construction seconds per nonzero for variable (Jaccard
    /// growing) clustering.
    pub variable_cluster_per_nnz: f64,
    /// Cluster-construction seconds per nonzero for hierarchical
    /// clustering (similarity discovery is itself SpGEMM-shaped).
    pub hierarchical_cluster_per_nnz: f64,
    /// Fraction of kernel time added per *extra* column tile on a tiled
    /// backend (each tile re-streams the operand's rows).
    pub tile_pass_overhead: f64,
    /// Fraction of kernel time cache blocking is predicted to save when a
    /// tiled backend actually splits the output (more than one tile).
    pub blocking_gain: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seconds_per_madd: 1.5e-9,
            dense_acc_discount: 0.7,
            parallel_speedup: 4.0,
            reorder_gain: 0.25,
            cluster_gain: 0.6,
            cluster_row_overhead: 5e-9,
            cheap_reorder_per_nnz: 10e-9,
            heavy_reorder_per_nnz: 60e-9,
            fixed_cluster_per_nnz: 4e-9,
            variable_cluster_per_nnz: 25e-9,
            hierarchical_cluster_per_nnz: 120e-9,
            // Deliberately pessimistic about tiling: on first sight the
            // reference rayon path wins and the tiled backend is only
            // adopted once execution feedback observes it faster.
            tile_pass_overhead: 0.10,
            blocking_gain: 0.05,
        }
    }
}

impl CostModel {
    /// Prices `plan` on an operand with features `f`, describing the
    /// plan's backend by its *builtin* capability descriptor
    /// ([`crate::BackendId::caps`]). Callers holding a
    /// [`crate::BackendRegistry`] (the planner) should prefer
    /// [`CostModel::estimate_with_caps`], which honors instance-level
    /// overrides such as a custom tile width.
    pub fn estimate(&self, f: &OperandFeatures, plan: &Plan, affinity: f64) -> CostEstimate {
        self.estimate_with_caps(f, plan, affinity, &plan.backend.caps())
    }

    /// Prices `plan` on an operand with features `f` under an explicit
    /// backend capability descriptor. `affinity` is the advisor's
    /// structural-evidence feature for the technique the plan realizes
    /// (`0` for the baseline): higher affinity predicts larger kernel
    /// savings from reordering/clustering, never larger prep cost. The
    /// descriptor contributes the backend terms: `kernel_scale`, whether
    /// the parallel speedup applies at all, and the column-tile geometry
    /// (per-tile pass overhead vs cache-blocking gain).
    pub fn estimate_with_caps(
        &self,
        f: &OperandFeatures,
        plan: &Plan,
        affinity: f64,
        caps: &BackendCaps,
    ) -> CostEstimate {
        let affinity = affinity.clamp(0.0, 1.0);
        let madds = f.estimated_madds();
        let nnz = f.nnz as f64;

        // Base kernel: madds × per-madd seconds, accumulator-adjusted.
        let per_madd = self.seconds_per_madd
            * if plan.acc == AccumulatorKind::Dense { self.dense_acc_discount } else { 1.0 };
        let mut kernel = madds * per_madd;

        match plan.kernel {
            KernelChoice::RowWise => {
                // Reordering improves locality of B-row accesses in
                // proportion to the advisor's confidence it applies.
                if plan.reorder.is_some_and(|r| r != Reordering::Original) {
                    kernel *= 1.0 - self.reorder_gain * affinity;
                }
            }
            KernelChoice::ClusterWise => {
                // Cluster-wise computation shares B-row fetches between the
                // rows of a cluster; the fraction shared tracks row overlap.
                // ClusterInPlace-style plans exploit overlap already present
                // in the row order (the measured consecutive Jaccard);
                // Hierarchical re-clusters from scratch — it destroys the
                // existing order and manufactures its own overlap — so its
                // prediction leans on the advisor's affinity alone.
                let overlap = match plan.clustering {
                    ClusteringStrategy::Hierarchical => 0.5 * affinity,
                    _ => f.profile.consecutive_jaccard.max(affinity * 0.5),
                }
                .min(0.95);
                kernel *= 1.0 - self.cluster_gain * overlap;
                kernel += self.cluster_row_overhead * f.nrows as f64;
            }
        }
        if plan.parallel && caps.parallel {
            kernel /= self.parallel_speedup.max(1.0);
        }
        kernel *= caps.kernel_scale.max(0.0);
        if let Some(w) = caps.tile_cols {
            let tiles = (f.ncols.max(1).div_ceil(w.max(1))) as f64;
            if tiles > 1.0 {
                // Each extra tile re-streams the operand's rows, but bounds
                // the accumulator working set to the tile width.
                kernel *= 1.0 + self.tile_pass_overhead * (tiles - 1.0);
                kernel *= 1.0 - self.blocking_gain.clamp(0.0, 0.95);
            }
        }
        // Truncated output shapes shrink the *kernel* term only — prep is
        // untouched, so the paper's §4.5 amortization argument gets
        // strictly stronger for masked/top-k traffic: the same one-off
        // reorder/cluster cost amortizes against cheaper multiplies,
        // letting the planner justify heavier prep sooner.
        kernel *= self.surviving_fraction(f, plan.shape);

        // Preprocessing: permutation computation + cluster construction.
        let mut prep = match plan.reorder {
            None | Some(Reordering::Original) => 0.0,
            Some(Reordering::Rcm | Reordering::Degree | Reordering::Gray | Reordering::Random) => {
                self.cheap_reorder_per_nnz * nnz
            }
            Some(_) => self.heavy_reorder_per_nnz * nnz,
        };
        prep += match (plan.kernel, plan.clustering) {
            (KernelChoice::RowWise, _) => 0.0,
            (_, ClusteringStrategy::None | ClusteringStrategy::Fixed(_)) => {
                self.fixed_cluster_per_nnz * nnz
            }
            (_, ClusteringStrategy::Variable) => self.variable_cluster_per_nnz * nnz,
            (_, ClusteringStrategy::Hierarchical) => self.hierarchical_cluster_per_nnz * nnz,
        };

        CostEstimate { prep_seconds: prep, kernel_seconds: kernel }
    }

    /// Estimated fraction of full-product kernel work a shaped multiply
    /// performs. `Full` is `1`; `Masked` is the fixed
    /// [`MASKED_SURVIVING_FRACTION`] (mask density is unknown at plan
    /// time); `TopK(k)` compares `k` against the estimated output row
    /// width (`madds / nrows`, the upper bound the FLOP analysis gives),
    /// floored at [`MIN_TOPK_SURVIVING_FRACTION`].
    pub fn surviving_fraction(&self, f: &OperandFeatures, shape: OutputShape) -> f64 {
        match shape {
            OutputShape::Full => 1.0,
            OutputShape::Masked => MASKED_SURVIVING_FRACTION,
            OutputShape::TopK(k) => {
                let est_row_width = f.estimated_madds() / f.nrows.max(1) as f64;
                if est_row_width <= 0.0 {
                    return 1.0;
                }
                (k as f64 / est_row_width).clamp(MIN_TOPK_SURVIVING_FRACTION, 1.0)
            }
        }
    }
}

/// Exponentially weighted moving average with first-sample initialization
/// and decayable evidence weight.
///
/// `value` is the smoothed observation; `weight` is how much *evidence*
/// backs it. Without decay the weight equals the raw sample count; with
/// [`Ewma::decay`] (the feedback store's half-life) it shrinks between
/// observations, so stale evidence stops gating plan switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    value: f64,
    samples: u64,
    weight: f64,
}

impl Ewma {
    /// Empty average (no samples yet).
    pub fn new() -> Ewma {
        Ewma { value: 0.0, samples: 0, weight: 0.0 }
    }

    /// Folds in one observation (first observation sets the value).
    pub fn observe(&mut self, x: f64) {
        self.value =
            if self.samples == 0 { x } else { EWMA_ALPHA * x + (1.0 - EWMA_ALPHA) * self.value };
        self.samples += 1;
        self.weight += 1.0;
    }

    /// Multiplies the evidence weight by `factor` (the half-life step);
    /// the smoothed value is untouched — decay questions how much the
    /// history should *count*, not what it said.
    pub fn decay(&mut self, factor: f64) {
        self.weight *= factor.clamp(0.0, 1.0);
    }

    /// Current smoothed value (`0` before any observation).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Observations folded in so far (raw count, never decays).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current evidence weight: equals [`Ewma::samples`] until the first
    /// [`Ewma::decay`], then shrinks between observations.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl Default for Ewma {
    fn default() -> Self {
        Ewma::new()
    }
}

/// Identity of one operand in the feedback store: the sampled fingerprint
/// (a cheap hash) disambiguated by the full-content checksum, mirroring
/// the plan cache's verify-on-hit discipline so a sampled-fingerprint
/// collision can never alias two matrices' plan state or merge their
/// timing observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandKey {
    /// Sampled fingerprint of the operand ([`cw_sparse::fingerprint()`]).
    pub fingerprint: MatrixFingerprint,
    /// Full-content checksum ([`cw_sparse::checksum`]).
    pub checksum: u64,
    /// Output shape the feedback entry tracks. Shaped traffic learns
    /// separately — a top-k multiply's observed kernel seconds must never
    /// demote or promote the full product's plan (and vice versa), since
    /// they do genuinely different amounts of work.
    pub shape: OutputShape,
}

impl OperandKey {
    /// Computes both identity components of `a` (`O(nnz)`, dominated by
    /// the checksum pass) for full-product traffic.
    pub fn of(a: &CsrMatrix) -> OperandKey {
        OperandKey::shaped(a, OutputShape::Full)
    }

    /// Like [`OperandKey::of`] but keyed to a specific output shape.
    pub fn shaped(a: &CsrMatrix, shape: OutputShape) -> OperandKey {
        OperandKey {
            fingerprint: cw_sparse::fingerprint(a),
            checksum: cw_sparse::checksum(a),
            shape,
        }
    }
}

/// One candidate plan tracked for an operand.
#[derive(Debug, Clone)]
struct Candidate {
    plan: Plan,
    predicted: CostEstimate,
    observed_kernel: Ewma,
}

/// Feedback for one operand: the seeded candidate set, the incumbent
/// choice, and the calibration state.
#[derive(Debug, Clone)]
struct OperandFeedback {
    candidates: Vec<Candidate>,
    chosen: usize,
    calibration: Ewma,
    replans: u64,
    /// Recency tick of the last seed/record touch (eviction order).
    last_used: u64,
}

impl OperandFeedback {
    /// Effective per-multiply cost of candidate `i` for ranking purposes:
    ///
    /// * with [`MIN_OBSERVATIONS_TO_SWITCH`]+ evidence weight — the
    ///   observed EWMA (trusted outright);
    /// * with less (but non-stale) weight — the *worse* of the observed
    ///   EWMA and the calibrated prediction, so one anomalously fast
    ///   sample (a warm-cache forced run, a CPU boost window) can never
    ///   make an alternative look better than the model believes it is;
    /// * untried, or decayed below [`STALE_OBSERVATION_WEIGHT`] — the
    ///   calibrated prediction plus a prep surcharge (switching to an
    ///   untried plan pays its preprocessing; already-tried plans are
    ///   likely still cached). Treating stale candidates as untried is
    ///   what re-opens the door for plans demoted under a workload that
    ///   has since drifted.
    ///
    /// Without decay the evidence weight *is* the sample count, so the
    /// thresholds reduce to the original sample-count rules exactly.
    fn effective(&self, i: usize, policy: &PlanningPolicy) -> f64 {
        let c = &self.candidates[i];
        let calib = if self.calibration.samples() == 0 {
            1.0
        } else {
            self.calibration.value().clamp(CALIBRATION_CLAMP.0, CALIBRATION_CLAMP.1)
        };
        let predicted = c.predicted.kernel_seconds * calib;
        let w = c.observed_kernel.weight();
        if w < STALE_OBSERVATION_WEIGHT {
            predicted + c.predicted.prep_seconds / policy.expected_reuse.max(1.0)
        } else if w < MIN_OBSERVATIONS_TO_SWITCH as f64 {
            c.observed_kernel.value().max(predicted)
        } else {
            c.observed_kernel.value()
        }
    }
}

/// Point-in-time calibration snapshot for one executed plan, surfaced in
/// [`crate::ExecutionReport::feedback`] (and through it in the service's
/// per-request reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanFeedbackState {
    /// Times the executed plan has run on this operand.
    pub executions: u64,
    /// The cost model's kernel-seconds prediction for the executed plan.
    pub predicted_kernel_seconds: f64,
    /// EWMA of observed kernel seconds for the executed plan.
    pub observed_kernel_seconds: f64,
    /// Smoothed observed ÷ predicted ratio (clamped when applied to
    /// untried candidates; reported unclamped here).
    pub calibration: f64,
    /// Plan switches the feedback loop has made for this operand.
    pub replans: u64,
    /// Whether *this* observation triggered a switch (the next multiply
    /// will prepare and run a different plan).
    pub switched: bool,
    /// Candidate plans tracked for this operand.
    pub candidates: usize,
}

/// Per-operand execution feedback: observed-timing EWMAs that correct
/// the cost model's ranking after every multiply.
///
/// ```
/// use cw_engine::{CostEstimate, FeedbackStore, OperandKey, Plan, PlanningPolicy};
///
/// let key = OperandKey::of(&cw_sparse::CsrMatrix::identity(8));
/// let mut store = FeedbackStore::new();
/// let fast = Plan::baseline();
/// store.seed(
///     key,
///     vec![(fast, CostEstimate { prep_seconds: 0.0, kernel_seconds: 1.0 })],
/// );
/// assert_eq!(store.chosen_plan(&key).unwrap().knobs(), fast.knobs());
///
/// // Observations accumulate into an EWMA of real kernel seconds.
/// let policy = PlanningPolicy::default();
/// let state = store.record(key, fast.knobs(), 1.25, &policy).unwrap();
/// assert_eq!(state.executions, 1);
/// assert!((state.observed_kernel_seconds - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FeedbackStore {
    entries: HashMap<OperandKey, OperandFeedback>,
    capacity: usize,
    tick: u64,
}

/// Default bound on operands a [`FeedbackStore`] tracks before evicting
/// the least-recently-recorded entry.
pub const DEFAULT_FEEDBACK_CAPACITY: usize = 1024;

impl Default for FeedbackStore {
    fn default() -> Self {
        FeedbackStore::with_capacity(DEFAULT_FEEDBACK_CAPACITY)
    }
}

impl FeedbackStore {
    /// Empty store with the default operand bound
    /// ([`DEFAULT_FEEDBACK_CAPACITY`]).
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Empty store tracking at most `capacity` operands. Serving traffic
    /// sees unbounded operand variety, so — like the plan cache — the
    /// store must not grow without bound: seeding a new operand at
    /// capacity evicts the least-recently-recorded entry (`capacity == 0`
    /// disables feedback entirely: nothing seeds, every lookup misses).
    pub fn with_capacity(capacity: usize) -> FeedbackStore {
        FeedbackStore { entries: HashMap::new(), capacity, tick: 0 }
    }

    /// The configured operand bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Operands currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been seeded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total plan switches made across all operands.
    pub fn total_replans(&self) -> u64 {
        self.entries.values().map(|e| e.replans).sum()
    }

    /// Drops every tracked operand: candidate sets, observation EWMAs,
    /// calibration, and replan counters all reset. The next sighting of
    /// any operand re-seeds from the planner as if it were new. This is
    /// what [`crate::Engine::reset`] calls alongside clearing the plan
    /// cache.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The currently chosen plan for `key`, if the operand was seeded.
    /// This is the planner-free fast path: repeated traffic resolves its
    /// plan with one hash lookup instead of re-profiling the operand.
    pub fn chosen_plan(&self, key: &OperandKey) -> Option<Plan> {
        self.entries.get(key).map(|e| e.candidates[e.chosen].plan)
    }

    /// Seeds the candidate set for `key` from the planner's cost-ranked
    /// list (best first — index 0 becomes the incumbent). Re-seeding an
    /// existing operand is a no-op so accumulated observations survive.
    /// Seeding a new operand at capacity first evicts the
    /// least-recently-recorded entry.
    pub fn seed(&mut self, key: OperandKey, ranked: Vec<(Plan, CostEstimate)>) {
        assert!(!ranked.is_empty(), "candidate set must be non-empty");
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            let stalest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("at capacity implies at least one entry");
            self.entries.remove(&stalest);
        }
        let tick = self.tick;
        self.entries.entry(key).or_insert_with(|| OperandFeedback {
            candidates: ranked
                .into_iter()
                .map(|(plan, predicted)| Candidate {
                    plan,
                    predicted,
                    observed_kernel: Ewma::new(),
                })
                .collect(),
            chosen: 0,
            calibration: Ewma::new(),
            replans: 0,
            last_used: tick,
        });
    }

    /// Calibration snapshot for `key` relative to its *chosen* plan,
    /// without recording anything.
    pub fn state(&self, key: &OperandKey) -> Option<PlanFeedbackState> {
        let e = self.entries.get(key)?;
        Some(Self::snapshot(e, e.chosen, false))
    }

    fn snapshot(e: &OperandFeedback, executed: usize, switched: bool) -> PlanFeedbackState {
        let c = &e.candidates[executed];
        PlanFeedbackState {
            executions: c.observed_kernel.samples(),
            predicted_kernel_seconds: c.predicted.kernel_seconds,
            observed_kernel_seconds: c.observed_kernel.value(),
            calibration: if e.calibration.samples() == 0 { 1.0 } else { e.calibration.value() },
            replans: e.replans,
            switched,
            candidates: e.candidates.len(),
        }
    }

    /// Records one observed kernel time for the plan identified by `knobs`
    /// on `key`, updates the EWMAs and calibration, and — when `policy`
    /// allows and the evidence clears the margin and noise floor —
    /// switches the chosen plan. Returns the post-update snapshot, or
    /// `None` for an unseeded operand (e.g. forced-only traffic).
    ///
    /// Demotion and promotion are the same comparison: every candidate gets
    /// an effective cost (observed EWMA when tried, calibrated prediction
    /// plus amortized prep surcharge when not), and the incumbent is
    /// replaced by the arg-min when it loses by more than [`SWITCH_MARGIN`].
    pub fn record(
        &mut self,
        key: OperandKey,
        knobs: PlanKnobs,
        kernel_seconds: f64,
        policy: &PlanningPolicy,
    ) -> Option<PlanFeedbackState> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(&key)?;
        e.last_used = tick;
        // Knobs outside the seeded candidate set (e.g. caller-forced
        // ablation plans) carry no ranking signal for auto traffic;
        // ignore them rather than corrupt the candidate set.
        let executed = e.candidates.iter().position(|c| c.plan.knobs() == knobs)?;
        // Half-life decay: every recorded execution ages *all* candidates'
        // evidence, so plans that stop being observed gradually lose their
        // gating power (a continuously observed candidate holds an
        // equilibrium weight of 1/(1 − factor), well above the switch
        // threshold).
        if let Some(half_life) = policy.observation_half_life {
            let factor = 0.5f64.powf(1.0 / half_life.max(MIN_OBSERVATION_HALF_LIFE) as f64);
            for c in &mut e.candidates {
                c.observed_kernel.decay(factor);
            }
        }
        e.candidates[executed].observed_kernel.observe(kernel_seconds);
        let predicted = e.candidates[executed].predicted.kernel_seconds;
        if predicted > 0.0 {
            e.calibration.observe(kernel_seconds / predicted);
        }

        let mut switched = false;
        let incumbent_obs = &e.candidates[e.chosen].observed_kernel;
        if policy.adapt
            && executed == e.chosen
            && incumbent_obs.weight() >= MIN_OBSERVATIONS_TO_SWITCH as f64
        {
            let incumbent_cost = e.effective(e.chosen, policy);
            // The policy's preprocessing budget is a hard cap on switch
            // targets too: a re-plan prepares from scratch, so a candidate
            // whose predicted prep exceeds the budget is never eligible
            // no matter how fast it looks.
            let budget = policy.prep_budget_seconds.unwrap_or(f64::INFINITY);
            let best = (0..e.candidates.len())
                .filter(|&i| i == e.chosen || e.candidates[i].predicted.prep_seconds <= budget)
                .min_by(|&i, &j| e.effective(i, policy).total_cmp(&e.effective(j, policy)))
                .expect("candidate set is non-empty");
            let best_cost = e.effective(best, policy);
            if best != e.chosen
                && best_cost < incumbent_cost * (1.0 - SWITCH_MARGIN)
                && incumbent_cost - best_cost >= policy.min_adapt_gain_seconds
            {
                e.chosen = best;
                e.replans += 1;
                switched = true;
            }
        }
        Some(Self::snapshot(e, executed, switched))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen;

    fn features(nrows: usize, nnz: usize, jaccard: f64) -> OperandFeatures {
        OperandFeatures {
            nrows,
            ncols: nrows,
            nnz,
            profile: Profile {
                degree_skew: 2.0,
                relative_bandwidth: 0.3,
                consecutive_jaccard: jaccard,
                avg_row_nnz: nnz as f64 / nrows.max(1) as f64,
            },
        }
    }

    #[test]
    fn kernel_cost_is_monotone_in_work() {
        let model = CostModel::default();
        let small = model.estimate(&features(100, 500, 0.2), &Plan::baseline(), 0.0);
        let more_nnz = model.estimate(&features(100, 5000, 0.2), &Plan::baseline(), 0.0);
        let denser_rows = model.estimate(&features(50, 5000, 0.2), &Plan::baseline(), 0.0);
        assert!(more_nnz.kernel_seconds > small.kernel_seconds);
        // Same nnz packed into fewer rows → higher avg_row_nnz → more madds.
        assert!(denser_rows.kernel_seconds > more_nnz.kernel_seconds);
    }

    #[test]
    fn prep_cost_is_monotone_in_nnz_and_zero_for_baseline() {
        let model = CostModel::default();
        let plan = Plan { reorder: Some(Reordering::Rcm), ..Plan::baseline() };
        let small = model.estimate(&features(100, 500, 0.2), &plan, 0.5);
        let large = model.estimate(&features(100, 5000, 0.2), &plan, 0.5);
        assert!(large.prep_seconds > small.prep_seconds);
        assert_eq!(
            model.estimate(&features(100, 500, 0.2), &Plan::baseline(), 0.0).prep_seconds,
            0.0
        );
    }

    #[test]
    fn higher_affinity_predicts_cheaper_kernels_never_cheaper_prep() {
        let model = CostModel::default();
        let f = features(1000, 8000, 0.1);
        let plan = Plan { reorder: Some(Reordering::Rcm), ..Plan::baseline() };
        let low = model.estimate(&f, &plan, 0.1);
        let high = model.estimate(&f, &plan, 0.9);
        assert!(high.kernel_seconds < low.kernel_seconds);
        assert_eq!(high.prep_seconds, low.prep_seconds);
    }

    #[test]
    fn cluster_kernels_get_cheaper_with_row_overlap() {
        let model = CostModel::default();
        let plan = Plan {
            clustering: ClusteringStrategy::Variable,
            kernel: KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let scattered = model.estimate(&features(1000, 8000, 0.05), &plan, 0.0);
        let grouped = model.estimate(&features(1000, 8000, 0.85), &plan, 0.85);
        assert!(grouped.kernel_seconds < scattered.kernel_seconds);
    }

    #[test]
    fn serial_backend_is_priced_without_the_parallel_speedup() {
        let model = CostModel::default();
        let f = features(2000, 16000, 0.2);
        let plan = Plan::baseline(); // parallel = true
        let fast = model.estimate(&f, &plan, 0.0);
        let slow = model.estimate(&f, &plan.on_backend(crate::BackendId::SerialReference), 0.0);
        assert!(
            (slow.kernel_seconds / fast.kernel_seconds - model.parallel_speedup).abs() < 1e-9,
            "a non-parallel backend must not receive the parallel discount"
        );
    }

    #[test]
    fn tiled_backend_is_priced_worse_on_first_sight_for_wide_outputs() {
        let model = CostModel::default();
        // Wide output: several tiles under the default tile width.
        let mut f = features(2000, 16000, 0.2);
        f.ncols = 4 * crate::DEFAULT_TILE_COLS;
        let plan = Plan::baseline();
        let reference = model.estimate(&f, &plan, 0.0);
        let tiled = model.estimate(&f, &plan.on_backend(crate::BackendId::TiledCpu), 0.0);
        assert!(
            tiled.kernel_seconds > reference.kernel_seconds,
            "the default model must keep the reference path ahead ({} vs {})",
            tiled.kernel_seconds,
            reference.kernel_seconds
        );
        // Narrow output: one tile, the backends price identically.
        f.ncols = 100;
        let narrow_ref = model.estimate(&f, &plan, 0.0);
        let narrow_tiled = model.estimate(&f, &plan.on_backend(crate::BackendId::TiledCpu), 0.0);
        assert_eq!(narrow_ref.kernel_seconds, narrow_tiled.kernel_seconds);
    }

    #[test]
    fn explicit_caps_override_the_builtin_descriptor() {
        let model = CostModel::default();
        let mut f = features(2000, 16000, 0.2);
        f.ncols = 64;
        let plan = Plan::baseline().on_backend(crate::BackendId::TiledCpu);
        // Builtin tile width (512): one tile, no surcharge.
        let builtin = model.estimate(&f, &plan, 0.0);
        // A narrow 16-column tile splits the same output into 4 tiles.
        let caps = crate::BackendCaps { tile_cols: Some(16), ..crate::BackendId::TiledCpu.caps() };
        let narrow = model.estimate_with_caps(&f, &plan, 0.0, &caps);
        assert!(narrow.kernel_seconds > builtin.kernel_seconds);
    }

    #[test]
    fn amortized_cost_is_monotone_decreasing_in_reuse() {
        let est = CostEstimate { prep_seconds: 8.0, kernel_seconds: 1.0 };
        assert!(est.amortized(1.0) > est.amortized(4.0));
        assert!(est.amortized(4.0) > est.amortized(64.0));
        // reuse below 1 is clamped: prep can never amortize to more than
        // its full cost.
        assert_eq!(est.amortized(0.0), est.amortized(1.0));
    }

    #[test]
    fn heavy_reorderings_cost_more_prep_than_cheap_ones() {
        let model = CostModel::default();
        let f = features(1000, 8000, 0.1);
        let rcm =
            model.estimate(&f, &Plan { reorder: Some(Reordering::Rcm), ..Plan::baseline() }, 0.5);
        let gp = model.estimate(
            &f,
            &Plan { reorder: Some(Reordering::Gp(16)), ..Plan::baseline() },
            0.5,
        );
        assert!(gp.prep_seconds > rcm.prep_seconds);
    }

    #[test]
    fn ewma_initializes_and_smooths() {
        let mut e = Ewma::new();
        assert_eq!(e.value(), 0.0);
        e.observe(10.0);
        assert_eq!(e.value(), 10.0);
        e.observe(0.0);
        assert!((e.value() - 7.0).abs() < 1e-12, "{}", e.value());
        assert_eq!(e.samples(), 2);
    }

    fn two_candidate_store(
        key: OperandKey,
        chosen_pred: f64,
        alt_pred: f64,
    ) -> (FeedbackStore, Plan, Plan) {
        let chosen = Plan::baseline();
        let alt = Plan {
            clustering: ClusteringStrategy::Fixed(4),
            kernel: KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let mut store = FeedbackStore::new();
        store.seed(
            key,
            vec![
                (chosen, CostEstimate { prep_seconds: 0.0, kernel_seconds: chosen_pred }),
                (alt, CostEstimate { prep_seconds: 0.0, kernel_seconds: alt_pred }),
            ],
        );
        (store, chosen, alt)
    }

    #[test]
    fn feedback_demotes_a_plan_observed_worse_than_predicted() {
        let key = OperandKey::of(&gen::grid::poisson2d(6, 6));
        // Model says the chosen plan is 2× faster than the alternative...
        let (mut store, chosen, alt) = two_candidate_store(key, 1.0, 2.0);
        let policy = PlanningPolicy { min_adapt_gain_seconds: 0.0, ..PlanningPolicy::default() };
        // ...but it keeps clocking 10× slower than predicted.
        for i in 0..MIN_OBSERVATIONS_TO_SWITCH {
            let state = store.record(key, chosen.knobs(), 10.0, &policy).unwrap();
            assert_eq!(state.executions, i + 1);
            if i + 1 < MIN_OBSERVATIONS_TO_SWITCH {
                assert!(
                    !state.switched,
                    "must not switch before {MIN_OBSERVATIONS_TO_SWITCH} samples"
                );
            } else {
                assert!(state.switched, "persistent 10× misprediction must demote");
                assert_eq!(state.replans, 1);
            }
        }
        assert_eq!(store.chosen_plan(&key).unwrap().knobs(), alt.knobs());
        assert_eq!(store.total_replans(), 1);
    }

    #[test]
    fn feedback_keeps_a_plan_that_performs_as_predicted() {
        let key = OperandKey::of(&gen::grid::poisson2d(7, 7));
        let (mut store, chosen, _) = two_candidate_store(key, 1.0, 2.0);
        let policy = PlanningPolicy { min_adapt_gain_seconds: 0.0, ..PlanningPolicy::default() };
        for _ in 0..10 {
            let state = store.record(key, chosen.knobs(), 1.05, &policy).unwrap();
            assert!(!state.switched);
        }
        assert_eq!(store.chosen_plan(&key).unwrap().knobs(), chosen.knobs());
        assert_eq!(store.total_replans(), 0);
    }

    #[test]
    fn noise_floor_suppresses_microsecond_replanning() {
        let key = OperandKey::of(&gen::grid::poisson2d(8, 8));
        let (mut store, chosen, _) = two_candidate_store(key, 1e-6, 2e-6);
        // Default policy: observed 10 µs ≪ the 200 µs floor, never switch.
        let policy = PlanningPolicy::default();
        for _ in 0..10 {
            let state = store.record(key, chosen.knobs(), 1e-5, &policy).unwrap();
            assert!(!state.switched);
        }
        assert_eq!(store.chosen_plan(&key).unwrap().knobs(), chosen.knobs());
    }

    #[test]
    fn prep_budget_bars_over_budget_switch_targets() {
        // The alternative looks far faster once the incumbent disappoints,
        // but its predicted preprocessing blows the policy's hard budget —
        // it must never become the chosen plan.
        let key = OperandKey::of(&gen::grid::poisson2d(13, 13));
        let chosen = Plan::baseline();
        let heavy = Plan {
            clustering: ClusteringStrategy::Hierarchical,
            kernel: KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let mut store = FeedbackStore::new();
        store.seed(
            key,
            vec![
                (chosen, CostEstimate { prep_seconds: 0.0, kernel_seconds: 1.0 }),
                (heavy, CostEstimate { prep_seconds: 10.0, kernel_seconds: 0.05 }),
            ],
        );
        let policy = PlanningPolicy {
            prep_budget_seconds: Some(0.0),
            min_adapt_gain_seconds: 0.0,
            ..PlanningPolicy::default()
        };
        for _ in 0..8 {
            let state = store.record(key, chosen.knobs(), 10.0, &policy).unwrap();
            assert!(!state.switched, "over-budget candidate must be ineligible");
        }
        assert_eq!(store.chosen_plan(&key).unwrap().knobs(), chosen.knobs());

        // Lifting the budget makes the same switch legal.
        let unbounded = PlanningPolicy { prep_budget_seconds: None, ..policy };
        let state = store.record(key, chosen.knobs(), 10.0, &unbounded).unwrap();
        assert!(state.switched);
        assert_eq!(store.chosen_plan(&key).unwrap().knobs(), heavy.knobs());
    }

    #[test]
    fn store_capacity_evicts_least_recently_recorded_operand() {
        let keys: Vec<OperandKey> =
            (4..8).map(|n| OperandKey::of(&gen::grid::poisson2d(n, n))).collect();
        let mut store = FeedbackStore::with_capacity(2);
        assert_eq!(store.capacity(), 2);
        let seed_one = |store: &mut FeedbackStore, k| {
            store.seed(k, vec![(Plan::baseline(), CostEstimate::default())]);
        };
        seed_one(&mut store, keys[0]);
        seed_one(&mut store, keys[1]);
        // Touch keys[0] so keys[1] becomes the eviction victim.
        let policy = PlanningPolicy::default();
        store.record(keys[0], Plan::baseline().knobs(), 1.0, &policy).unwrap();
        seed_one(&mut store, keys[2]);
        assert_eq!(store.len(), 2);
        assert!(store.chosen_plan(&keys[1]).is_none(), "stalest entry evicted");
        assert!(store.chosen_plan(&keys[0]).is_some());
        assert!(store.chosen_plan(&keys[2]).is_some());

        // Zero capacity disables feedback entirely.
        let mut off = FeedbackStore::with_capacity(0);
        seed_one(&mut off, keys[3]);
        assert!(off.is_empty());
        assert!(off.record(keys[3], Plan::baseline().knobs(), 1.0, &policy).is_none());
    }

    #[test]
    fn clear_forgets_every_operand() {
        let key = OperandKey::of(&gen::grid::poisson2d(12, 12));
        let (mut store, chosen, _) = two_candidate_store(key, 1.0, 2.0);
        let policy = PlanningPolicy::default();
        store.record(key, chosen.knobs(), 1.0, &policy).unwrap();
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert!(store.chosen_plan(&key).is_none());
        assert_eq!(store.total_replans(), 0);
    }

    #[test]
    fn frozen_policy_observes_but_never_switches() {
        let key = OperandKey::of(&gen::grid::poisson2d(9, 9));
        let (mut store, chosen, _) = two_candidate_store(key, 1.0, 2.0);
        let policy = PlanningPolicy { min_adapt_gain_seconds: 0.0, ..PlanningPolicy::frozen() };
        for _ in 0..6 {
            let state = store.record(key, chosen.knobs(), 50.0, &policy).unwrap();
            assert!(!state.switched);
        }
        let state = store.state(&key).unwrap();
        assert_eq!(store.chosen_plan(&key).unwrap().knobs(), chosen.knobs());
        assert!(state.observed_kernel_seconds > 10.0, "EWMA still accumulates");
        assert!(state.calibration > 10.0, "calibration still accumulates");
    }

    #[test]
    fn reseeding_preserves_observations() {
        let key = OperandKey::of(&gen::grid::poisson2d(10, 10));
        let (mut store, chosen, _) = two_candidate_store(key, 1.0, 2.0);
        let policy = PlanningPolicy::default();
        store.record(key, chosen.knobs(), 5.0, &policy).unwrap();
        store.seed(key, vec![(chosen, CostEstimate::default())]);
        let state = store.state(&key).unwrap();
        assert_eq!(state.executions, 1, "re-seed must not discard history");
        assert_eq!(state.candidates, 2, "re-seed must not replace the candidate set");
    }

    #[test]
    fn unseeded_and_unknown_knobs_are_ignored() {
        let key = OperandKey::of(&gen::grid::poisson2d(5, 5));
        let mut store = FeedbackStore::new();
        let policy = PlanningPolicy::default();
        assert!(store.record(key, Plan::baseline().knobs(), 1.0, &policy).is_none());
        store.seed(key, vec![(Plan::baseline(), CostEstimate::default())]);
        let alien = Plan {
            clustering: ClusteringStrategy::Hierarchical,
            kernel: KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        assert!(store.record(key, alien.knobs(), 1.0, &policy).is_none());
    }

    #[test]
    fn ewma_weight_tracks_samples_until_decayed() {
        let mut e = Ewma::new();
        e.observe(4.0);
        e.observe(4.0);
        assert_eq!(e.weight(), 2.0);
        e.decay(0.5);
        assert_eq!(e.weight(), 1.0);
        assert_eq!(e.samples(), 2, "raw count never decays");
        assert_eq!(e.value(), 4.0, "decay must not touch the smoothed value");
        e.observe(4.0);
        assert_eq!(e.weight(), 2.0, "fresh observations rebuild evidence");
    }

    #[test]
    fn half_life_decay_re_promotes_after_drift() {
        // Phase 1: the alternative is observed slow (a real measurement
        // under the old workload), so the incumbent wins and the
        // alternative's stale EWMA sits at 10s forever.
        let key = OperandKey::of(&gen::grid::poisson2d(14, 14));
        let chosen = Plan::baseline();
        let alt = Plan {
            clustering: ClusteringStrategy::Fixed(4),
            kernel: KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let seed = |store: &mut FeedbackStore| {
            store.seed(
                key,
                vec![
                    (chosen, CostEstimate { prep_seconds: 0.0, kernel_seconds: 1.0 }),
                    (alt, CostEstimate { prep_seconds: 0.0, kernel_seconds: 2.0 }),
                ],
            );
        };
        let run_drift = |policy: &PlanningPolicy| -> bool {
            let mut store = FeedbackStore::new();
            seed(&mut store);
            for _ in 0..4 {
                store.record(key, alt.knobs(), 10.0, policy).unwrap();
            }
            for _ in 0..4 {
                assert!(!store.record(key, chosen.knobs(), 1.0, policy).unwrap().switched);
            }
            // Drift: the incumbent now runs 10× slower (structure changed
            // between submissions). The alternative is never re-observed —
            // only decay can make it eligible again.
            let mut switched = false;
            for _ in 0..64 {
                switched |= store.record(key, chosen.knobs(), 10.0, policy).unwrap().switched;
                if switched {
                    break;
                }
            }
            switched
        };

        let frozen_history = PlanningPolicy {
            min_adapt_gain_seconds: 0.0,
            observation_half_life: None,
            ..PlanningPolicy::default()
        };
        assert!(
            !run_drift(&frozen_history),
            "without decay the stale 10s observation blocks re-promotion forever"
        );

        let decaying = PlanningPolicy {
            observation_half_life: Some(MIN_OBSERVATION_HALF_LIFE),
            ..frozen_history
        };
        assert!(
            run_drift(&decaying),
            "with decay the alternative's stale evidence fades and the model re-promotes it"
        );
    }

    #[test]
    fn continuous_observation_holds_switching_power_under_decay() {
        // Decay must not starve the loop: an incumbent observed every
        // round keeps an equilibrium weight above the switch threshold,
        // so a genuinely slow incumbent is still demoted.
        let key = OperandKey::of(&gen::grid::poisson2d(15, 15));
        let (mut store, chosen, alt) = two_candidate_store(key, 1.0, 2.0);
        let policy = PlanningPolicy {
            min_adapt_gain_seconds: 0.0,
            observation_half_life: Some(8),
            ..PlanningPolicy::default()
        };
        let mut switched = false;
        for _ in 0..10 {
            switched |= store.record(key, chosen.knobs(), 10.0, &policy).unwrap().switched;
        }
        assert!(switched, "persistent misprediction must still demote under decay");
        assert_eq!(store.chosen_plan(&key).unwrap().knobs(), alt.knobs());
    }

    #[test]
    fn surprise_promotion_switches_to_a_consistently_observed_faster_plan() {
        // The incumbent performs as predicted, but a forced ablation sweep
        // reveals the alternative is far faster than the model thought:
        // once the alternative has enough samples of its own, incumbent
        // observations trigger promotion.
        let key = OperandKey::of(&gen::grid::poisson2d(11, 11));
        let (mut store, chosen, alt) = two_candidate_store(key, 1.0, 2.0);
        let policy = PlanningPolicy { min_adapt_gain_seconds: 0.0, ..PlanningPolicy::default() };
        // One anomalously fast sample is NOT enough: under-sampled
        // candidates are priced at the worse of observation and
        // calibrated prediction, so a single lucky run cannot win.
        store.record(key, alt.knobs(), 0.2, &policy).unwrap();
        for _ in 0..MIN_OBSERVATIONS_TO_SWITCH {
            assert!(!store.record(key, chosen.knobs(), 1.0, &policy).unwrap().switched);
        }
        assert_eq!(store.chosen_plan(&key).unwrap().knobs(), chosen.knobs());

        // Consistent fast observations (a real ablation sweep) do promote.
        for _ in 0..MIN_OBSERVATIONS_TO_SWITCH {
            store.record(key, alt.knobs(), 0.2, &policy).unwrap();
        }
        let state = store.record(key, chosen.knobs(), 1.0, &policy).unwrap();
        assert!(state.switched, "consistently observed-faster alternative must be promoted");
        assert_eq!(store.chosen_plan(&key).unwrap().knobs(), alt.knobs());
    }
}
