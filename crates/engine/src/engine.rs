//! The engine: the front door composing plan → prepare → execute with
//! caching.

use crate::cache::{CacheKey, CacheStats, PlanCache};
use crate::cost::{FeedbackStore, OperandKey, PlanFeedbackState};
use crate::plan::{OutputShape, Plan, PlanKnobs};
use crate::planner::Planner;
use crate::prepared::PreparedMatrix;
use crate::report::{ExecutionReport, StageTimings};
use cw_obs::Tracer;
use cw_sparse::{checksum, fingerprint, CsrMatrix};
use std::sync::Arc;
use std::time::Instant;

/// Default number of prepared operands the engine keeps cached.
pub const DEFAULT_CACHE_CAPACITY: usize = 32;

/// Adaptive SpGEMM engine: profiles operands, cost-ranks candidate
/// pipelines, caches prepared matrices, executes multiplies under rayon,
/// and feeds observed timings back into plan selection.
///
/// ```
/// use cw_engine::Engine;
///
/// let a = cw_sparse::gen::grid::poisson2d(12, 12);
/// let mut engine = Engine::default();
///
/// // First multiply: profile → cost-rank → prepare → execute.
/// let (c1, first) = engine.multiply(&a, &a);
/// assert!(!first.cache_hit);
///
/// // Repeated traffic: the feedback store resolves the plan with one hash
/// // lookup, the plan cache supplies the prepared operand, and only the
/// // kernel runs. Observed timings keep calibrating the cost model.
/// let (c2, second) = engine.multiply(&a, &a);
/// assert!(second.cache_hit);
/// let fb = second.feedback.expect("auto traffic carries feedback state");
/// assert_eq!(fb.executions, 2);
/// assert!(c1.numerically_eq(&c2, 0.0));
/// ```
#[derive(Debug)]
pub struct Engine {
    planner: Planner,
    cache: PlanCache,
    feedback: FeedbackStore,
    /// Optional span sink: when set (and enabled), every resolution and
    /// execution retroactively records `plan`/`prepare`/`execute`/
    /// `postprocess` spans built from the *same* measured durations the
    /// [`ExecutionReport`] carries, so spans and reports reconcile
    /// exactly. `None` (the default) costs nothing.
    tracer: Option<Arc<Tracer>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(Planner::default(), DEFAULT_CACHE_CAPACITY)
    }
}

impl Engine {
    /// Engine with an explicit planner and cache capacity.
    pub fn new(planner: Planner, cache_capacity: usize) -> Engine {
        Engine {
            planner,
            cache: PlanCache::new(cache_capacity),
            feedback: FeedbackStore::new(),
            tracer: None,
        }
    }

    /// Engine over a caller-built cache — the hook service shards use to
    /// pick a [`crate::CacheBudget`] (e.g. byte-bounded) per shard.
    pub fn with_cache(planner: Planner, cache: PlanCache) -> Engine {
        Engine { planner, cache, feedback: FeedbackStore::new(), tracer: None }
    }

    /// Attach a span sink: subsequent resolutions and executions record
    /// retroactive `plan`/`prepare`/`execute`/`postprocess` spans into it
    /// (see [`cw_obs::Tracer`]). Spans land in the caller's current
    /// request trace when one is open, or in the tracer's ambient buffer.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// The attached span sink, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Engine whose planner starts from a fitted
    /// [`crate::CalibrationProfile`] (see [`Planner::with_profile`]):
    /// first-sight plan ranking uses this machine's measured constants
    /// instead of the hand-tuned defaults, and the feedback loop then
    /// fine-tunes per operand as usual.
    pub fn with_profile(profile: crate::CalibrationProfile) -> Engine {
        Engine::new(Planner::with_profile(Planner::default().seed, profile), DEFAULT_CACHE_CAPACITY)
    }

    /// The planner in use.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Read-only view of the execution-feedback store (per-fingerprint
    /// observed-timing EWMAs and the calibration state).
    pub fn feedback(&self) -> &FeedbackStore {
        &self.feedback
    }

    /// Read-only view of the plan cache (budget, resident bytes, length).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Cache counters (hits/misses/evictions/insertions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of prepared operands currently cached.
    pub fn cached_operands(&self) -> usize {
        self.cache.len()
    }

    /// Drops all cached operands (counters are kept). The feedback store
    /// is **not** touched: per-operand plan choices, observation EWMAs,
    /// and calibration survive, so re-prepared operands keep running their
    /// converged plans. Use [`Engine::reset`] to also forget what the
    /// feedback loop has learned.
    pub fn clear_cache(&mut self) {
        self.cache.clear()
    }

    /// Returns the engine to its just-constructed state: clears the plan
    /// cache *and* the feedback store (cache counters are kept, matching
    /// [`Engine::clear_cache`]). After a reset, the next sighting of every
    /// operand re-profiles, re-plans, and re-prepares from scratch —
    /// unlike `clear_cache`, which only drops the prepared bytes while the
    /// learned plan choices keep steering execution.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.feedback.clear();
    }

    /// Fingerprints `a` and returns its cached or freshly prepared operand
    /// (planning on miss). Useful for warming the cache ahead of traffic.
    pub fn prepare(&mut self, a: &CsrMatrix) -> Arc<PreparedMatrix> {
        self.lookup_or_prepare(a, None, OutputShape::Full).0
    }

    /// [`Engine::multiply`]/[`Engine::multiply_planned`] without the
    /// multiply: the cached-or-fresh prepared operand for `a` (under the
    /// planner's choice when `forced` is `None`), the preprocessing
    /// timings attributable to this call (zeroed on hits), and the
    /// cache-hit flag. Serving layers use this to resolve an operand once
    /// and run many right-hand sides against it without paying the
    /// per-call fingerprint + checksum lookup each time.
    pub fn prepare_with(
        &mut self,
        a: &CsrMatrix,
        forced: Option<Plan>,
    ) -> (Arc<PreparedMatrix>, StageTimings, bool) {
        self.lookup_or_prepare(a, forced, OutputShape::Full)
    }

    /// [`Engine::prepare_with`] for a non-[`OutputShape::Full`] request
    /// shape: the planner ranks candidates with `shape` stamped into every
    /// plan (so masked/top-k kernel cost is priced by estimated surviving
    /// output), and the resulting cache entry and feedback state are keyed
    /// by the shape — truncated traffic never collides with full-product
    /// traffic on the same operand. A forced plan's own shape wins over
    /// `shape` (a forced plan is a complete pipeline description).
    pub fn prepare_with_shape(
        &mut self,
        a: &CsrMatrix,
        forced: Option<Plan>,
        shape: OutputShape,
    ) -> (Arc<PreparedMatrix>, StageTimings, bool) {
        self.lookup_or_prepare(a, forced, shape)
    }

    /// `C = A · b` through the adaptive pipeline. Returns the product (rows
    /// in original order) and a report of the plan, cache outcome,
    /// per-stage timings, and feedback calibration state. The observed
    /// kernel time is fed back into plan selection: a plan that keeps
    /// underperforming its prediction is demoted on later calls (see
    /// [`crate::FeedbackStore`]).
    pub fn multiply(&mut self, a: &CsrMatrix, b: &CsrMatrix) -> (CsrMatrix, ExecutionReport) {
        self.multiply_shaped(a, b, OutputShape::Full, None)
    }

    /// `C = shape(A · b)`: [`Engine::multiply`] with an explicit
    /// [`OutputShape`]. `mask` must be `Some` exactly when `shape` is
    /// [`OutputShape::Masked`] (the mask is request data — it travels with
    /// the call, not with the cached preparation). Shaped requests get
    /// their own plan ranking, cache entries, and feedback state; see
    /// [`Engine::prepare_with_shape`].
    ///
    /// ```
    /// use cw_engine::{Engine, OutputShape};
    ///
    /// let a = cw_sparse::gen::grid::poisson2d(10, 10);
    /// let mut engine = Engine::default();
    /// let (top2, report) = engine.multiply_shaped(&a, &a, OutputShape::TopK(2), None);
    /// assert_eq!(report.plan.shape, OutputShape::TopK(2));
    /// assert!((0..top2.nrows).all(|i| top2.row(i).0.len() <= 2));
    /// ```
    pub fn multiply_shaped(
        &mut self,
        a: &CsrMatrix,
        b: &CsrMatrix,
        shape: OutputShape,
        mask: Option<&CsrMatrix>,
    ) -> (CsrMatrix, ExecutionReport) {
        let (prepared, timings, cache_hit) = self.lookup_or_prepare(a, None, shape);
        self.execute_prepared_shaped(&prepared, b, mask, timings, cache_hit)
    }

    /// `C = topk(A · b, k)` — each output row truncated to its `k`
    /// largest-magnitude entries (see [`cw_spgemm::row_topk`] for the
    /// exact tie-breaking contract). Sugar for [`Engine::multiply_shaped`]
    /// with [`OutputShape::TopK`].
    pub fn multiply_topk(
        &mut self,
        a: &CsrMatrix,
        b: &CsrMatrix,
        k: usize,
    ) -> (CsrMatrix, ExecutionReport) {
        self.multiply_shaped(a, b, OutputShape::TopK(k), None)
    }

    /// `C = (A · b) ∩ mask` — only product entries at positions present in
    /// `mask`'s sparsity pattern survive (see [`cw_spgemm::apply_mask`]).
    /// Sugar for [`Engine::multiply_shaped`] with [`OutputShape::Masked`].
    pub fn multiply_masked(
        &mut self,
        a: &CsrMatrix,
        b: &CsrMatrix,
        mask: &CsrMatrix,
    ) -> (CsrMatrix, ExecutionReport) {
        self.multiply_shaped(a, b, OutputShape::Masked, Some(mask))
    }

    /// Like [`Engine::multiply`] but with a caller-supplied plan instead of
    /// the planner's choice (cross-validation, ablations, manual tuning).
    /// Forced preparations are cached under their own `(matrix, plan)` key
    /// — repeated calls with the same matrix and knobs skip preprocessing,
    /// and a forced plan whose knobs differ from the planner's choice never
    /// shadows the auto entry (or vice versa). Forced timings still feed
    /// the observation store: a run whose knobs match a tracked candidate
    /// updates that candidate's EWMA — including the incumbent's, when the
    /// forced pipeline *is* the incumbent's — so ablation sweeps both
    /// reveal faster alternatives and legitimately sample the current
    /// choice.
    pub fn multiply_planned(
        &mut self,
        a: &CsrMatrix,
        b: &CsrMatrix,
        plan: Plan,
    ) -> (CsrMatrix, ExecutionReport) {
        let (prepared, timings, cache_hit) = self.lookup_or_prepare(a, Some(plan), plan.shape);
        self.execute_prepared(&prepared, b, timings, cache_hit)
    }

    /// Runs a resolved operand against `b`: times the kernel, records the
    /// observation into the feedback store, and assembles the
    /// [`ExecutionReport`]. The execute/record/report tail shared by
    /// [`Engine::multiply`], [`Engine::multiply_planned`], and serving
    /// layers that resolve operands once via [`Engine::prepare_with`] and
    /// run many right-hand sides.
    ///
    /// The recorded observation is normalized to the lhs-sized reference
    /// workload (`kernel × nnz(A)/nnz(B)` — kernel work scales with
    /// `nnz(B)` for a fixed prepared `A`), so plan comparisons stay
    /// apples-to-apples when the same operand serves right-hand sides of
    /// very different sizes. The scale is clamped to `[0.1, 10]`: beyond
    /// that, fixed per-call overheads dominate tiny multiplies and a
    /// linear extrapolation would record wildly inflated observations.
    /// Reported timings stay raw.
    pub fn execute_prepared(
        &mut self,
        prepared: &PreparedMatrix,
        b: &CsrMatrix,
        prep_timings: StageTimings,
        cache_hit: bool,
    ) -> (CsrMatrix, ExecutionReport) {
        self.execute_prepared_shaped(prepared, b, None, prep_timings, cache_hit)
    }

    /// [`Engine::execute_prepared`] with an explicit mask operand: the
    /// execute/record/report tail for operands prepared under
    /// [`OutputShape::Masked`] (pass the mask) or any other shape (pass
    /// `None`). Observations land in the feedback state keyed by the
    /// prepared plan's shape, so shaped and full traffic calibrate
    /// independently.
    pub fn execute_prepared_shaped(
        &mut self,
        prepared: &PreparedMatrix,
        b: &CsrMatrix,
        mask: Option<&CsrMatrix>,
        prep_timings: StageTimings,
        cache_hit: bool,
    ) -> (CsrMatrix, ExecutionReport) {
        let (c, kernel_seconds, postprocess_seconds) = prepared.multiply_shaped_timed(b, mask);
        if let Some(t) = self.tracer.as_deref() {
            // Retroactive spans from the measured stage durations: the end
            // of the postprocess span is "now", and the earlier boundaries
            // are reconstructed backwards, so span durations equal the
            // report's timings to nanosecond rounding.
            if t.enabled() {
                let end = t.now_ns();
                let kernel_end = end.saturating_sub((postprocess_seconds * 1e9) as u64);
                let kernel_start = kernel_end.saturating_sub((kernel_seconds * 1e9) as u64);
                t.record_span("execute", kernel_start, kernel_end);
                t.record_span("postprocess", kernel_end, end);
            }
        }
        let mut timings = prep_timings;
        timings.kernel_seconds = kernel_seconds;
        timings.postprocess_seconds = postprocess_seconds;
        let work_scale = (prepared.nnz().max(1) as f64 / b.nnz().max(1) as f64).clamp(0.1, 10.0);
        let feedback = self.record_observation(
            OperandKey {
                fingerprint: prepared.fingerprint,
                checksum: prepared.checksum,
                shape: prepared.plan.shape,
            },
            prepared.plan.knobs(),
            kernel_seconds * work_scale,
        );
        let report = ExecutionReport {
            plan: prepared.plan,
            backend: prepared.backend_id(),
            fingerprint: prepared.fingerprint,
            cache_hit,
            timings,
            output_nnz: c.nnz(),
            feedback,
        };
        (c, report)
    }

    /// `A · bᵢ` for every right-hand side, preparing `a` exactly once: the
    /// operand is resolved a single time and reused for every multiply
    /// (one lookup, many kernels — the same shape `cw-service` shards use
    /// for coalesced batches). The returned reports show the first
    /// multiply paying any preprocessing and the rest flagged `cache_hit`
    /// — batch-local reuse counts as a hit even when the cache itself is
    /// disabled, because no preprocessing was paid (the plan cache's own
    /// [`CacheStats`] counters are not inflated by it). Observed
    /// timings still feed the per-execution feedback loop; a re-plan they
    /// trigger takes effect from the *next* resolution of the operand, not
    /// mid-batch.
    pub fn multiply_batch(
        &mut self,
        a: &CsrMatrix,
        bs: &[CsrMatrix],
    ) -> Vec<(CsrMatrix, ExecutionReport)> {
        if bs.is_empty() {
            return Vec::new();
        }
        let (prepared, timings, cache_hit) = self.lookup_or_prepare(a, None, OutputShape::Full);
        bs.iter()
            .enumerate()
            .map(|(i, b)| {
                let (t, hit) =
                    if i == 0 { (timings, cache_hit) } else { (StageTimings::default(), true) };
                self.execute_prepared(&prepared, b, t, hit)
            })
            .collect()
    }

    /// Records one observed kernel time for plan `knobs` on the operand
    /// identified by `key`, returning the post-update calibration
    /// snapshot. This is the feedback entry point for callers that time
    /// prepared kernels themselves instead of going through
    /// [`Engine::execute_prepared`] — such callers should pass seconds
    /// normalized to the lhs-sized reference workload
    /// (`kernel × nnz(A)/nnz(B)`) when their right-hand sides vary in
    /// size, as `execute_prepared` does. Unseeded operands (forced-only
    /// traffic) and knobs outside the candidate set are ignored.
    pub fn record_observation(
        &mut self,
        key: OperandKey,
        knobs: PlanKnobs,
        kernel_seconds: f64,
    ) -> Option<PlanFeedbackState> {
        self.feedback.record(key, knobs, kernel_seconds, &self.planner.policy)
    }

    /// Calibration snapshot for `key`'s currently chosen plan, without
    /// recording anything.
    pub fn feedback_state(&self, key: &OperandKey) -> Option<PlanFeedbackState> {
        self.feedback.state(key)
    }

    /// Resolves the plan and prepared operand for `a`, consulting — in
    /// order — the forced plan, the feedback store's chosen plan (one hash
    /// lookup, no profiling), and finally the full cost-ranked planner (on
    /// an operand's first sighting, which also seeds the feedback store's
    /// candidate set). The cache is keyed by `(fingerprint, knobs)`, so a
    /// feedback re-plan prepares under a fresh entry while the demoted
    /// plan's preparation stays resident for a potential switch-back.
    /// Hits are verified against the full-content checksum (`O(nnz)`,
    /// negligible next to the multiply) before being trusted — a
    /// sampled-fingerprint collision re-prepares instead of returning a
    /// stale operand. Returns the operand, the preprocessing timings
    /// attributable to *this* call (reorder/cluster zeroed on hits — that
    /// work was done earlier — while `plan_seconds` reflects any planning
    /// this call actually performed), and the hit flag.
    fn lookup_or_prepare(
        &mut self,
        a: &CsrMatrix,
        forced: Option<Plan>,
        shape: OutputShape,
    ) -> (Arc<PreparedMatrix>, StageTimings, bool) {
        let fp = fingerprint(a);
        let sum = checksum(a);
        // A forced plan is a complete pipeline description — its own shape
        // wins, so forced traffic and its feedback stay self-consistent.
        let shape = forced.map_or(shape, |p| p.shape);
        // Feedback state is keyed by fingerprint *and* checksum, so a
        // sampled-fingerprint collision can never hand this operand
        // another matrix's plan (or pollute its timing observations). The
        // requested output shape joins the key: full and truncated traffic
        // on the same operand never share plans or observations.
        let operand = OperandKey { fingerprint: fp, checksum: sum, shape };
        let mut plan_seconds = 0.0;
        let plan = match forced {
            Some(p) => p,
            None => match self.feedback.chosen_plan(&operand) {
                Some(p) => p,
                None => {
                    let t0 = Instant::now();
                    let ranked = self.planner.plans_costed_shaped(a, shape);
                    let selected = ranked[0].plan;
                    self.feedback
                        .seed(operand, ranked.into_iter().map(|r| (r.plan, r.estimate)).collect());
                    plan_seconds = t0.elapsed().as_secs_f64();
                    selected
                }
            },
        };
        let key = CacheKey::new(fp, plan.knobs());
        let planner = &self.planner;
        // The plan names its backend; the planner's registry owns the
        // implementation (so a custom registry — narrower tiles, an
        // accelerator backend — changes execution without touching the
        // cache or feedback layers).
        let backend = planner.backends.resolve(plan.backend);
        let (prepared, hit) = self.cache.get_or_prepare(
            key,
            |cached| cached.checksum == sum,
            || PreparedMatrix::prepare_on(&backend, a, plan, planner.seed, &planner.cluster),
        );
        let timings = if hit {
            // Reorder/cluster work was done by whichever call prepared the
            // entry, but planning may still have happened on *this* call
            // (a first sighting — e.g. after feedback-store eviction —
            // whose preparation was already cache-resident).
            StageTimings { plan_seconds, ..StageTimings::default() }
        } else {
            StageTimings {
                plan_seconds,
                reorder_seconds: prepared.timings.reorder_seconds,
                cluster_seconds: prepared.timings.cluster_seconds,
                ..StageTimings::default()
            }
        };
        if let Some(t) = self.tracer.as_deref() {
            // Retroactive plan/prepare spans from the timings this call
            // actually paid — zero-length on cache hits, so every traced
            // request still shows the full plan → prepare → execute chain.
            if t.enabled() {
                let end = t.now_ns();
                let prep_ns = ((timings.reorder_seconds + timings.cluster_seconds) * 1e9) as u64;
                let prep_start = end.saturating_sub(prep_ns);
                let plan_start = prep_start.saturating_sub((timings.plan_seconds * 1e9) as u64);
                t.record_span("plan", plan_start, prep_start);
                t.record_span("prepare", prep_start, end);
            }
        }
        (prepared, timings, hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen;
    use cw_spgemm::spgemm_serial;

    #[test]
    fn multiply_matches_baseline_and_reports() {
        let a = gen::mesh::tri_mesh(10, 10, true, 2);
        let mut engine = Engine::default();
        let (c, report) = engine.multiply(&a, &a);
        assert!(c.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        assert!(!report.cache_hit);
        assert_eq!(report.output_nnz, c.nnz());
        assert!(report.timings.kernel_seconds > 0.0);
    }

    #[test]
    fn second_multiply_hits_cache_and_skips_preprocessing() {
        let a = gen::mesh::tri_mesh(12, 12, true, 3);
        let mut engine = Engine::default();
        let (_, first) = engine.multiply(&a, &a);
        let (c2, second) = engine.multiply(&a, &a);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(second.timings.preprocessing(), 0.0);
        assert!(c2.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn batch_prepares_once() {
        let a = gen::banded::block_diagonal(64, (4, 8), 0.1, 1);
        let bs: Vec<_> = (0..4).map(|s| gen::er::erdos_renyi(64, 3, s)).collect();
        let mut engine = Engine::default();
        let results = engine.multiply_batch(&a, &bs);
        assert_eq!(results.len(), 4);
        assert!(!results[0].1.cache_hit);
        for (i, (c, rep)) in results.iter().enumerate() {
            assert!(c.numerically_eq(&spgemm_serial(&a, &bs[i]), 1e-9), "rhs {i}");
            if i > 0 {
                assert!(rep.cache_hit, "rhs {i} should hit");
            }
        }
    }

    #[test]
    fn forced_and_auto_plans_cache_independently() {
        let a = gen::grid::poisson2d(9, 9);
        let mut engine = Engine::default();
        let (_, auto_first) = engine.multiply(&a, &a);
        assert!(!auto_first.cache_hit);

        // A forced plan never reuses the auto entry: its first call misses.
        let forced = Plan {
            clustering: crate::plan::ClusteringStrategy::Fixed(4),
            kernel: crate::plan::KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let (c, rep) = engine.multiply_planned(&a, &a, forced);
        assert!(c.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        assert!(!rep.cache_hit);

        // The forced preparation is cached under its own key...
        let (_, rep2) = engine.multiply_planned(&a, &a, forced);
        assert!(rep2.cache_hit);
        // ...identified by knobs, not by the rationale string.
        let same_knobs = Plan { rationale: "different words, same pipeline", ..forced };
        let (_, rep3) = engine.multiply_planned(&a, &a, same_knobs);
        assert!(rep3.cache_hit, "rationale must not affect cache identity");

        // And auto traffic still executes the planner's plan, not the
        // forced ablation plan.
        let (_, auto_again) = engine.multiply(&a, &a);
        assert!(auto_again.cache_hit);
        assert_eq!(auto_again.plan.knobs(), auto_first.plan.knobs());
    }

    #[test]
    fn stale_cache_entry_is_detected_by_checksum() {
        // Same dims/nnz, values edited at a position the sampled
        // fingerprint may not cover: the checksum must still catch it.
        let a = gen::er::erdos_renyi(400, 6, 11);
        let mut b = a.clone();
        let mid = b.vals.len() / 2 + 1;
        b.vals[mid] += 0.5;
        let mut engine = Engine::default();
        let (_, first) = engine.multiply(&a, &a);
        assert!(!first.cache_hit);
        let (cb, rep_b) = engine.multiply(&b, &b);
        // Whether or not the sampled fingerprints collide, the result must
        // be b's product, never a stale a-product.
        assert!(cb.numerically_eq(&spgemm_serial(&b, &b), 1e-9));
        if rep_b.fingerprint == first.fingerprint {
            assert!(!rep_b.cache_hit, "colliding fingerprint must be demoted");
            assert_eq!(engine.cache_stats().collisions, 1);
        }
    }

    #[test]
    fn prepare_warms_the_cache() {
        let a = gen::grid::poisson2d(10, 10);
        let mut engine = Engine::default();
        let _ = engine.prepare(&a);
        let (_, rep) = engine.multiply(&a, &a);
        assert!(rep.cache_hit);
    }

    #[test]
    fn byte_budget_engine_caches_within_budget() {
        let a = gen::grid::poisson2d(12, 12);
        // Generous budget: the prepared operand fits, so the second call hits.
        let mut engine = Engine::with_cache(
            Planner::default(),
            crate::cache::PlanCache::with_budget(crate::cache::CacheBudget::bytes(16 << 20)),
        );
        let (_, r1) = engine.multiply(&a, &a);
        let (_, r2) = engine.multiply(&a, &a);
        assert!(!r1.cache_hit && r2.cache_hit);
        assert!(engine.cache().bytes() > 0);
        assert!(engine.cache().bytes() <= 16 << 20);
    }

    #[test]
    fn reports_carry_the_executing_backend() {
        let a = gen::grid::poisson2d(9, 9);
        let mut engine = Engine::default();
        let (_, auto_rep) = engine.multiply(&a, &a);
        assert_eq!(auto_rep.backend, crate::backend::BackendId::ParallelCpu);

        let forced = Plan::baseline().on_backend(crate::backend::BackendId::SerialReference);
        let (c, rep) = engine.multiply_planned(&a, &a, forced);
        assert_eq!(rep.backend, crate::backend::BackendId::SerialReference);
        assert!(c.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        // Same pipeline, different backend: a distinct cache entry.
        assert!(!rep.cache_hit);
        let (_, rep2) = engine.multiply_planned(&a, &a, forced);
        assert!(rep2.cache_hit, "backend-forced preparations are cached under their own key");
    }

    #[test]
    fn reset_clears_cache_and_feedback_while_clear_cache_keeps_feedback() {
        let a = gen::grid::poisson2d(10, 10);
        let key = OperandKey::of(&a);
        let mut engine = Engine::default();
        let _ = engine.multiply(&a, &a);
        assert!(engine.feedback_state(&key).is_some());
        assert_eq!(engine.cached_operands(), 1);

        // clear_cache drops the bytes but keeps the learned state: the
        // next multiply re-prepares without re-planning.
        engine.clear_cache();
        assert_eq!(engine.cached_operands(), 0);
        assert!(engine.feedback_state(&key).is_some(), "clear_cache must keep feedback");
        let (_, rep) = engine.multiply(&a, &a);
        assert!(!rep.cache_hit);
        assert_eq!(rep.timings.plan_seconds, 0.0, "plan came from the feedback fast path");

        // reset forgets everything: the next multiply re-plans too.
        engine.reset();
        assert_eq!(engine.cached_operands(), 0);
        assert!(engine.feedback_state(&key).is_none(), "reset must clear feedback");
        assert!(engine.feedback().is_empty());
        let (_, rep) = engine.multiply(&a, &a);
        assert!(!rep.cache_hit);
        assert!(rep.timings.plan_seconds > 0.0, "first sighting after reset re-plans");
    }

    #[test]
    fn tracer_spans_reconcile_with_report_timings() {
        let a = gen::mesh::tri_mesh(10, 10, true, 2);
        let tracer = Arc::new(cw_obs::Tracer::new(8));
        tracer.set_enabled(true);
        let mut engine = Engine::default();
        engine.set_tracer(Arc::clone(&tracer));
        assert!(engine.tracer().is_some());

        tracer.begin_trace(1);
        let (_, report) = engine.multiply(&a, &a);
        tracer.end_trace(1, "request", 0);

        let traces = tracer.flight_traces();
        let tr = &traces[0];
        assert!(tr.nests_correctly(), "engine spans must nest: {tr:?}");
        for (name, expect) in [
            ("plan", report.timings.plan_seconds),
            ("prepare", report.timings.reorder_seconds + report.timings.cluster_seconds),
            ("execute", report.timings.kernel_seconds),
            ("postprocess", report.timings.postprocess_seconds),
        ] {
            let span = tr.span(name).unwrap_or_else(|| panic!("missing span {name}"));
            let got = span.duration_seconds();
            assert!(
                (got - expect).abs() < 1e-6,
                "span {name} ({got}s) must reconcile with report ({expect}s)"
            );
        }

        // A cache hit still emits the full chain, with plan/prepare
        // (near-)zero-length.
        tracer.begin_trace(2);
        let (_, again) = engine.multiply(&a, &a);
        tracer.end_trace(2, "request", 0);
        assert!(again.cache_hit);
        let tr = &tracer.flight_traces()[1];
        assert!(tr.nests_correctly());
        assert!(tr.span("plan").unwrap().duration_seconds() < 1e-6);
        assert!(tr.span("prepare").unwrap().duration_ns() == 0);
        assert!(tr.span("execute").unwrap().duration_ns() > 0);
    }

    #[test]
    fn disabled_tracer_records_no_engine_spans() {
        let a = gen::grid::poisson2d(8, 8);
        let tracer = Arc::new(cw_obs::Tracer::new(8));
        let mut engine = Engine::default();
        engine.set_tracer(Arc::clone(&tracer));
        let _ = engine.multiply(&a, &a);
        assert!(tracer.ambient_spans().is_empty());
        assert!(tracer.flight_traces().is_empty());
    }

    #[test]
    fn shaped_multiplies_match_postprocessed_oracle() {
        let a = gen::mesh::tri_mesh(10, 10, true, 2);
        let full = spgemm_serial(&a, &a);
        let mut engine = Engine::default();

        let (topk, rep) = engine.multiply_topk(&a, &a, 3);
        assert!(topk.numerically_eq(&cw_spgemm::row_topk(&full, 3), 0.0));
        assert_eq!(rep.plan.shape, crate::plan::OutputShape::TopK(3));

        // Mask: the diagonal — keep only C[i,i].
        let mask = CsrMatrix::identity(a.nrows);
        let (masked, rep) = engine.multiply_masked(&a, &a, &mask);
        assert!(masked.numerically_eq(&cw_spgemm::apply_mask(&full, &mask), 0.0));
        assert_eq!(rep.plan.shape, crate::plan::OutputShape::Masked);
        assert_eq!(rep.output_nnz, masked.nnz());
    }

    #[test]
    fn output_shapes_never_collide_in_cache_or_feedback() {
        let a = gen::grid::poisson2d(10, 10);
        let mut engine = Engine::default();

        // Three shapes over the same operand: each first call must miss
        // (its own cache entry), each second call must hit its own entry.
        let (full, r_full) = engine.multiply(&a, &a);
        let (top2, r_top) = engine.multiply_topk(&a, &a, 2);
        let mask = CsrMatrix::identity(a.nrows);
        let (_, r_mask) = engine.multiply_masked(&a, &a, &mask);
        assert!(!r_full.cache_hit && !r_top.cache_hit && !r_mask.cache_hit);
        assert_eq!(engine.cached_operands(), 3);

        let (full2, r_full2) = engine.multiply(&a, &a);
        let (top2_again, r_top2) = engine.multiply_topk(&a, &a, 2);
        let (_, r_mask2) = engine.multiply_masked(&a, &a, &mask);
        assert!(r_full2.cache_hit && r_top2.cache_hit && r_mask2.cache_hit);
        assert!(full.numerically_eq(&full2, 0.0));
        assert!(top2.numerically_eq(&top2_again, 0.0));
        // A different k is a different shape: its own entry, not a hit.
        let (_, r_top3) = engine.multiply_topk(&a, &a, 3);
        assert!(!r_top3.cache_hit);

        // Feedback state is shape-keyed too: each shape accumulated only
        // its own executions.
        let sum = cw_sparse::checksum(&a);
        let fp = cw_sparse::fingerprint(&a);
        for shape in [
            crate::plan::OutputShape::Full,
            crate::plan::OutputShape::TopK(2),
            crate::plan::OutputShape::Masked,
        ] {
            let key = OperandKey { fingerprint: fp, checksum: sum, shape };
            let st = engine.feedback_state(&key).expect("each shape has its own feedback");
            assert_eq!(st.executions, 2, "shape {shape:?} saw exactly its own traffic");
        }
    }

    #[test]
    fn zero_capacity_engine_still_computes_correctly() {
        let a = gen::grid::poisson2d(8, 8);
        let mut engine = Engine::new(Planner::default(), 0);
        let (c1, r1) = engine.multiply(&a, &a);
        let (c2, r2) = engine.multiply(&a, &a);
        assert!(!r1.cache_hit && !r2.cache_hit);
        assert!(c1.numerically_eq(&c2, 0.0));
    }
}
