//! **cw-engine** — the adaptive plan/prepare/execute front door for
//! cluster-wise SpGEMM.
//!
//! The paper's techniques (row reordering, cluster-wise computation over
//! `CSR_Cluster`) only pay off when their preprocessing cost is amortized
//! across repeated multiplications (§4.5, Fig. 10), and its §5 future work
//! asks for an automatic pipeline that "predicts the best choice of
//! reordering combined with the best clustering scheme". This crate is that
//! pipeline, split into five explicit stages (see `docs/ARCHITECTURE.md`
//! at the workspace root for the cross-crate picture):
//!
//! 1. **Plan** — [`Planner`] computes the structural [`Profile`] (via
//!    `cw-reorder`'s advisor), prices every candidate [`Plan`] —
//!    reordering × clustering strategy × kernel × accumulator ×
//!    parallelism knobs × **execution backend** — with the analytic
//!    [`CostModel`], and ranks them by cost amortized under the caller's
//!    [`PlanningPolicy`] (expected reuse, optional preprocessing budget).
//!    [`Planner::plans_ranked`] is the budget-aware fall-through list;
//!    [`Planner::plan_static`] keeps the pre-cost-model rule-based choice
//!    for ablation.
//! 2. **Prepare** — [`PreparedMatrix::prepare`] materializes the plan once
//!    *on the plan's backend*: the [`ExecutionBackend`] owns its
//!    backend-specific payload (permutation computed and applied,
//!    `CSR_Cluster` built, tile geometry chosen), with per-stage timings
//!    recorded. Prepared operands are reusable across any number of
//!    right-hand sides and always return results in the original row
//!    order.
//! 3. **Cache** — [`PlanCache`] maps cheap matrix fingerprints
//!    ([`cw_sparse::fingerprint()`]) plus plan knobs to prepared operands
//!    under a [`CacheBudget`] — entry-bounded or byte-bounded LRU, with an
//!    optional TTL — with hit/miss/eviction/expiry counters, so repeated
//!    traffic on the same matrix skips preprocessing entirely. Keying by
//!    `(fingerprint, knobs)` — the knobs include the backend — lets
//!    preparations under different plans and backends coexist, which is
//!    what makes feedback re-planning cheap to undo.
//! 4. **Execute** — [`Engine::multiply`] / [`Engine::multiply_batch`]
//!    dispatch the prepared kernel through its backend ([`ParallelCpu`]
//!    rayon by default, [`SerialReference`] oracle, [`TiledCpu`]
//!    cache-blocked, [`AdaptiveCpu`] per-row kernel zoo — or anything
//!    registered in the planner's
//!    [`BackendRegistry`]) and return an [`ExecutionReport`] with the
//!    backend id and per-stage wall-clock timings.
//! 5. **Feed back** — the engine's [`FeedbackStore`] keeps per-fingerprint
//!    EWMAs of observed kernel seconds per candidate plan — backends
//!    included, so per-backend timings are learned exactly like any other
//!    knob. Observed timings correct the cost model's estimates after
//!    every execution: plans that underperform their prediction are
//!    demoted, observed-fast plans (and backends) promoted, so repeated
//!    traffic converges on the empirically fastest plan (`cw-service`
//!    threads this loop through every shard). Under
//!    [`PlanningPolicy::observation_half_life`] the evidence decays, so
//!    operands whose performance drifts between submissions re-promote.
//!
//! The [`calibrate`] module closes the same loop *offline*: a
//! [`Calibrator`] fits the [`CostModel`]'s constants (and each backend's
//! `kernel_scale`) from measured bench-corpus runs, and the resulting
//! [`CalibrationProfile`] — versioned JSON, `profiles/default.json` at
//! the workspace root — loads at construction via
//! [`Planner::with_profile`] / [`Engine::with_profile`], so first-sight
//! planning starts from this machine's measured constants instead of the
//! hand-tuned defaults.
//!
//! The requested **output shape** — full product, masked by a sparsity
//! pattern, or row-wise top-k ([`OutputShape`]) — is a first-class axis of
//! all five stages: it lives in [`PlanKnobs`], so cache entries and
//! feedback state for truncated traffic never collide with full-product
//! traffic on the same operand, and the [`CostModel`] scales kernel cost
//! by the estimated surviving-output fraction so the planner can justify
//! heavier preparation when most of the product is thrown away. See
//! [`Engine::multiply_shaped`] / [`Engine::multiply_topk`] /
//! [`Engine::multiply_masked`].
//!
//! ```
//! use cw_engine::Engine;
//!
//! let a = cw_sparse::gen::mesh::tri_mesh(16, 16, true, 42);
//! let mut engine = Engine::default();
//!
//! // First multiply: profile → cost-rank → prepare → execute.
//! let (c1, first) = engine.multiply(&a, &a);
//! assert!(!first.cache_hit);
//!
//! // Repeated traffic: the feedback store resolves the plan, the
//! // fingerprint hits the plan cache, preprocessing is skipped, only the
//! // kernel runs — and the observation calibrates the cost model.
//! let (c2, second) = engine.multiply(&a, &a);
//! assert!(second.cache_hit);
//! assert_eq!(second.timings.preprocessing(), 0.0);
//! assert!(second.feedback.is_some());
//! assert!(c1.numerically_eq(&c2, 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cache;
pub mod calibrate;
mod cost;
mod engine;
mod plan;
mod planner;
mod prepared;
mod report;

pub use backend::{
    apply_output_shape, materialize_cpu, AdaptiveCpu, BackendCaps, BackendId, BackendPayload,
    BackendRegistry, CpuOperand, ExecutionBackend, ParallelCpu, SerialReference, TiledCpu,
    TiledOperand, DEFAULT_TILE_COLS,
};
pub use cache::{CacheBound, CacheBudget, CacheCounters, CacheKey, CacheStats, PlanCache};
pub use calibrate::{
    BackendCalibration, CalibrationProfile, CalibrationSample, Calibrator, ProfileParseError,
    PROFILE_SCHEMA_VERSION,
};
pub use cost::{
    CostEstimate, CostModel, Ewma, FeedbackStore, OperandFeatures, OperandKey, PlanFeedbackState,
    PlanningPolicy, CALIBRATION_CLAMP, DEFAULT_FEEDBACK_CAPACITY, EWMA_ALPHA,
    MASKED_SURVIVING_FRACTION, MIN_OBSERVATIONS_TO_SWITCH, MIN_OBSERVATION_HALF_LIFE,
    MIN_TOPK_SURVIVING_FRACTION, STALE_OBSERVATION_WEIGHT, SWITCH_MARGIN,
};
pub use engine::{Engine, DEFAULT_CACHE_CAPACITY};
pub use plan::{ClusteringStrategy, KernelChoice, OutputShape, Plan, PlanKnobs};
pub use planner::{Planner, RankedPlan, DENSE_ACC_COL_THRESHOLD, PARALLEL_ROW_THRESHOLD};
pub use prepared::{PrepTimings, PreparedMatrix};
pub use report::{ExecutionReport, StageTimings};

// Re-exported so engine callers can name advisor types without depending
// on cw-reorder directly.
pub use cw_reorder::advisor::{Advice, Profile, RankedSuggestion, Suggestion};
