//! **cw-engine** — the adaptive plan/prepare/execute front door for
//! cluster-wise SpGEMM.
//!
//! The paper's techniques (row reordering, cluster-wise computation over
//! `CSR_Cluster`) only pay off when their preprocessing cost is amortized
//! across repeated multiplications (§4.5, Fig. 10), and its §5 future work
//! asks for an automatic pipeline that "predicts the best choice of
//! reordering combined with the best clustering scheme". This crate is that
//! pipeline, split into four explicit stages:
//!
//! 1. **Plan** — [`Planner`] computes the structural [`Profile`]
//!    (via `cw-reorder`'s advisor) and emits a [`Plan`]: reordering ×
//!    clustering strategy × kernel (row-wise vs cluster-wise) ×
//!    accumulator × parallelism knobs, with a human-readable rationale.
//! 2. **Prepare** — [`PreparedMatrix::prepare`] materializes the plan
//!    once: permutation computed and applied, `CSR_Cluster` built,
//!    per-stage timings recorded. Prepared operands are reusable across
//!    any number of right-hand sides and always return results in the
//!    original row order.
//! 3. **Cache** — [`PlanCache`] maps cheap matrix fingerprints
//!    ([`cw_sparse::fingerprint`]) to prepared operands with LRU eviction
//!    and hit/miss/eviction counters, so repeated traffic on the same
//!    matrix skips preprocessing entirely.
//! 4. **Execute** — [`Engine::multiply`] / [`Engine::multiply_batch`] run
//!    the prepared kernel under rayon and return an [`ExecutionReport`]
//!    with per-stage wall-clock timings.
//!
//! ```
//! use cw_engine::Engine;
//!
//! let a = cw_sparse::gen::mesh::tri_mesh(16, 16, true, 42);
//! let mut engine = Engine::default();
//!
//! // First multiply: profile → plan → prepare → execute.
//! let (c1, first) = engine.multiply(&a, &a);
//! assert!(!first.cache_hit);
//!
//! // Repeated traffic: fingerprint hits the plan cache, preprocessing
//! // is skipped, only the kernel runs.
//! let (c2, second) = engine.multiply(&a, &a);
//! assert!(second.cache_hit);
//! assert_eq!(second.timings.preprocessing(), 0.0);
//! assert!(c1.numerically_eq(&c2, 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod plan;
mod planner;
mod prepared;
mod report;

pub use cache::{CacheBudget, CacheKey, CacheStats, PlanCache};
pub use engine::{Engine, DEFAULT_CACHE_CAPACITY};
pub use plan::{ClusteringStrategy, KernelChoice, Plan, PlanKnobs};
pub use planner::{Planner, DENSE_ACC_COL_THRESHOLD, PARALLEL_ROW_THRESHOLD};
pub use prepared::{PrepTimings, PreparedMatrix};
pub use report::{ExecutionReport, StageTimings};

// Re-exported so engine callers can name advisor types without depending
// on cw-reorder directly.
pub use cw_reorder::advisor::{Profile, Suggestion};
