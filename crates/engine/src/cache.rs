//! The plan cache: (fingerprint, plan knobs — backend included) → prepared
//! operand, with LRU eviction, optional TTL expiry, and verified hits.
//!
//! Reordering and cluster construction only pay off amortized over
//! repeated multiplications (paper §4.5, Fig. 10). The cache closes the
//! loop for *serving* workloads: repeated traffic on the same matrix hits
//! the [`cw_sparse::fingerprint`] key and reuses the full
//! [`PreparedMatrix`] — permutation, `CSR_Cluster`, everything — skipping
//! preprocessing entirely. Entries are shared out as `Arc`s, so hits cost
//! one hash lookup and a refcount bump.
//!
//! Two design points guard correctness:
//!
//! * **Keys carry the plan knobs.** Every entry is keyed by
//!   `(fingerprint, knobs)` ([`CacheKey`]) — and the knobs include the
//!   execution backend, so the effective key is
//!   `(fingerprint, pipeline, backend)`. Preparations under different
//!   plans — a forced ablation plan, the planner's first choice, a later
//!   feedback re-plan, the same pipeline on a different backend — coexist
//!   without clobbering each other. When the feedback loop switches an
//!   operand's plan (or backend), the old preparation stays resident:
//!   switching *back* is a cache hit, not a re-prepare. Two plans with
//!   equal knobs produce byte-identical prepared operands, so sharing an
//!   entry between them is sound by construction.
//! * **Hits are verified.** The sampled fingerprint is a cheap lookup key,
//!   not an identity proof; [`PlanCache::get_or_prepare`] re-checks the
//!   full-content checksum before trusting a hit, demoting collisions to
//!   misses (counted in [`CacheStats::collisions`]).

use crate::plan::PlanKnobs;
use crate::prepared::PreparedMatrix;
use cw_obs::{Counter, MetricsRegistry};
use cw_sparse::MatrixFingerprint;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cache key: the operand's fingerprint plus the behavior knobs of the
/// plan its preparation realizes. Identifying preparations by knobs (not
/// full [`crate::Plan`] equality) means plans differing only in their
/// `rationale` string share an entry, and preparations under genuinely
/// different pipelines — auto, forced, feedback-re-planned, or the same
/// pipeline on a different backend — never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Sampled fingerprint of the operand.
    pub fingerprint: MatrixFingerprint,
    /// Behavior knobs of the preparing plan (backend included).
    pub knobs: PlanKnobs,
}

impl CacheKey {
    /// Key for a preparation of the `fingerprint` operand under `knobs`.
    pub fn new(fingerprint: MatrixFingerprint, knobs: PlanKnobs) -> CacheKey {
        CacheKey { fingerprint, knobs }
    }
}

/// The size bound of a [`CacheBudget`]: a maximum entry count (the
/// original behavior and the default) or a maximum resident byte budget
/// sized from [`PreparedMatrix::approx_bytes`]. Byte budgets matter for
/// serving: prepared operands vary by orders of magnitude in size, so an
/// entry count bounds nothing useful about memory.
///
/// Exact semantics, shared by both variants:
///
/// * Eviction is LRU: when an insert would exceed the bound, the
///   least-recently-*used* entries (lookups refresh recency, inserts count
///   as a use) are dropped until the new entry fits.
/// * Replacing an entry under its own key first releases the old entry's
///   footprint, so a same-key re-insert never evicts a different entry.
/// * Evicted operands are not destroyed — entries are `Arc`s, so callers
///   already holding one keep a valid prepared operand; the cache merely
///   forgets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheBound {
    /// At most this many prepared operands, regardless of their size.
    /// `Entries(0)` disables caching entirely: every lookup misses and
    /// every insert is silently dropped (used by benchmarks to force the
    /// cold path).
    Entries(usize),
    /// At most this many resident bytes across all prepared operands, as
    /// measured by [`PreparedMatrix::approx_bytes`] at insert time. An
    /// operand larger than the whole budget is never cached (inserting it
    /// is a silent no-op, mirroring `Entries(0)`); anything smaller may
    /// evict every other entry to fit.
    Bytes(usize),
}

/// What bounds a [`PlanCache`]: a size [`CacheBound`] plus an optional
/// time-to-live. With a TTL, an entry older than `ttl` (measured from its
/// *insertion*, not its last use — a hot entry for a matrix that stopped
/// mattering is exactly what TTLs exist to drop) expires lazily: the next
/// lookup treats it as a miss, removes it, and counts it under
/// [`CacheStats::expirations`]. [`PlanCache::purge_expired`] sweeps
/// eagerly for callers that want the memory back without waiting for
/// traffic.
///
/// ```
/// use cw_engine::{CacheBudget, PlanCache};
/// use std::time::Duration;
///
/// // Entry-bounded: at most 8 prepared operands, any size, forever.
/// let by_count = PlanCache::with_budget(CacheBudget::entries(8));
/// assert_eq!(by_count.capacity(), 8);
///
/// // Byte-bounded with a TTL: at most 64 MiB, nothing older than 10 min.
/// let budget = CacheBudget::bytes(64 << 20).with_ttl(Duration::from_secs(600));
/// let by_bytes = PlanCache::with_budget(budget);
/// assert_eq!(by_bytes.capacity(), usize::MAX); // entry count unbounded
/// assert_eq!(by_bytes.bytes(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBudget {
    /// The size bound (entries or bytes).
    pub bound: CacheBound,
    /// Optional time-to-live since insertion; `None` = entries never
    /// expire by age.
    pub ttl: Option<Duration>,
}

impl CacheBudget {
    /// Entry-count bound with no TTL (see [`CacheBound::Entries`]).
    pub fn entries(n: usize) -> CacheBudget {
        CacheBudget { bound: CacheBound::Entries(n), ttl: None }
    }

    /// Resident-byte bound with no TTL (see [`CacheBound::Bytes`]).
    pub fn bytes(b: usize) -> CacheBudget {
        CacheBudget { bound: CacheBound::Bytes(b), ttl: None }
    }

    /// The same size bound with entries additionally expiring `ttl` after
    /// insertion. A zero TTL expires everything on its next lookup.
    pub fn with_ttl(self, ttl: Duration) -> CacheBudget {
        CacheBudget { ttl: Some(ttl), ..self }
    }
}

/// Hit/miss/eviction counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a prepared operand (verified, when a verifier
    /// was supplied).
    pub hits: u64,
    /// Lookups that found nothing (expired entries included).
    pub misses: u64,
    /// Fingerprint collisions: lookups whose entry failed checksum
    /// verification (also counted under `misses`).
    pub collisions: u64,
    /// Entries evicted to respect the size bound.
    pub evictions: u64,
    /// Entries dropped because they outlived the budget's TTL (lazy, on
    /// lookup, also counted under `misses` — or eager, via
    /// [`PlanCache::purge_expired`], counted here only).
    pub expirations: u64,
    /// Entries inserted over the cache's lifetime.
    pub insertions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The live atomic counters behind a cache's [`CacheStats`].
///
/// Since the observability pass, the cache's bookkeeping *is* a set of
/// shareable `cw_obs` counters rather than plain integers: cloning this
/// struct clones `Arc` handles onto the same cells, so a metrics registry
/// (via [`PlanCache::bind_metrics`]) and the legacy [`PlanCache::stats`]
/// snapshot observe identical values by construction.
#[derive(Debug, Clone, Default)]
pub struct CacheCounters {
    /// Verified hits (see [`CacheStats::hits`]).
    pub hits: Arc<Counter>,
    /// Misses, expired lookups included (see [`CacheStats::misses`]).
    pub misses: Arc<Counter>,
    /// Failed-verification collisions (see [`CacheStats::collisions`]).
    pub collisions: Arc<Counter>,
    /// Size-bound evictions (see [`CacheStats::evictions`]).
    pub evictions: Arc<Counter>,
    /// TTL expirations (see [`CacheStats::expirations`]).
    pub expirations: Arc<Counter>,
    /// Lifetime insertions (see [`CacheStats::insertions`]).
    pub insertions: Arc<Counter>,
}

impl CacheCounters {
    /// The current values as a plain [`CacheStats`] snapshot.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            collisions: self.collisions.get(),
            evictions: self.evictions.get(),
            expirations: self.expirations.get(),
            insertions: self.insertions.get(),
        }
    }

    /// Adopt these counters into `registry` under
    /// `{prefix}hits`, `{prefix}misses`, `{prefix}collisions`,
    /// `{prefix}evictions`, `{prefix}expirations`, `{prefix}insertions`.
    pub fn bind_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.bind_counter(&format!("{prefix}hits"), Arc::clone(&self.hits));
        registry.bind_counter(&format!("{prefix}misses"), Arc::clone(&self.misses));
        registry.bind_counter(&format!("{prefix}collisions"), Arc::clone(&self.collisions));
        registry.bind_counter(&format!("{prefix}evictions"), Arc::clone(&self.evictions));
        registry.bind_counter(&format!("{prefix}expirations"), Arc::clone(&self.expirations));
        registry.bind_counter(&format!("{prefix}insertions"), Arc::clone(&self.insertions));
    }
}

/// One resident cache entry: the operand, its LRU recency tick, its byte
/// footprint (frozen at insert time), and its insertion instant (TTL).
#[derive(Debug)]
struct CacheEntry {
    prepared: Arc<PreparedMatrix>,
    last_used: u64,
    bytes: usize,
    inserted_at: Instant,
}

/// A bounded LRU map from [`CacheKey`]s to prepared operands.
///
/// ```
/// use cw_engine::{CacheKey, Plan, PlanCache, PreparedMatrix};
/// use std::sync::Arc;
///
/// let a = cw_sparse::gen::grid::poisson2d(8, 8);
/// let plan = Plan::baseline();
/// let key = CacheKey::new(cw_sparse::fingerprint(&a), plan.knobs());
///
/// let mut cache = PlanCache::new(4);
/// assert!(cache.get(&key).is_none()); // cold
///
/// let prepared = PreparedMatrix::prepare(&a, plan, 7, &Default::default());
/// cache.insert(key, Arc::new(prepared));
/// assert!(cache.get(&key).is_some()); // warm: one hash lookup + Arc clone
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct PlanCache {
    budget: CacheBudget,
    tick: u64,
    bytes_used: usize,
    entries: HashMap<CacheKey, CacheEntry>,
    counters: CacheCounters,
}

impl PlanCache {
    /// Cache holding at most `capacity` prepared operands (`capacity == 0`
    /// disables caching: every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache::with_budget(CacheBudget::entries(capacity))
    }

    /// Cache bounded by an explicit [`CacheBudget`].
    pub fn with_budget(budget: CacheBudget) -> PlanCache {
        PlanCache {
            budget,
            tick: 0,
            bytes_used: 0,
            entries: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Number of cached operands. Entries past their TTL still count until
    /// a lookup or [`PlanCache::purge_expired`] removes them (expiry is
    /// lazy).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured budget.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// Entry-count bound (`usize::MAX` under a byte budget, which does not
    /// limit entry count).
    pub fn capacity(&self) -> usize {
        match self.budget.bound {
            CacheBound::Entries(n) => n,
            CacheBound::Bytes(_) => usize::MAX,
        }
    }

    /// Resident bytes across all cached operands (per
    /// [`PreparedMatrix::approx_bytes`]).
    pub fn bytes(&self) -> usize {
        self.bytes_used
    }

    /// Lifetime counters, snapshotted.
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// The live atomic counters behind [`PlanCache::stats`]. Clone them to
    /// observe this cache from another thread, or bind them into a
    /// [`MetricsRegistry`] (see [`PlanCache::bind_metrics`]).
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Adopt this cache's counters into `registry` under `prefix` (e.g.
    /// `"cache."` yields `cache.hits`, `cache.misses`, …). The legacy
    /// [`PlanCache::stats`] accessor and the registry then read the same
    /// atomic cells.
    pub fn bind_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        self.counters.bind_metrics(registry, prefix);
    }

    /// True when `entry` has outlived the budget's TTL.
    fn expired(&self, entry: &CacheEntry) -> bool {
        self.budget.ttl.is_some_and(|ttl| entry.inserted_at.elapsed() >= ttl)
    }

    /// Looks up a prepared operand, refreshing its recency on hit. An
    /// entry past the budget's TTL is removed and reported as a miss
    /// (counted under both `misses` and `expirations`).
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<PreparedMatrix>> {
        self.tick += 1;
        let expired = match self.entries.get_mut(key) {
            Some(entry) if self.budget.ttl.is_none_or(|ttl| entry.inserted_at.elapsed() < ttl) => {
                entry.last_used = self.tick;
                self.counters.hits.inc();
                return Some(Arc::clone(&entry.prepared));
            }
            Some(_) => true,
            None => false,
        };
        if expired {
            let stale = self.entries.remove(key).expect("expired entry is resident");
            self.bytes_used -= stale.bytes;
            self.counters.expirations.inc();
        }
        self.counters.misses.inc();
        None
    }

    /// Eagerly removes every entry past the budget's TTL, returning how
    /// many were dropped (counted under `expirations`, not `misses` —
    /// nothing looked them up). A no-op without a TTL.
    pub fn purge_expired(&mut self) -> usize {
        if self.budget.ttl.is_none() {
            return 0;
        }
        let stale: Vec<CacheKey> =
            self.entries.iter().filter(|(_, e)| self.expired(e)).map(|(k, _)| *k).collect();
        for key in &stale {
            let entry = self.entries.remove(key).expect("listed entry is resident");
            self.bytes_used -= entry.bytes;
            self.counters.expirations.inc();
        }
        stale.len()
    }

    /// Inserts a prepared operand under `key`, evicting least-recently-used
    /// entries until the budget is respected. Under [`CacheBound::Bytes`],
    /// an operand larger than the entire budget is silently not cached
    /// (mirroring the `Entries(0)` behavior).
    pub fn insert(&mut self, key: CacheKey, prepared: Arc<PreparedMatrix>) {
        let bytes = prepared.approx_bytes();
        match self.budget.bound {
            CacheBound::Entries(0) => return,
            CacheBound::Bytes(b) if bytes > b => return,
            _ => {}
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            // Replacement: the old entry's footprint is released first so
            // re-inserting under the same key never triggers eviction.
            self.bytes_used -= old.bytes;
        }
        while self.over_budget_with(bytes) {
            // Evict the stalest entry (O(len) scan; resident counts are
            // small — tens of operands, not thousands).
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("over budget implies at least one resident entry");
            let evicted = self.entries.remove(&victim).unwrap();
            self.bytes_used -= evicted.bytes;
            self.counters.evictions.inc();
        }
        self.counters.insertions.inc();
        self.bytes_used += bytes;
        self.entries.insert(
            key,
            CacheEntry { prepared, last_used: self.tick, bytes, inserted_at: Instant::now() },
        );
    }

    /// Would adding an entry of `incoming` bytes exceed the budget?
    fn over_budget_with(&self, incoming: usize) -> bool {
        match self.budget.bound {
            CacheBound::Entries(n) => self.entries.len() + 1 > n,
            CacheBound::Bytes(b) => !self.entries.is_empty() && self.bytes_used + incoming > b,
        }
    }

    /// Looks up `key`; a hit must also pass `verify` (full-content check —
    /// the fingerprint inside the key is only a sampled hash). Verification
    /// failure counts as a collision + miss, drops the stale entry, and
    /// falls through to `prepare`. Returns the operand and whether it was
    /// a (verified) cache hit.
    pub fn get_or_prepare(
        &mut self,
        key: CacheKey,
        verify: impl FnOnce(&PreparedMatrix) -> bool,
        prepare: impl FnOnce() -> PreparedMatrix,
    ) -> (Arc<PreparedMatrix>, bool) {
        if let Some(hit) = self.get(&key) {
            if verify(&hit) {
                return (hit, true);
            }
            // Fingerprint collision: the cached operand is not this matrix.
            // The hit recorded by `get` is reclassified, not merely
            // supplemented — hence the one legitimate `Counter::sub` call.
            self.counters.hits.sub(1);
            self.counters.misses.inc();
            self.counters.collisions.inc();
            if let Some(stale) = self.entries.remove(&key) {
                self.bytes_used -= stale.bytes;
            }
        }
        let prepared = Arc::new(prepare());
        self.insert(key, Arc::clone(&prepared));
        (prepared, false)
    }

    /// Drops every entry (stats are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes_used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use crate::prepared::PreparedMatrix;
    use cw_core::ClusterConfig;
    use cw_sparse::gen::grid::poisson2d;
    use cw_sparse::{fingerprint, CsrMatrix};

    fn prepared_for(a: &CsrMatrix) -> PreparedMatrix {
        PreparedMatrix::prepare(a, Plan::baseline(), 7, &ClusterConfig::default())
    }

    fn auto_key(a: &CsrMatrix) -> CacheKey {
        CacheKey::new(fingerprint(a), Plan::baseline().knobs())
    }

    #[test]
    fn miss_then_hit() {
        let a = poisson2d(8, 8);
        let key = auto_key(&a);
        let mut cache = PlanCache::new(4);
        assert!(cache.get(&key).is_none());
        cache.insert(key, Arc::new(prepared_for(&a)));
        assert!(cache.get(&key).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn get_or_prepare_prepares_once() {
        let a = poisson2d(10, 10);
        let key = auto_key(&a);
        let mut cache = PlanCache::new(4);
        let mut calls = 0;
        for _ in 0..5 {
            let (_, hit) = cache.get_or_prepare(
                key,
                |_| true,
                || {
                    calls += 1;
                    prepared_for(&a)
                },
            );
            let _ = hit;
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().hits, 4);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn failed_verification_counts_a_collision_and_reprepares() {
        let a = poisson2d(10, 10);
        let key = auto_key(&a);
        let mut cache = PlanCache::new(4);
        let (_, hit) = cache.get_or_prepare(key, |_| true, || prepared_for(&a));
        assert!(!hit);
        // Simulate a fingerprint collision: verification rejects the entry.
        let mut calls = 0;
        let (_, hit) = cache.get_or_prepare(
            key,
            |_| false,
            || {
                calls += 1;
                prepared_for(&a)
            },
        );
        assert!(!hit, "collision must not count as a hit");
        assert_eq!(calls, 1, "collision must re-prepare");
        let s = cache.stats();
        assert_eq!(s.collisions, 1);
        assert_eq!(s.hits, 0, "demoted hit must not be counted");
        assert_eq!(s.misses, 2);
        // The replacement entry is live and verifiable again.
        let (_, hit) = cache.get_or_prepare(key, |_| true, || prepared_for(&a));
        assert!(hit);
    }

    #[test]
    fn distinct_knobs_occupy_distinct_entries_equal_knobs_share() {
        let a = poisson2d(9, 9);
        let fp = fingerprint(&a);
        let baseline = Plan::baseline();
        let clustered = Plan {
            clustering: crate::plan::ClusteringStrategy::Fixed(4),
            kernel: crate::plan::KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let mut cache = PlanCache::new(4);
        cache.insert(CacheKey::new(fp, baseline.knobs()), Arc::new(prepared_for(&a)));
        // A different pipeline for the same matrix is a distinct key...
        assert!(cache.get(&CacheKey::new(fp, clustered.knobs())).is_none());
        assert!(cache.get(&CacheKey::new(fp, baseline.knobs())).is_some());
        // ...as is the same pipeline on a different backend...
        let tiled = baseline.on_backend(crate::backend::BackendId::TiledCpu);
        assert!(cache.get(&CacheKey::new(fp, tiled.knobs())).is_none());
        // ...but a plan differing only in rationale shares the entry.
        let renamed = Plan { rationale: "same knobs, different words", ..baseline };
        assert!(cache.get(&CacheKey::new(fp, renamed.knobs())).is_some());
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let mats: Vec<CsrMatrix> = (3..7).map(|n| poisson2d(n, n)).collect();
        let keys: Vec<_> = mats.iter().map(auto_key).collect();
        let mut cache = PlanCache::new(2);
        cache.insert(keys[0], Arc::new(prepared_for(&mats[0])));
        cache.insert(keys[1], Arc::new(prepared_for(&mats[1])));
        // Touch keys[0] so keys[1] is now the LRU victim.
        assert!(cache.get(&keys[0]).is_some());
        cache.insert(keys[2], Arc::new(prepared_for(&mats[2])));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&keys[1]).is_none(), "LRU entry should be gone");
        assert!(cache.get(&keys[0]).is_some(), "recently used entry survives");
        assert!(cache.get(&keys[2]).is_some(), "new entry present");
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let a = poisson2d(6, 6);
        let key = auto_key(&a);
        let mut cache = PlanCache::new(1);
        cache.insert(key, Arc::new(prepared_for(&a)));
        cache.insert(key, Arc::new(prepared_for(&a)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn byte_budget_evicts_lru_to_fit() {
        let mats: Vec<CsrMatrix> = (6..9).map(|n| poisson2d(n, n)).collect();
        let prepared: Vec<_> = mats.iter().map(|m| Arc::new(prepared_for(m))).collect();
        let keys: Vec<_> = mats.iter().map(auto_key).collect();
        // Budget fits the two largest operands but not all three.
        let sizes: Vec<usize> = prepared.iter().map(|p| p.approx_bytes()).collect();
        let budget = sizes[1] + sizes[2];
        assert!(budget < sizes.iter().sum::<usize>());
        let mut cache = PlanCache::with_budget(CacheBudget::bytes(budget));
        cache.insert(keys[0], Arc::clone(&prepared[0]));
        cache.insert(keys[1], Arc::clone(&prepared[1]));
        assert_eq!(cache.bytes(), sizes[0] + sizes[1]);
        cache.insert(keys[2], Arc::clone(&prepared[2]));
        // keys[0] was the LRU entry and must have been evicted to fit.
        assert!(cache.get(&keys[0]).is_none());
        assert!(cache.get(&keys[1]).is_some());
        assert!(cache.get(&keys[2]).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.bytes() <= budget);
    }

    #[test]
    fn oversized_operand_is_never_cached_under_byte_budget() {
        let a = poisson2d(10, 10);
        let p = Arc::new(prepared_for(&a));
        let mut cache = PlanCache::with_budget(CacheBudget::bytes(p.approx_bytes() - 1));
        cache.insert(auto_key(&a), p);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 0);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn byte_budget_replacement_releases_old_footprint() {
        let a = poisson2d(8, 8);
        let key = auto_key(&a);
        let p = Arc::new(prepared_for(&a));
        let sz = p.approx_bytes();
        let mut cache = PlanCache::with_budget(CacheBudget::bytes(sz));
        cache.insert(key, Arc::clone(&p));
        cache.insert(key, p); // same key: must not evict or double-count
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), sz);
        assert_eq!(cache.stats().evictions, 0);
        cache.clear();
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn entries_budget_matches_legacy_capacity_semantics() {
        let cache = PlanCache::new(7);
        assert_eq!(cache.budget(), CacheBudget::entries(7));
        assert_eq!(cache.capacity(), 7);
        let bytes = PlanCache::with_budget(CacheBudget::bytes(1 << 20));
        assert_eq!(bytes.capacity(), usize::MAX);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let a = poisson2d(5, 5);
        let key = auto_key(&a);
        let mut cache = PlanCache::new(0);
        cache.insert(key, Arc::new(prepared_for(&a)));
        assert!(cache.is_empty());
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn bound_metrics_track_the_legacy_stats_exactly() {
        let a = poisson2d(7, 7);
        let key = auto_key(&a);
        let mut cache = PlanCache::new(4);
        let registry = MetricsRegistry::new();
        cache.bind_metrics(&registry, "cache.");
        let _ = cache.get(&key); // miss
        cache.insert(key, Arc::new(prepared_for(&a)));
        let _ = cache.get(&key); // hit
        let stats = cache.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(stats.hits));
        assert_eq!(snap.counter("cache.misses"), Some(stats.misses));
        assert_eq!(snap.counter("cache.insertions"), Some(stats.insertions));
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        // Live handles, not copies: later traffic shows up in the registry
        // without re-binding.
        let _ = cache.get(&key);
        assert_eq!(registry.snapshot().counter("cache.hits"), Some(2));
    }

    #[test]
    fn clear_keeps_stats() {
        let a = poisson2d(5, 5);
        let key = auto_key(&a);
        let mut cache = PlanCache::new(4);
        cache.insert(key, Arc::new(prepared_for(&a)));
        assert!(cache.get(&key).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn zero_ttl_expires_on_next_lookup() {
        let a = poisson2d(7, 7);
        let key = auto_key(&a);
        let budget = CacheBudget::entries(4).with_ttl(Duration::ZERO);
        assert_eq!(budget.ttl, Some(Duration::ZERO));
        let mut cache = PlanCache::with_budget(budget);
        cache.insert(key, Arc::new(prepared_for(&a)));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key).is_none(), "zero TTL must expire immediately");
        assert!(cache.is_empty(), "expired entry is removed on lookup");
        let s = cache.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.misses, 1, "expiry is reported as a miss");
        assert_eq!(s.hits, 0);
        assert_eq!(cache.bytes(), 0, "expired footprint is released");
    }

    #[test]
    fn entries_within_ttl_still_hit() {
        let a = poisson2d(7, 7);
        let key = auto_key(&a);
        let budget = CacheBudget::entries(4).with_ttl(Duration::from_secs(3600));
        let mut cache = PlanCache::with_budget(budget);
        cache.insert(key, Arc::new(prepared_for(&a)));
        assert!(cache.get(&key).is_some(), "an hour-long TTL cannot expire mid-test");
        assert_eq!(cache.stats().expirations, 0);
    }

    #[test]
    fn ttl_measures_age_since_insertion_not_recency() {
        let a = poisson2d(6, 6);
        let key = auto_key(&a);
        let ttl = Duration::from_millis(40);
        let mut cache = PlanCache::with_budget(CacheBudget::entries(4).with_ttl(ttl));
        cache.insert(key, Arc::new(prepared_for(&a)));
        // Keep the entry hot: recency refreshes must NOT extend its life.
        assert!(cache.get(&key).is_some());
        std::thread::sleep(ttl + Duration::from_millis(20));
        assert!(cache.get(&key).is_none(), "hot-but-old entry must still expire");
        assert_eq!(cache.stats().expirations, 1);
        // Re-inserting restarts the clock.
        cache.insert(key, Arc::new(prepared_for(&a)));
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn get_or_prepare_reprepares_an_expired_entry() {
        let a = poisson2d(7, 7);
        let key = auto_key(&a);
        let mut cache = PlanCache::with_budget(CacheBudget::entries(4).with_ttl(Duration::ZERO));
        let mut calls = 0;
        for _ in 0..3 {
            let (_, hit) = cache.get_or_prepare(
                key,
                |_| true,
                || {
                    calls += 1;
                    prepared_for(&a)
                },
            );
            assert!(!hit, "every lookup against a zero TTL is stale");
        }
        assert_eq!(calls, 3);
        assert_eq!(cache.stats().expirations, 2, "first lookup was a plain miss");
    }

    #[test]
    fn purge_expired_sweeps_eagerly() {
        let mats: Vec<CsrMatrix> = (5..8).map(|n| poisson2d(n, n)).collect();
        let mut cache = PlanCache::with_budget(CacheBudget::entries(8).with_ttl(Duration::ZERO));
        for m in &mats {
            cache.insert(auto_key(m), Arc::new(prepared_for(m)));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.purge_expired(), 3);
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        let s = cache.stats();
        assert_eq!(s.expirations, 3);
        assert_eq!(s.misses, 0, "eager purge is not a lookup");
        // Without a TTL the sweep is a no-op.
        let mut plain = PlanCache::new(4);
        plain.insert(auto_key(&mats[0]), Arc::new(prepared_for(&mats[0])));
        assert_eq!(plain.purge_expired(), 0);
        assert_eq!(plain.len(), 1);
    }
}
