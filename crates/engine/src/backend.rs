//! Execution backends: *where and how* a prepared plan runs.
//!
//! The plan → prepare → execute pipeline deliberately splits *what* to do
//! (a [`Plan`]: reordering × clustering × kernel × accumulator knobs) from
//! *how to run it*. This module makes the second half a first-class seam:
//! an [`ExecutionBackend`] owns both **prepare** (materializing a
//! backend-specific [`BackendPayload`] from the operand) and **execute**
//! (the kernel dispatch), declares a [`BackendId`] plus a [`BackendCaps`]
//! capability descriptor the [`crate::CostModel`] prices plans with, and
//! registers in a [`BackendRegistry`] the [`crate::Planner`] and
//! [`crate::Engine`] resolve against. Related work motivates the seam:
//! the same SpGEMM pipeline pays off very differently per architecture
//! (Nagasaka et al. on KNL vs multicore), and reordering benefit is
//! backend-sensitive (the SpMV reordering study) — so the execution
//! strategy must be swappable without touching planning or caching.
//!
//! Four backends ship in [`BackendRegistry::builtin`]:
//!
//! * [`ParallelCpu`] — the reference rayon path (the default; exactly the
//!   execution behavior the engine had before this seam existed).
//! * [`SerialReference`] — a deterministic single-threaded oracle used by
//!   cross-validation: every other backend must produce bit-identical
//!   output for the same plan knobs.
//! * [`TiledCpu`] — column-tiled (cache-blocked) execution: `B` is split
//!   into column tiles so each tile's accumulator working set stays
//!   cache-resident; a genuinely different performance point the planner
//!   can discover through execution feedback.
//! * [`AdaptiveCpu`] — the per-row kernel zoo: sorted-array / hash / dense
//!   accumulators chosen per output row from upper-bound FLOP estimates
//!   (`cw_spgemm::adaptive`), single-pass parallel, bit-identical to the
//!   oracle because selection depends only on operand structure.
//!
//! Backend identity is part of [`crate::PlanKnobs`], so the plan cache
//! keys preparations by `(fingerprint, knobs, backend)` and the
//! [`crate::FeedbackStore`] learns per-backend timings.

use crate::plan::{ClusteringStrategy, KernelChoice, OutputShape, Plan};
use crate::prepared::PrepTimings;
use cw_core::{
    fixed_clustering, hierarchical_clustering, variable_clustering, ClusterConfig, CsrCluster,
};
use cw_reorder::Reordering;
use cw_sparse::{ColIdx, CsrMatrix, Permutation};
use cw_spgemm::adaptive::{spgemm_adaptive_with, AdaptiveOptions, AdaptiveThresholds};
use cw_spgemm::rowwise::{spgemm_with, SpGemmOptions};
use std::any::Any;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Default column-tile width for the builtin [`TiledCpu`] backend: wide
/// enough that the dense accumulator slab plus the tile's `B` rows stay
/// L2-resident, narrow enough that genuinely wide outputs split into
/// several tiles.
pub const DEFAULT_TILE_COLS: usize = 512;

/// Identity of one execution backend.
///
/// The id is what travels inside [`Plan`]s (and therefore cache keys and
/// feedback state); the [`BackendRegistry`] maps it back to the
/// implementation at prepare/execute time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendId {
    /// The reference rayon CPU path (the default).
    #[default]
    ParallelCpu,
    /// Single-threaded deterministic oracle for cross-validation.
    SerialReference,
    /// Column-tiled (cache-blocked) CPU execution.
    TiledCpu,
    /// Per-row adaptive kernel zoo (sorted-array / hash / dense).
    AdaptiveCpu,
}

impl BackendId {
    /// Every builtin backend id, in registry order.
    pub const ALL: [BackendId; 4] = [
        BackendId::ParallelCpu,
        BackendId::SerialReference,
        BackendId::TiledCpu,
        BackendId::AdaptiveCpu,
    ];

    /// Short human-readable name (stable across releases; used in reports
    /// and as the backend key in serialized calibration profiles).
    pub fn name(&self) -> &'static str {
        match self {
            BackendId::ParallelCpu => "parallel-cpu",
            BackendId::SerialReference => "serial-reference",
            BackendId::TiledCpu => "tiled-cpu",
            BackendId::AdaptiveCpu => "adaptive-cpu",
        }
    }

    /// Inverse of [`BackendId::name`]: resolves a stable name back to the
    /// id (how [`crate::CalibrationProfile`] parsing maps JSON entries).
    pub fn parse(name: &str) -> Option<BackendId> {
        BackendId::ALL.iter().copied().find(|id| id.name() == name)
    }

    /// The capability descriptor of the *builtin* implementation of this
    /// id. Registry-resolved backends may override (e.g. a [`TiledCpu`]
    /// constructed with a custom tile width); this is the default the
    /// standalone [`crate::CostModel::estimate`] convenience uses.
    pub fn caps(&self) -> BackendCaps {
        match self {
            BackendId::ParallelCpu => BackendCaps {
                backend: *self,
                description: "reference rayon path",
                parallel: true,
                planner_candidate: true,
                kernel_scale: 1.0,
                tile_cols: None,
                deterministic_oracle: false,
            },
            BackendId::SerialReference => BackendCaps {
                backend: *self,
                description: "single-threaded deterministic oracle",
                parallel: false,
                planner_candidate: false,
                kernel_scale: 1.0,
                tile_cols: None,
                deterministic_oracle: true,
            },
            BackendId::TiledCpu => BackendCaps {
                backend: *self,
                description: "column-tiled cache-blocked execution",
                parallel: true,
                planner_candidate: true,
                kernel_scale: 1.0,
                tile_cols: Some(DEFAULT_TILE_COLS),
                deterministic_oracle: false,
            },
            BackendId::AdaptiveCpu => BackendCaps {
                backend: *self,
                description: "per-row adaptive kernel zoo",
                parallel: true,
                planner_candidate: true,
                kernel_scale: 1.0,
                tile_cols: None,
                deterministic_oracle: false,
            },
        }
    }
}

/// What a backend can do and how the [`crate::CostModel`] should price it.
///
/// The descriptor is deliberately analytic, not boolean feature flags: the
/// cost model folds `kernel_scale`, the parallel capability, and the tile
/// geometry directly into its kernel-seconds estimate, so a backend's
/// self-description *is* its prior in plan ranking (execution feedback then
/// corrects it, exactly as for any other cost-model constant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendCaps {
    /// The backend this descriptor belongs to.
    pub backend: BackendId,
    /// One-line human-readable description.
    pub description: &'static str,
    /// Whether the backend can exploit the rayon pool (`false` means the
    /// cost model never applies the parallel speedup, whatever
    /// [`Plan::parallel`] says).
    pub parallel: bool,
    /// Whether [`crate::Planner::plans_costed`] offers this backend as a
    /// candidate for auto traffic. The [`SerialReference`] oracle sets
    /// this `false`: it exists for validation, not for winning races.
    pub planner_candidate: bool,
    /// Multiplier on modeled kernel seconds relative to the reference
    /// rayon path at equal knobs (`1.0` = priced identically).
    pub kernel_scale: f64,
    /// `Some(width)` when execution is column-tiled with this tile width;
    /// the cost model prices the per-tile pass overhead and the
    /// cache-blocking gain from it.
    pub tile_cols: Option<usize>,
    /// Whether the backend guarantees bit-reproducible output across runs
    /// and thread counts (the cross-validation oracle property).
    pub deterministic_oracle: bool,
}

/// A backend-specific materialized operand, stored inside
/// [`crate::PreparedMatrix`]. The engine treats it as opaque bytes with a
/// size; only the backend that produced it downcasts it back (via
/// [`BackendPayload::as_any`]) at execute time.
pub trait BackendPayload: Any + Send + Sync + fmt::Debug {
    /// Approximate resident heap footprint in bytes (sizes byte-bounded
    /// cache eviction).
    fn approx_bytes(&self) -> usize;
    /// Downcast hook for the owning backend's `execute`.
    fn as_any(&self) -> &dyn Any;
}

/// One execution strategy: owns materialization of its payload and the
/// kernel dispatch over it.
///
/// Contract:
///
/// * `prepare` must honor every knob of the plan that affects *what* is
///   computed (reordering, clustering, kernel family) so results stay
///   bit-comparable across backends; knobs that only affect *how*
///   (parallelism, tiling) are the backend's to interpret.
/// * `execute` returns the kernel output in the operand's *internal*
///   (post-reordering) row order; [`crate::PreparedMatrix::multiply_timed`]
///   applies the inverse permutation afterwards, so backends never deal
///   with un-permutation.
/// * `execute` is handed payloads produced by this backend's own
///   `prepare`; receiving a foreign payload is a caller bug and may panic.
pub trait ExecutionBackend: fmt::Debug + Send + Sync {
    /// The identity plans carry to name this backend.
    fn id(&self) -> BackendId;
    /// Capability/affinity descriptor consumed by the cost model.
    fn caps(&self) -> BackendCaps;
    /// Materializes `plan` for `a`: the backend-specific payload, the
    /// inverse row permutation (when the plan reorders), and per-stage
    /// preparation timings.
    fn prepare(
        &self,
        a: &CsrMatrix,
        plan: &Plan,
        seed: u64,
        cluster: &ClusterConfig,
    ) -> (Arc<dyn BackendPayload>, Option<Permutation>, PrepTimings);
    /// `C = payload · b` in internal row order.
    fn execute(&self, payload: &dyn BackendPayload, plan: &Plan, b: &CsrMatrix) -> CsrMatrix;

    /// `C = payload · b` shaped by [`Plan::shape`], in internal row order.
    ///
    /// `mask` must be `Some` exactly when the plan's shape is
    /// [`OutputShape::Masked`], with its rows already in the payload's
    /// *internal* (post-reordering) row order —
    /// [`crate::PreparedMatrix::multiply_shaped`] handles that permutation,
    /// so backends never deal with it.
    ///
    /// The default implementation computes the full product with
    /// [`ExecutionBackend::execute`] and applies the row-local shape
    /// transform via [`apply_output_shape`]; both transforms commute with
    /// row permutation, so every backend inheriting this default is
    /// bit-identical to the serial reference per shape. Backends with
    /// genuinely truncated kernels (e.g. a future masked SpGEMM that
    /// skips non-mask columns) may override it, as long as they preserve
    /// bit-identity with the default.
    fn execute_shaped(
        &self,
        payload: &dyn BackendPayload,
        plan: &Plan,
        b: &CsrMatrix,
        mask: Option<&CsrMatrix>,
    ) -> CsrMatrix {
        apply_output_shape(self.execute(payload, plan, b), plan.shape, mask)
    }
}

/// Applies an [`OutputShape`] to a computed product: the identity for
/// `Full`, [`cw_spgemm::row_topk`] for `TopK`, and
/// [`cw_spgemm::apply_mask`] for `Masked`.
///
/// Row-local by construction, so it may be applied in any row order as
/// long as `mask` rows align with `c` rows.
///
/// # Panics
///
/// Panics if the shape is [`OutputShape::Masked`] and `mask` is `None`
/// (the mask is request data the caller must supply), or if the mask's
/// dimensions do not match `c`'s.
pub fn apply_output_shape(c: CsrMatrix, shape: OutputShape, mask: Option<&CsrMatrix>) -> CsrMatrix {
    match shape {
        OutputShape::Full => c,
        OutputShape::TopK(k) => cw_spgemm::row_topk(&c, k),
        OutputShape::Masked => {
            let mask = mask.expect("masked plan executed without a mask operand");
            cw_spgemm::apply_mask(&c, mask)
        }
    }
}

/// The shared CPU operand representation: plain CSR for row-wise plans,
/// `CSR_Cluster` for cluster-wise plans. All three builtin backends
/// materialize this (the tiled backend wraps it in [`TiledOperand`]);
/// custom backends are free to reuse it via [`materialize_cpu`].
#[derive(Debug, Clone)]
pub enum CpuOperand {
    /// Row-wise kernels run over plain (possibly permuted) CSR.
    RowWise(CsrMatrix),
    /// Cluster-wise kernels run over the paper's `CSR_Cluster`.
    ClusterWise(CsrCluster),
}

impl BackendPayload for CpuOperand {
    fn approx_bytes(&self) -> usize {
        match self {
            CpuOperand::RowWise(m) => m.memory_bytes(),
            CpuOperand::ClusterWise(cc) => cc.memory_bytes(),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The [`TiledCpu`] payload: the shared CPU operand plus the column-tile
/// width chosen at prepare time.
#[derive(Debug, Clone)]
pub struct TiledOperand {
    /// The materialized operand the per-tile kernels run over.
    pub operand: CpuOperand,
    /// Column-tile width (output columns per tile).
    pub tile_cols: usize,
}

impl BackendPayload for TiledOperand {
    fn approx_bytes(&self) -> usize {
        self.operand.approx_bytes() + std::mem::size_of::<usize>()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Materializes the CPU operand for `plan`: computes and applies the row
/// permutation, builds the clustered format when the plan asks for one,
/// and records per-stage timings. The returned permutation is the
/// *inverse* of the total applied reordering (what maps kernel output rows
/// back to original ids), matching the [`ExecutionBackend::prepare`]
/// contract. Shared by every builtin backend (their payloads only differ
/// in what wraps this operand), public so custom backends can reuse the
/// same preprocessing.
pub fn materialize_cpu(
    a: &CsrMatrix,
    plan: &Plan,
    seed: u64,
    cluster: &ClusterConfig,
) -> (CpuOperand, Option<Permutation>, PrepTimings) {
    let mut timings = PrepTimings::default();

    // Stage 1: explicit reordering (paper Table 1 algorithms).
    let mut perm_total: Option<Permutation> = None;
    let mut pa: Option<CsrMatrix> = None;
    if let Some(r) = plan.reorder {
        if r != Reordering::Original {
            let t0 = Instant::now();
            let p = r.compute(a, seed);
            pa = Some(p.permute_rows(a));
            perm_total = Some(p);
            timings.reorder_seconds += t0.elapsed().as_secs_f64();
        }
    }

    // Stage 2: clustering (paper §3.2 / Algs. 2–3). The kernel choice is
    // authoritative: a row-wise plan never builds clusters, and a
    // cluster-wise plan with `ClusteringStrategy::None` falls back to
    // fixed-length grouping. Hierarchical clustering brings its own
    // permutation, composed onto any explicit reordering.
    let base = pa.unwrap_or_else(|| a.clone());
    let operand = match plan.kernel {
        KernelChoice::RowWise => CpuOperand::RowWise(base),
        KernelChoice::ClusterWise => {
            let t0 = Instant::now();
            let cc = match plan.clustering {
                ClusteringStrategy::None => {
                    let c = fixed_clustering(&base, cluster.max_cluster.max(1));
                    CsrCluster::from_csr(&base, &c)
                }
                ClusteringStrategy::Fixed(k) => {
                    let c = fixed_clustering(&base, k.max(1));
                    CsrCluster::from_csr(&base, &c)
                }
                ClusteringStrategy::Variable => {
                    let c = variable_clustering(&base, cluster);
                    CsrCluster::from_csr(&base, &c)
                }
                ClusteringStrategy::Hierarchical => {
                    let h = hierarchical_clustering(&base, cluster);
                    let hp = h.perm;
                    let grouped = hp.permute_rows(&base);
                    let cc = CsrCluster::from_csr(&grouped, &h.clustering);
                    // Compose: the explicit reorder ran first, then `hp`.
                    perm_total = Some(match perm_total.take() {
                        None => hp,
                        Some(first) => first.then(&hp),
                    });
                    cc
                }
            };
            timings.cluster_seconds += t0.elapsed().as_secs_f64();
            CpuOperand::ClusterWise(cc)
        }
    };

    (operand, perm_total.map(|p| p.inverse()), timings)
}

/// Runs the plan's kernel family over a CPU operand with explicit options.
fn run_cpu_kernel(operand: &CpuOperand, opts: &SpGemmOptions, b: &CsrMatrix) -> CsrMatrix {
    match operand {
        CpuOperand::RowWise(pa) => spgemm_with(pa, b, opts),
        CpuOperand::ClusterWise(cc) => cw_core::clusterwise_spgemm_with(cc, b, opts),
    }
}

fn downcast<'p, P: BackendPayload>(payload: &'p dyn BackendPayload, backend: &str) -> &'p P {
    payload.as_any().downcast_ref::<P>().unwrap_or_else(|| {
        // Deliberately does not Debug-format the payload itself: it holds
        // the whole prepared matrix, and a panic string with every nonzero
        // in it helps nobody.
        panic!(
            "{backend} backend handed a foreign payload (expected {}); payloads are only valid \
             with the backend that prepared them",
            std::any::type_name::<P>()
        )
    })
}

/// The reference rayon path: exactly the engine's pre-seam execution
/// behavior, and the default backend of every plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelCpu;

impl ExecutionBackend for ParallelCpu {
    fn id(&self) -> BackendId {
        BackendId::ParallelCpu
    }

    fn caps(&self) -> BackendCaps {
        BackendId::ParallelCpu.caps()
    }

    fn prepare(
        &self,
        a: &CsrMatrix,
        plan: &Plan,
        seed: u64,
        cluster: &ClusterConfig,
    ) -> (Arc<dyn BackendPayload>, Option<Permutation>, PrepTimings) {
        let (operand, unpermute, timings) = materialize_cpu(a, plan, seed, cluster);
        (Arc::new(operand), unpermute, timings)
    }

    fn execute(&self, payload: &dyn BackendPayload, plan: &Plan, b: &CsrMatrix) -> CsrMatrix {
        let operand = downcast::<CpuOperand>(payload, "parallel-cpu");
        run_cpu_kernel(operand, &plan.spgemm_options(), b)
    }
}

/// Single-threaded oracle: same materialization as [`ParallelCpu`], but
/// execution always runs the serial kernel path regardless of
/// [`Plan::parallel`]. Because every kernel accumulates each output entry
/// in ascending-`k` order and extracts sorted columns, its output is
/// bit-identical to the parallel and tiled backends under equal plan knobs
/// — which is exactly what makes it a useful cross-validation reference.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialReference;

impl ExecutionBackend for SerialReference {
    fn id(&self) -> BackendId {
        BackendId::SerialReference
    }

    fn caps(&self) -> BackendCaps {
        BackendId::SerialReference.caps()
    }

    fn prepare(
        &self,
        a: &CsrMatrix,
        plan: &Plan,
        seed: u64,
        cluster: &ClusterConfig,
    ) -> (Arc<dyn BackendPayload>, Option<Permutation>, PrepTimings) {
        let (operand, unpermute, timings) = materialize_cpu(a, plan, seed, cluster);
        (Arc::new(operand), unpermute, timings)
    }

    fn execute(&self, payload: &dyn BackendPayload, plan: &Plan, b: &CsrMatrix) -> CsrMatrix {
        let operand = downcast::<CpuOperand>(payload, "serial-reference");
        let opts = SpGemmOptions { parallel: false, ..plan.spgemm_options() };
        run_cpu_kernel(operand, &opts, b)
    }
}

/// Column-tiled (cache-blocked) execution: `B` is split into column tiles
/// of `tile_cols` columns, the plan's kernel runs once per tile (so the
/// accumulator working set is bounded by the tile width instead of
/// `ncols(B)`), and the per-tile outputs are stitched back together.
///
/// Tiling partitions work by *output column*, so each output entry's
/// multiply-add sequence is unchanged (same ascending-`k` order) — the
/// result is bit-identical to the untiled backends, only the memory access
/// pattern differs. Outputs narrower than one tile degenerate to the
/// untiled path.
#[derive(Debug, Clone, Copy)]
pub struct TiledCpu {
    tile_cols: usize,
}

impl Default for TiledCpu {
    fn default() -> Self {
        TiledCpu::new(DEFAULT_TILE_COLS)
    }
}

impl TiledCpu {
    /// Tiled backend with an explicit column-tile width (floored at 1).
    pub fn new(tile_cols: usize) -> TiledCpu {
        TiledCpu { tile_cols: tile_cols.max(1) }
    }

    /// The configured column-tile width.
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }
}

impl ExecutionBackend for TiledCpu {
    fn id(&self) -> BackendId {
        BackendId::TiledCpu
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps { tile_cols: Some(self.tile_cols), ..BackendId::TiledCpu.caps() }
    }

    fn prepare(
        &self,
        a: &CsrMatrix,
        plan: &Plan,
        seed: u64,
        cluster: &ClusterConfig,
    ) -> (Arc<dyn BackendPayload>, Option<Permutation>, PrepTimings) {
        let (operand, unpermute, timings) = materialize_cpu(a, plan, seed, cluster);
        (Arc::new(TiledOperand { operand, tile_cols: self.tile_cols }), unpermute, timings)
    }

    fn execute(&self, payload: &dyn BackendPayload, plan: &Plan, b: &CsrMatrix) -> CsrMatrix {
        let tiled = downcast::<TiledOperand>(payload, "tiled-cpu");
        let opts = plan.spgemm_options();
        let w = tiled.tile_cols.max(1);
        let ntiles = b.ncols.div_ceil(w);
        if ntiles <= 1 {
            // Narrower than one tile: blocking buys nothing, run untiled.
            return run_cpu_kernel(&tiled.operand, &opts, b);
        }
        let parts: Vec<CsrMatrix> = (0..ntiles)
            .map(|t| {
                let lo = t * w;
                let hi = ((t + 1) * w).min(b.ncols);
                let bt = column_tile(b, lo, hi);
                run_cpu_kernel(&tiled.operand, &opts, &bt)
            })
            .collect();
        hstack_tiles(&parts, w, b.ncols)
    }
}

/// The column slice `b[:, lo..hi)` as its own CSR matrix (column indices
/// rebased to the tile).
fn column_tile(b: &CsrMatrix, lo: usize, hi: usize) -> CsrMatrix {
    let mut row_ptr = Vec::with_capacity(b.nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<ColIdx> = Vec::new();
    let mut vals = Vec::new();
    for i in 0..b.nrows {
        let (cols, vs) = b.row(i);
        // CSR rows are column-sorted, so the tile's slice is contiguous.
        let s = cols.partition_point(|&c| (c as usize) < lo);
        let e = cols.partition_point(|&c| (c as usize) < hi);
        col_idx.extend(cols[s..e].iter().map(|&c| c - lo as ColIdx));
        vals.extend_from_slice(&vs[s..e]);
        row_ptr.push(col_idx.len());
    }
    CsrMatrix { nrows: b.nrows, ncols: hi - lo, row_ptr, col_idx, vals }
}

/// Stitches per-tile products (tile `t` covering columns `[t·w, …)`) back
/// into one matrix: each output row is the concatenation of its tile rows
/// with column indices re-offset, which preserves sorted order because the
/// tiles partition the column range in ascending order.
fn hstack_tiles(parts: &[CsrMatrix], w: usize, ncols: usize) -> CsrMatrix {
    let nrows = parts[0].nrows;
    let total: usize = parts.iter().map(|p| p.nnz()).sum();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<ColIdx> = Vec::with_capacity(total);
    let mut vals = Vec::with_capacity(total);
    for i in 0..nrows {
        for (t, part) in parts.iter().enumerate() {
            let offset = (t * w) as ColIdx;
            let (cols, vs) = part.row(i);
            col_idx.extend(cols.iter().map(|&c| c + offset));
            vals.extend_from_slice(vs);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix { nrows, ncols, row_ptr, col_idx, vals }
}

/// Per-row adaptive execution: the kernel zoo of `cw_spgemm::adaptive`.
/// Each output row's accumulator (sorted-array / hash / dense SPA) is
/// chosen from its upper-bound intermediate-product count, and the
/// numeric phase is single-pass (no symbolic re-run): FLOP-balanced row
/// chunks build their own output segments which are stitched in row
/// order.
///
/// Selection depends only on the structure of the operands and every zoo
/// accumulator merges duplicate columns in arrival order, so output is
/// bit-identical to [`SerialReference`] for any thresholds. Cluster-wise
/// plans have no per-row dispatch (the cluster kernel amortizes across
/// member rows already) and fall back to the standard cluster kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveCpu {
    thresholds: AdaptiveThresholds,
}

impl AdaptiveCpu {
    /// Adaptive backend with explicit kernel-selection thresholds.
    pub fn new(thresholds: AdaptiveThresholds) -> AdaptiveCpu {
        AdaptiveCpu { thresholds }
    }

    /// The configured kernel-selection thresholds.
    pub fn thresholds(&self) -> AdaptiveThresholds {
        self.thresholds
    }
}

impl ExecutionBackend for AdaptiveCpu {
    fn id(&self) -> BackendId {
        BackendId::AdaptiveCpu
    }

    fn caps(&self) -> BackendCaps {
        BackendId::AdaptiveCpu.caps()
    }

    fn prepare(
        &self,
        a: &CsrMatrix,
        plan: &Plan,
        seed: u64,
        cluster: &ClusterConfig,
    ) -> (Arc<dyn BackendPayload>, Option<Permutation>, PrepTimings) {
        let (operand, unpermute, timings) = materialize_cpu(a, plan, seed, cluster);
        (Arc::new(operand), unpermute, timings)
    }

    fn execute(&self, payload: &dyn BackendPayload, plan: &Plan, b: &CsrMatrix) -> CsrMatrix {
        let operand = downcast::<CpuOperand>(payload, "adaptive-cpu");
        let opts = plan.spgemm_options();
        match operand {
            CpuOperand::RowWise(pa) => spgemm_adaptive_with(
                pa,
                b,
                &AdaptiveOptions { thresholds: self.thresholds, parallel: opts.parallel },
            ),
            CpuOperand::ClusterWise(_) => run_cpu_kernel(operand, &opts, b),
        }
    }
}

/// The set of execution backends a planner/engine can resolve, keyed by
/// [`BackendId`]. Registering a backend under an id that is already
/// present replaces it (how tests install a [`TiledCpu`] with a custom
/// tile width).
///
/// ```
/// use cw_engine::{BackendId, BackendRegistry, TiledCpu};
/// use std::sync::Arc;
///
/// let mut reg = BackendRegistry::builtin();
/// assert_eq!(reg.ids(), BackendId::ALL.to_vec());
///
/// // Replace the tiled backend with a narrower tile width.
/// reg.register(Arc::new(TiledCpu::new(64)));
/// assert_eq!(reg.resolve(BackendId::TiledCpu).caps().tile_cols, Some(64));
/// ```
#[derive(Clone)]
pub struct BackendRegistry {
    backends: Vec<Arc<dyn ExecutionBackend>>,
}

impl fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendRegistry").field("ids", &self.ids()).finish()
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        BackendRegistry::builtin()
    }
}

impl BackendRegistry {
    /// A registry with no backends (build up with [`BackendRegistry::register`]).
    pub fn empty() -> BackendRegistry {
        BackendRegistry { backends: Vec::new() }
    }

    /// The four builtin backends: [`ParallelCpu`], [`SerialReference`],
    /// [`TiledCpu`] at [`DEFAULT_TILE_COLS`], and [`AdaptiveCpu`] with
    /// default thresholds.
    pub fn builtin() -> BackendRegistry {
        let mut reg = BackendRegistry::empty();
        reg.register(Arc::new(ParallelCpu));
        reg.register(Arc::new(SerialReference));
        reg.register(Arc::new(TiledCpu::default()));
        reg.register(Arc::new(AdaptiveCpu::default()));
        reg
    }

    /// Adds `backend`, replacing any existing backend with the same id.
    pub fn register(&mut self, backend: Arc<dyn ExecutionBackend>) {
        let id = backend.id();
        self.backends.retain(|b| b.id() != id);
        self.backends.push(backend);
    }

    /// Registered backend count.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when no backend is registered.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Registered ids, in registration order.
    pub fn ids(&self) -> Vec<BackendId> {
        self.backends.iter().map(|b| b.id()).collect()
    }

    /// Iterates the registered backends in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn ExecutionBackend>> {
        self.backends.iter()
    }

    /// The backend registered under `id`, if any.
    pub fn get(&self, id: BackendId) -> Option<Arc<dyn ExecutionBackend>> {
        self.backends.iter().find(|b| b.id() == id).cloned()
    }

    /// Like [`BackendRegistry::get`] but panics with a diagnostic when the
    /// backend is missing — the engine-internal resolution path, where an
    /// unregistered id in a plan is a configuration bug.
    pub fn resolve(&self, id: BackendId) -> Arc<dyn ExecutionBackend> {
        self.get(id).unwrap_or_else(|| {
            panic!("execution backend {id:?} is not registered (registered: {:?})", self.ids())
        })
    }

    /// The capability descriptor for `id` as registered here, falling back
    /// to the builtin descriptor when `id` is unregistered (so cost
    /// estimation never panics on a foreign plan).
    pub fn caps(&self, id: BackendId) -> BackendCaps {
        self.get(id).map_or_else(|| id.caps(), |b| b.caps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cw_sparse::gen;
    use cw_spgemm::spgemm_serial;

    fn prepared_product(backend: &dyn ExecutionBackend, a: &CsrMatrix, plan: Plan) -> CsrMatrix {
        let cfg = ClusterConfig::default();
        let (payload, unpermute, _) = backend.prepare(a, &plan, 7, &cfg);
        let c = backend.execute(payload.as_ref(), &plan, a);
        match unpermute {
            None => c,
            Some(q) => q.permute_rows(&c),
        }
    }

    #[test]
    fn builtin_registry_has_all_builtin_backends() {
        let reg = BackendRegistry::builtin();
        assert_eq!(reg.len(), BackendId::ALL.len());
        for id in BackendId::ALL {
            let b = reg.resolve(id);
            assert_eq!(b.id(), id);
            assert_eq!(b.caps().backend, id);
        }
        assert!(!reg.caps(BackendId::ParallelCpu).deterministic_oracle);
        assert!(reg.caps(BackendId::SerialReference).deterministic_oracle);
        assert!(!reg.caps(BackendId::SerialReference).planner_candidate);
    }

    #[test]
    fn register_replaces_same_id() {
        let mut reg = BackendRegistry::builtin();
        reg.register(Arc::new(TiledCpu::new(32)));
        assert_eq!(reg.len(), BackendId::ALL.len());
        assert_eq!(reg.caps(BackendId::TiledCpu).tile_cols, Some(32));
    }

    #[test]
    fn unregistered_caps_fall_back_to_builtin() {
        let reg = BackendRegistry::empty();
        assert!(reg.is_empty());
        assert_eq!(reg.caps(BackendId::TiledCpu).tile_cols, Some(DEFAULT_TILE_COLS));
        assert!(reg.get(BackendId::ParallelCpu).is_none());
    }

    #[test]
    fn all_backends_agree_bit_identically_on_rowwise_plans() {
        let a = gen::mesh::tri_mesh(12, 12, true, 3);
        let plan = Plan { reorder: Some(Reordering::Rcm), ..Plan::baseline() };
        let oracle = prepared_product(&SerialReference, &a, plan);
        assert!(oracle.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        for backend in
            [&ParallelCpu as &dyn ExecutionBackend, &TiledCpu::new(16), &AdaptiveCpu::default()]
        {
            let got = prepared_product(backend, &a, plan);
            assert!(
                got.approx_eq(&oracle, 0.0),
                "{:?} diverges from the serial oracle",
                backend.id()
            );
        }
    }

    #[test]
    fn all_backends_agree_bit_identically_on_clusterwise_plans() {
        let a = gen::banded::block_diagonal(96, (4, 8), 0.1, 2);
        let plan = Plan {
            clustering: ClusteringStrategy::Variable,
            kernel: KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let oracle = prepared_product(&SerialReference, &a, plan);
        assert!(oracle.numerically_eq(&spgemm_serial(&a, &a), 1e-9));
        for backend in
            [&ParallelCpu as &dyn ExecutionBackend, &TiledCpu::new(8), &AdaptiveCpu::default()]
        {
            let got = prepared_product(backend, &a, plan);
            assert!(
                got.approx_eq(&oracle, 0.0),
                "{:?} diverges from the serial oracle",
                backend.id()
            );
        }
    }

    #[test]
    fn column_tile_round_trips_through_hstack() {
        let b = gen::er::erdos_renyi_rect(40, 37, 4, 9);
        let w = 10;
        let ntiles = b.ncols.div_ceil(w);
        let parts: Vec<CsrMatrix> =
            (0..ntiles).map(|t| column_tile(&b, t * w, ((t + 1) * w).min(b.ncols))).collect();
        for p in &parts {
            p.validate().unwrap();
        }
        let back = hstack_tiles(&parts, w, b.ncols);
        assert!(back.approx_eq(&b, 0.0), "tiling must partition the columns exactly");
    }

    #[test]
    fn tiled_backend_degenerates_for_narrow_outputs() {
        let a = gen::grid::poisson2d(6, 6); // 36 cols < any sensible tile
        let plan = Plan::baseline();
        let tiled = prepared_product(&TiledCpu::new(512), &a, plan);
        let reference = prepared_product(&ParallelCpu, &a, plan);
        assert!(tiled.approx_eq(&reference, 0.0));
    }

    #[test]
    fn tiled_backend_handles_rectangular_rhs() {
        let a = gen::er::erdos_renyi(50, 5, 3);
        let b = gen::er::erdos_renyi_rect(50, 23, 3, 4);
        let cfg = ClusterConfig::default();
        let backend = TiledCpu::new(7);
        let plan = Plan::baseline();
        let (payload, _, _) = backend.prepare(&a, &plan, 7, &cfg);
        let got = backend.execute(payload.as_ref(), &plan, &b);
        assert!(got.numerically_eq(&spgemm_serial(&a, &b), 1e-9));
        assert_eq!(got.ncols, 23);
    }

    #[test]
    #[should_panic(expected = "foreign payload")]
    fn foreign_payload_is_rejected() {
        let a = gen::grid::poisson2d(4, 4);
        let plan = Plan::baseline();
        let (payload, _, _) = TiledCpu::new(8).prepare(&a, &plan, 7, &ClusterConfig::default());
        // A TiledOperand handed to the plain CPU backend must not be
        // silently misinterpreted.
        let _ = ParallelCpu.execute(payload.as_ref(), &plan, &a);
    }

    #[test]
    fn backend_ids_name_and_order() {
        assert_eq!(BackendId::default(), BackendId::ParallelCpu);
        let names: Vec<_> = BackendId::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["parallel-cpu", "serial-reference", "tiled-cpu", "adaptive-cpu"]);
        for id in BackendId::ALL {
            assert_eq!(BackendId::parse(id.name()), Some(id));
        }
    }
}
