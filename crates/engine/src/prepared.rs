//! Prepared operands: a [`Plan`] materialized once by its execution
//! backend, reusable across many multiplies.
//!
//! Preparation is the expensive part of the paper's pipeline — computing a
//! reordering permutation and building the `CSR_Cluster` structure — and
//! only pays off amortized over repeated multiplications (§4.5, Fig. 10).
//! [`PreparedMatrix`] does that work exactly once and records how long each
//! stage took; [`PreparedMatrix::multiply`] then runs only the kernel plus
//! an `O(nnz(C))` row un-permutation, returning results in the *original*
//! row order so callers never observe the internal reordering.
//!
//! The materialized payload is owned by the plan's
//! [`crate::ExecutionBackend`]: `prepare` asks the backend for its
//! backend-specific [`crate::BackendPayload`], and `multiply` dispatches
//! back to the same backend instance — the prepared operand carries its
//! executor with it, so cached entries stay runnable no matter which
//! registry resolved them.

use crate::backend::{BackendId, BackendPayload, BackendRegistry, ExecutionBackend};
use crate::plan::{OutputShape, Plan};
use cw_core::ClusterConfig;
use cw_sparse::{checksum, fingerprint, CsrMatrix, MatrixFingerprint, Permutation};
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock cost of each preparation stage, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrepTimings {
    /// Computing the reordering permutation(s).
    pub reorder_seconds: f64,
    /// Building the clustering and the `CSR_Cluster` structure.
    pub cluster_seconds: f64,
}

impl PrepTimings {
    /// Total preprocessing seconds.
    pub fn total(&self) -> f64 {
        self.reorder_seconds + self.cluster_seconds
    }
}

/// An `A` operand with its plan fully materialized by its backend.
#[derive(Debug, Clone)]
pub struct PreparedMatrix {
    /// The plan this preparation realizes (its `backend` field names the
    /// backend that owns the payload).
    pub plan: Plan,
    /// Fingerprint of the *original* (pre-permutation) operand.
    pub fingerprint: MatrixFingerprint,
    /// Full-content checksum of the original operand
    /// ([`cw_sparse::fingerprint::checksum`]); cache layers verify hits
    /// against it before trusting the sampled fingerprint.
    pub checksum: u64,
    /// Stage timings recorded during preparation.
    pub timings: PrepTimings,
    /// Inverse of the total row permutation (`None` when no reordering was
    /// applied); maps kernel output rows back to original row ids.
    unpermute: Option<Permutation>,
    /// The backend-specific materialized operand.
    payload: Arc<dyn BackendPayload>,
    /// The backend that prepared (and therefore executes) the payload.
    backend: Arc<dyn ExecutionBackend>,
    nrows: usize,
    ncols: usize,
    nnz: usize,
}

impl PreparedMatrix {
    /// Materializes `plan` for `a` on the plan's backend, resolved from
    /// the builtin [`BackendRegistry`]. Engines carrying a custom registry
    /// use [`PreparedMatrix::prepare_on`] instead.
    ///
    /// `seed` feeds randomized reorderings; `cluster` parameterizes the
    /// Variable/Hierarchical strategies.
    pub fn prepare(a: &CsrMatrix, plan: Plan, seed: u64, cluster: &ClusterConfig) -> Self {
        let backend = BackendRegistry::builtin().resolve(plan.backend);
        PreparedMatrix::prepare_on(&backend, a, plan, seed, cluster)
    }

    /// Materializes `plan` for `a` on an explicit backend instance. The
    /// stored plan's `backend` field is normalized to `backend.id()`, so a
    /// prepared operand is always self-consistent about who executes it.
    pub fn prepare_on(
        backend: &Arc<dyn ExecutionBackend>,
        a: &CsrMatrix,
        mut plan: Plan,
        seed: u64,
        cluster: &ClusterConfig,
    ) -> Self {
        plan.backend = backend.id();
        let fp = fingerprint(a);
        let sum = checksum(a);
        let (payload, unpermute, timings) = backend.prepare(a, &plan, seed, cluster);
        PreparedMatrix {
            plan,
            fingerprint: fp,
            checksum: sum,
            timings,
            unpermute,
            payload,
            backend: Arc::clone(backend),
            nrows: a.nrows,
            ncols: a.ncols,
            nnz: a.nnz(),
        }
    }

    /// Rows of the prepared operand (matches the original matrix).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the prepared operand (matches the original matrix).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeros of the original operand (the feedback loop uses
    /// this as the reference workload when normalizing observed kernel
    /// times across right-hand sides of different sizes).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The id of the backend that owns this preparation.
    pub fn backend_id(&self) -> BackendId {
        self.backend.id()
    }

    /// The backend-specific materialized payload (opaque to the engine;
    /// custom backends downcast it via [`BackendPayload::as_any`]).
    pub fn payload(&self) -> &dyn BackendPayload {
        self.payload.as_ref()
    }

    /// True when the kernel output needs row un-permutation.
    pub fn is_reordered(&self) -> bool {
        self.unpermute.is_some()
    }

    /// Approximate resident heap footprint in bytes: the backend payload
    /// plus the un-permutation map. Byte-bounded cache eviction
    /// ([`crate::CacheBound::Bytes`]) sizes entries with this.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let unpermute = self.unpermute.as_ref().map_or(0, |p| p.len() * size_of::<u32>());
        size_of::<Self>() + self.payload.approx_bytes() + unpermute
    }

    /// `C = A · b` shaped by the plan's [`OutputShape`], on the plan's
    /// backend; rows of `C` come back in the original (pre-reordering)
    /// order. Plans prepared with [`OutputShape::Masked`] must go through
    /// [`PreparedMatrix::multiply_shaped`] — the mask is request data, not
    /// part of the preparation.
    pub fn multiply(&self, b: &CsrMatrix) -> CsrMatrix {
        self.multiply_timed(b).0
    }

    /// [`PreparedMatrix::multiply`] plus `(kernel, postprocess)` stage
    /// seconds.
    pub fn multiply_timed(&self, b: &CsrMatrix) -> (CsrMatrix, f64, f64) {
        self.multiply_shaped_timed(b, None)
    }

    /// `C = shape(A · b)` with an explicit mask operand: the entry point
    /// for [`OutputShape::Masked`] plans (`mask` names the output
    /// positions to keep and must match the product's dimensions). For
    /// `Full`/`TopK` plans, `mask` must be `None`.
    pub fn multiply_shaped(&self, b: &CsrMatrix, mask: Option<&CsrMatrix>) -> CsrMatrix {
        self.multiply_shaped_timed(b, mask).0
    }

    /// [`PreparedMatrix::multiply_shaped`] plus `(kernel, postprocess)`
    /// stage seconds. Shape application is billed to the kernel stage —
    /// it is part of producing the shaped result — while postprocess
    /// remains the row un-permutation alone.
    pub fn multiply_shaped_timed(
        &self,
        b: &CsrMatrix,
        mask: Option<&CsrMatrix>,
    ) -> (CsrMatrix, f64, f64) {
        assert_eq!(
            matches!(self.plan.shape, OutputShape::Masked),
            mask.is_some(),
            "a mask operand must be supplied exactly when the plan's shape is Masked (plan: {})",
            self.plan.describe()
        );
        let t0 = Instant::now();
        // The kernel emits rows in the *internal* (post-reordering) order.
        // Shape application is row-local, so it commutes with the
        // reordering — the mask just has to travel into the same order.
        let internal_mask;
        let mask = match (&self.unpermute, mask) {
            (Some(q), Some(m)) => {
                internal_mask = q.inverse().permute_rows(m);
                Some(&internal_mask)
            }
            (_, m) => m,
        };
        let c = self.backend.execute_shaped(self.payload.as_ref(), &self.plan, b, mask);
        let kernel_seconds = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let c = match &self.unpermute {
            None => c,
            Some(q) => q.permute_rows(&c),
        };
        let postprocess_seconds = t1.elapsed().as_secs_f64();
        (c, kernel_seconds, postprocess_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ClusteringStrategy, KernelChoice, Plan};
    use cw_reorder::Reordering;
    use cw_sparse::gen;
    use cw_spgemm::spgemm_serial;

    fn check_plan(a: &CsrMatrix, plan: Plan) {
        let prepared = PreparedMatrix::prepare(a, plan, 7, &ClusterConfig::default());
        let got = prepared.multiply(a);
        let expect = spgemm_serial(a, a);
        assert!(got.numerically_eq(&expect, 1e-9), "plan {} output mismatch", plan.describe());
    }

    #[test]
    fn rowwise_plain_matches_baseline() {
        let a = gen::grid::poisson2d(9, 9);
        check_plan(&a, Plan::baseline());
    }

    #[test]
    fn reordered_rowwise_unpermutes_back() {
        let a = gen::mesh::tri_mesh(10, 10, true, 4);
        for r in [Reordering::Rcm, Reordering::Degree, Reordering::Random] {
            check_plan(&a, Plan { reorder: Some(r), ..Plan::baseline() });
        }
    }

    #[test]
    fn clustered_plans_match_baseline() {
        let a = gen::banded::block_diagonal(72, (4, 8), 0.1, 2);
        for clustering in [
            ClusteringStrategy::Fixed(8),
            ClusteringStrategy::Variable,
            ClusteringStrategy::Hierarchical,
        ] {
            check_plan(
                &a,
                Plan { clustering, kernel: KernelChoice::ClusterWise, ..Plan::baseline() },
            );
        }
    }

    #[test]
    fn reorder_composed_with_hierarchical_unpermutes_back() {
        let a = gen::mesh::tri_mesh(9, 9, true, 1);
        check_plan(
            &a,
            Plan {
                reorder: Some(Reordering::Rcm),
                clustering: ClusteringStrategy::Hierarchical,
                kernel: KernelChoice::ClusterWise,
                ..Plan::baseline()
            },
        );
    }

    #[test]
    fn every_builtin_backend_prepares_and_multiplies() {
        let a = gen::mesh::tri_mesh(10, 10, true, 2);
        let expect = spgemm_serial(&a, &a);
        for id in BackendId::ALL {
            let plan = Plan::baseline().on_backend(id);
            let prepared = PreparedMatrix::prepare(&a, plan, 7, &ClusterConfig::default());
            assert_eq!(prepared.backend_id(), id);
            assert_eq!(prepared.plan.backend, id);
            let got = prepared.multiply(&a);
            assert!(got.numerically_eq(&expect, 1e-9), "backend {id:?} diverges");
        }
    }

    #[test]
    fn prepare_on_normalizes_the_plan_backend() {
        let a = gen::grid::poisson2d(6, 6);
        let backend = BackendRegistry::builtin().resolve(BackendId::SerialReference);
        // The caller's plan still says ParallelCpu; prepare_on corrects it.
        let prepared =
            PreparedMatrix::prepare_on(&backend, &a, Plan::baseline(), 7, &Default::default());
        assert_eq!(prepared.plan.backend, BackendId::SerialReference);
        assert_eq!(prepared.backend_id(), BackendId::SerialReference);
    }

    #[test]
    fn approx_bytes_tracks_operand_size() {
        let small = gen::grid::poisson2d(6, 6);
        let large = gen::grid::poisson2d(24, 24);
        let cfg = ClusterConfig::default();
        let ps = PreparedMatrix::prepare(&small, Plan::baseline(), 7, &cfg);
        let pl = PreparedMatrix::prepare(&large, Plan::baseline(), 7, &cfg);
        assert!(ps.approx_bytes() > 0);
        assert!(pl.approx_bytes() > ps.approx_bytes());
        // A clustered + reordered preparation carries extra structure.
        let plan = Plan {
            reorder: Some(Reordering::Rcm),
            clustering: ClusteringStrategy::Fixed(4),
            kernel: KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let pc = PreparedMatrix::prepare(&large, plan, 7, &cfg);
        assert!(pc.approx_bytes() > 0);
    }

    #[test]
    fn rectangular_b_supported() {
        let a = gen::er::erdos_renyi(60, 5, 3);
        let b = gen::er::erdos_renyi_rect(60, 14, 3, 4);
        let plan = Plan { reorder: Some(Reordering::Degree), ..Plan::baseline() };
        let prepared = PreparedMatrix::prepare(&a, plan, 7, &ClusterConfig::default());
        let got = prepared.multiply(&b);
        assert!(got.numerically_eq(&spgemm_serial(&a, &b), 1e-9));
        assert_eq!(got.ncols, 14);
    }

    #[test]
    fn original_reorder_skips_permutation_entirely() {
        let a = gen::grid::poisson2d(6, 6);
        let plan = Plan { reorder: Some(Reordering::Original), ..Plan::baseline() };
        let prepared = PreparedMatrix::prepare(&a, plan, 7, &ClusterConfig::default());
        assert!(!prepared.is_reordered());
        assert_eq!(prepared.timings.total(), 0.0);
    }

    #[test]
    fn timings_are_recorded_for_preprocessing_plans() {
        let a = gen::mesh::tri_mesh(12, 12, true, 2);
        let plan = Plan {
            reorder: Some(Reordering::Rcm),
            clustering: ClusteringStrategy::Variable,
            kernel: KernelChoice::ClusterWise,
            ..Plan::baseline()
        };
        let prepared = PreparedMatrix::prepare(&a, plan, 7, &ClusterConfig::default());
        assert!(prepared.timings.reorder_seconds > 0.0);
        assert!(prepared.timings.cluster_seconds > 0.0);
        assert!(prepared.is_reordered());
    }
}
