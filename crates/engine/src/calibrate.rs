//! Calibration: fitting the [`CostModel`]'s constants from measured runs.
//!
//! The analytic cost model ships with hand-tuned constants that only need
//! to *rank* plans sensibly; their absolute scale is wrong on any machine
//! that is not the one they were guessed on (debug builds are off by an
//! order of magnitude, accelerators by more). Related work on
//! profile-guided sparse-kernel selection (Asudeh et al.'s SpMV reordering
//! study, Akbudak & Aykanat's locality models) shows offline-profiled
//! models beat static heuristics — so this module closes the loop
//! *offline*, complementing the online [`crate::FeedbackStore`]:
//!
//! 1. A bench sweep measures [`CalibrationSample`]s — operand features ×
//!    plan knobs × backend × observed prep/kernel seconds.
//! 2. The [`Calibrator`] fits the model's per-madd rate, accumulator
//!    discount, parallel speedup, preprocessing rates, and each backend's
//!    [`crate::BackendCaps::kernel_scale`] by least squares (in log space
//!    for the multiplicative kernel terms, through the origin for the
//!    linear-in-`nnz` preprocessing terms).
//! 3. The fit serializes as a versioned [`CalibrationProfile`] — a
//!    hand-rolled JSON document (the build container has no serde) that
//!    [`crate::Planner::with_profile`], [`crate::Engine::with_profile`],
//!    and the service's `ServiceConfig::profile` load at construction, so
//!    first-sight planning starts calibrated instead of pessimistic.
//!
//! ```
//! use cw_engine::{CalibrationProfile, Planner};
//!
//! let json = CalibrationProfile::default().to_json();
//! let profile = CalibrationProfile::from_json(&json).unwrap();
//! let planner = Planner::with_profile(7, profile);
//! assert!(planner.calibration.is_some());
//! ```

use crate::backend::{BackendCaps, BackendId, BackendRegistry};
use crate::cost::{CostEstimate, CostModel, OperandFeatures};
use crate::plan::{ClusteringStrategy, KernelChoice, Plan};
use cw_reorder::Reordering;
use std::fmt;
use std::path::Path;

pub mod json;

use json::JsonValue;

/// Schema version written into (and required from) profile JSON. Bump on
/// any incompatible field change; the golden-file test pins it.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// One measured execution: the operand's features, the plan that ran
/// (backend included in its knobs), the advisor affinity the model would
/// price it with, and the observed one-off preprocessing plus warm
/// per-multiply kernel seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSample {
    /// Features of the left-hand operand the plan ran on.
    pub features: OperandFeatures,
    /// The executed plan (its `backend` field names where it ran).
    pub plan: Plan,
    /// Advisor structural-evidence affinity for the plan's technique
    /// (`0` for the baseline), as fed to [`CostModel::estimate_with_caps`].
    pub affinity: f64,
    /// Observed one-off preprocessing seconds (reorder + clustering);
    /// backend-independent for the builtin CPU backends, which share
    /// [`crate::materialize_cpu`].
    pub prep_seconds: f64,
    /// Observed warm per-multiply kernel seconds (preparation cached).
    pub kernel_seconds: f64,
}

/// Per-backend fit result: the kernel-seconds multiplier relative to the
/// reference backend, and how many samples supported it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendCalibration {
    /// The backend this entry describes.
    pub backend: BackendId,
    /// Fitted [`crate::BackendCaps::kernel_scale`]: observed kernel
    /// seconds relative to the reference backend at equal knobs.
    pub kernel_scale: f64,
    /// Samples of this backend the fit was computed from.
    pub samples: usize,
}

/// A fitted, serializable calibration: the cost model's constants plus
/// per-backend kernel scales, versioned for forward compatibility.
///
/// The profile is the *artifact* of a [`Calibrator::fit`]: check one in
/// (`profiles/default.json`), load it at construction
/// ([`crate::Planner::with_profile`]), and regenerate it whenever the
/// hardware or the kernels change (`paper calibrate` emits a fresh one).
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationProfile {
    /// Schema version of the serialized form
    /// ([`PROFILE_SCHEMA_VERSION`] when produced by this build).
    pub schema_version: u64,
    /// Total samples the fit ingested (0 = uncalibrated defaults).
    pub fitted_from_samples: usize,
    /// The fitted cost-model constants (reference-backend scale).
    pub model: CostModel,
    /// Per-backend kernel scales, reference backend first.
    pub backends: Vec<BackendCalibration>,
}

impl Default for CalibrationProfile {
    /// The uncalibrated profile: hand-tuned [`CostModel`] constants and
    /// unit kernel scales for every builtin backend.
    fn default() -> Self {
        CalibrationProfile {
            schema_version: PROFILE_SCHEMA_VERSION,
            fitted_from_samples: 0,
            model: CostModel::default(),
            backends: BackendId::ALL
                .iter()
                .map(|&backend| BackendCalibration { backend, kernel_scale: 1.0, samples: 0 })
                .collect(),
        }
    }
}

/// Why a profile JSON document failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileParseError {
    /// The document is not valid JSON.
    Json(String),
    /// The document parsed but a required field is missing or mistyped.
    Schema(String),
    /// The document's `schema_version` is not one this build understands.
    Version(u64),
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileParseError::Json(e) => write!(f, "invalid JSON: {e}"),
            ProfileParseError::Schema(e) => write!(f, "schema error: {e}"),
            ProfileParseError::Version(v) => write!(
                f,
                "unsupported calibration profile schema version {v} (this build reads \
                 {PROFILE_SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for ProfileParseError {}

/// The cost-model constants in serialization order: one place defines the
/// JSON field set, so the writer and parser cannot drift apart.
const MODEL_FIELDS: [&str; 13] = [
    "seconds_per_madd",
    "dense_acc_discount",
    "parallel_speedup",
    "reorder_gain",
    "cluster_gain",
    "cluster_row_overhead",
    "cheap_reorder_per_nnz",
    "heavy_reorder_per_nnz",
    "fixed_cluster_per_nnz",
    "variable_cluster_per_nnz",
    "hierarchical_cluster_per_nnz",
    "tile_pass_overhead",
    "blocking_gain",
];

fn model_field(model: &CostModel, name: &str) -> f64 {
    match name {
        "seconds_per_madd" => model.seconds_per_madd,
        "dense_acc_discount" => model.dense_acc_discount,
        "parallel_speedup" => model.parallel_speedup,
        "reorder_gain" => model.reorder_gain,
        "cluster_gain" => model.cluster_gain,
        "cluster_row_overhead" => model.cluster_row_overhead,
        "cheap_reorder_per_nnz" => model.cheap_reorder_per_nnz,
        "heavy_reorder_per_nnz" => model.heavy_reorder_per_nnz,
        "fixed_cluster_per_nnz" => model.fixed_cluster_per_nnz,
        "variable_cluster_per_nnz" => model.variable_cluster_per_nnz,
        "hierarchical_cluster_per_nnz" => model.hierarchical_cluster_per_nnz,
        "tile_pass_overhead" => model.tile_pass_overhead,
        "blocking_gain" => model.blocking_gain,
        _ => unreachable!("unknown model field {name}"),
    }
}

fn set_model_field(model: &mut CostModel, name: &str, v: f64) {
    match name {
        "seconds_per_madd" => model.seconds_per_madd = v,
        "dense_acc_discount" => model.dense_acc_discount = v,
        "parallel_speedup" => model.parallel_speedup = v,
        "reorder_gain" => model.reorder_gain = v,
        "cluster_gain" => model.cluster_gain = v,
        "cluster_row_overhead" => model.cluster_row_overhead = v,
        "cheap_reorder_per_nnz" => model.cheap_reorder_per_nnz = v,
        "heavy_reorder_per_nnz" => model.heavy_reorder_per_nnz = v,
        "fixed_cluster_per_nnz" => model.fixed_cluster_per_nnz = v,
        "variable_cluster_per_nnz" => model.variable_cluster_per_nnz = v,
        "hierarchical_cluster_per_nnz" => model.hierarchical_cluster_per_nnz = v,
        "tile_pass_overhead" => model.tile_pass_overhead = v,
        "blocking_gain" => model.blocking_gain = v,
        _ => unreachable!("unknown model field {name}"),
    }
}

impl CalibrationProfile {
    /// The fitted cost model (what [`crate::Planner::with_profile`]
    /// installs as the planner's pricing model).
    pub fn cost_model(&self) -> CostModel {
        self.model
    }

    /// The fitted kernel scale for `id`, if the profile covers it.
    pub fn kernel_scale(&self, id: BackendId) -> Option<f64> {
        self.backends.iter().find(|b| b.backend == id).map(|b| b.kernel_scale)
    }

    /// `caps` with this profile's fitted `kernel_scale` for the same
    /// backend substituted in (unchanged when the profile does not cover
    /// the backend — a foreign accelerator stays priced by its own
    /// self-description).
    pub fn apply_to_caps(&self, caps: BackendCaps) -> BackendCaps {
        match self.kernel_scale(caps.backend) {
            Some(kernel_scale) => BackendCaps { kernel_scale, ..caps },
            None => caps,
        }
    }

    /// Prices `plan` with the fitted model *and* the fitted backend scale
    /// (the calibrated analogue of [`CostModel::estimate_with_caps`]).
    pub fn estimate(
        &self,
        f: &OperandFeatures,
        plan: &Plan,
        affinity: f64,
        caps: &BackendCaps,
    ) -> CostEstimate {
        self.model.estimate_with_caps(f, plan, affinity, &self.apply_to_caps(*caps))
    }

    /// Serializes the profile as pretty-printed JSON. Floats are written
    /// in Rust's shortest round-trip form, so
    /// [`CalibrationProfile::from_json`] recovers them bit-exactly.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        s.push_str(&format!("  \"fitted_from_samples\": {},\n", self.fitted_from_samples));
        s.push_str("  \"cost_model\": {\n");
        for (i, name) in MODEL_FIELDS.iter().enumerate() {
            let comma = if i + 1 < MODEL_FIELDS.len() { "," } else { "" };
            s.push_str(&format!("    \"{name}\": {:?}{comma}\n", model_field(&self.model, name)));
        }
        s.push_str("  },\n");
        s.push_str("  \"backends\": [\n");
        for (i, b) in self.backends.iter().enumerate() {
            let comma = if i + 1 < self.backends.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"kernel_scale\": {:?}, \"samples\": {}}}{comma}\n",
                b.backend.name(),
                b.kernel_scale,
                b.samples
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a profile from JSON produced by [`CalibrationProfile::to_json`]
    /// (or hand-edited — unknown fields are rejected as schema errors to
    /// catch typos in checked-in profiles).
    pub fn from_json(text: &str) -> Result<CalibrationProfile, ProfileParseError> {
        let doc = json::parse(text).map_err(ProfileParseError::Json)?;
        let obj = |v: &JsonValue, what: &str| -> Result<(), ProfileParseError> {
            if v.as_object().is_some() {
                Ok(())
            } else {
                Err(ProfileParseError::Schema(format!("{what} must be an object")))
            }
        };
        obj(&doc, "document")?;
        let num = |v: Option<&JsonValue>, what: &str| -> Result<f64, ProfileParseError> {
            v.and_then(JsonValue::as_f64)
                .ok_or_else(|| ProfileParseError::Schema(format!("missing number `{what}`")))
        };
        let version = num(doc.get("schema_version"), "schema_version")? as u64;
        if version != PROFILE_SCHEMA_VERSION {
            return Err(ProfileParseError::Version(version));
        }
        let samples = num(doc.get("fitted_from_samples"), "fitted_from_samples")? as usize;

        let model_json = doc
            .get("cost_model")
            .ok_or_else(|| ProfileParseError::Schema("missing `cost_model`".into()))?;
        let fields = model_json
            .as_object()
            .ok_or_else(|| ProfileParseError::Schema("`cost_model` must be an object".into()))?;
        for (k, _) in fields {
            if !MODEL_FIELDS.contains(&k.as_str()) {
                return Err(ProfileParseError::Schema(format!("unknown cost_model field `{k}`")));
            }
        }
        let mut model = CostModel::default();
        for name in MODEL_FIELDS {
            set_model_field(&mut model, name, num(model_json.get(name), name)?);
        }

        let backends_json = doc
            .get("backends")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ProfileParseError::Schema("missing array `backends`".into()))?;
        let mut backends = Vec::with_capacity(backends_json.len());
        for b in backends_json {
            let name = b.get("backend").and_then(JsonValue::as_str).ok_or_else(|| {
                ProfileParseError::Schema("backend entry missing `backend`".into())
            })?;
            let backend = BackendId::parse(name)
                .ok_or_else(|| ProfileParseError::Schema(format!("unknown backend `{name}`")))?;
            backends.push(BackendCalibration {
                backend,
                kernel_scale: num(b.get("kernel_scale"), "kernel_scale")?,
                samples: num(b.get("samples"), "samples")? as usize,
            });
        }
        Ok(CalibrationProfile {
            schema_version: version,
            fitted_from_samples: samples,
            model,
            backends,
        })
    }

    /// Writes the profile JSON to `path` (creating parent directories).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a profile from `path`.
    pub fn load(path: &Path) -> std::io::Result<CalibrationProfile> {
        let text = std::fs::read_to_string(path)?;
        CalibrationProfile::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// The preprocessing-cost class a plan's prep seconds are attributed to
/// (each maps to one linear-in-`nnz` [`CostModel`] constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrepClass {
    CheapReorder,
    HeavyReorder,
    FixedCluster,
    VariableCluster,
    HierarchicalCluster,
}

/// The prep classes `plan` pays for (0, 1, or 2 entries: reorder and/or
/// cluster construction).
fn prep_classes(plan: &Plan) -> Vec<PrepClass> {
    let mut classes = Vec::with_capacity(2);
    match plan.reorder {
        None | Some(Reordering::Original) => {}
        Some(Reordering::Rcm | Reordering::Degree | Reordering::Gray | Reordering::Random) => {
            classes.push(PrepClass::CheapReorder)
        }
        Some(_) => classes.push(PrepClass::HeavyReorder),
    }
    if plan.kernel == KernelChoice::ClusterWise {
        classes.push(match plan.clustering {
            ClusteringStrategy::None | ClusteringStrategy::Fixed(_) => PrepClass::FixedCluster,
            ClusteringStrategy::Variable => PrepClass::VariableCluster,
            ClusteringStrategy::Hierarchical => PrepClass::HierarchicalCluster,
        });
    }
    classes
}

/// Fits [`CostModel`] / backend constants from [`CalibrationSample`]s.
///
/// The fit is deliberately closed-form (no iterative optimizer in the
/// offline container):
///
/// * **Preprocessing rates** — each per-`nnz` constant is a least-squares
///   line through the origin over the samples whose plan pays *only* that
///   prep class (mixed reorder+cluster samples are skipped: attributing a
///   summed observation would need a joint solve for little gain, since
///   the sweep measures single-class plans too).
/// * **Technique gains** — `reorder_gain` and `cluster_gain` from the
///   observed kernel *ratio* of each technique pipeline to the baseline
///   pipeline on the same operand/backend (scale-free, so they can be
///   fitted before the per-madd rate), regressed through the origin
///   against the advisor affinity / row-overlap term the model multiplies
///   them by.
/// * **Parallel speedup** — the geometric mean of serial ÷ parallel
///   observed kernel seconds over (operand, pipeline) pairs measured on
///   both a parallel backend and the serial reference.
/// * **Per-madd rate, accumulator discount, backend scales** — the model's
///   kernel estimate is multiplicative, so `log(observed)` minus
///   `log(structural factor)` is linear in `log(seconds_per_madd)`,
///   `log(dense_acc_discount)` (an indicator regressor), and
///   `log(kernel_scale)` (per-backend intercepts); the closed-form
///   two-way solve recovers all three.
///
/// ```
/// use cw_engine::Calibrator;
///
/// let calibrator = Calibrator::new();
/// assert!(calibrator.is_empty());
/// let profile = calibrator.fit(); // no samples: uncalibrated defaults
/// assert_eq!(profile.fitted_from_samples, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Calibrator {
    samples: Vec<CalibrationSample>,
    registry: BackendRegistry,
    base: CostModel,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator::new()
    }
}

impl Calibrator {
    /// Empty calibrator over the builtin backend registry and default
    /// structural constants.
    pub fn new() -> Calibrator {
        Calibrator::with_registry(BackendRegistry::builtin())
    }

    /// Empty calibrator resolving backend capability descriptors (tile
    /// geometry, parallel flag) from `registry` — use when samples were
    /// measured on non-default backends (e.g. a custom tile width).
    pub fn with_registry(registry: BackendRegistry) -> Calibrator {
        Calibrator { samples: Vec::new(), registry, base: CostModel::default() }
    }

    /// Adds one measured sample. Non-finite or non-positive kernel
    /// observations are rejected (dropped) — a zero-second timing carries
    /// no information and would blow up the log-space fit.
    pub fn push(&mut self, sample: CalibrationSample) {
        if sample.kernel_seconds.is_finite()
            && sample.kernel_seconds > 0.0
            && sample.prep_seconds.is_finite()
            && sample.prep_seconds >= 0.0
        {
            self.samples.push(sample);
        }
    }

    /// Adds many samples (same filtering as [`Calibrator::push`]).
    pub fn extend<I: IntoIterator<Item = CalibrationSample>>(&mut self, samples: I) {
        for s in samples {
            self.push(s);
        }
    }

    /// Samples accepted so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample was accepted.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The accepted samples.
    pub fn samples(&self) -> &[CalibrationSample] {
        &self.samples
    }

    /// Fits a [`CalibrationProfile`] from the accepted samples. Constants
    /// without supporting samples keep their hand-tuned defaults, so a
    /// partial sweep degrades gracefully to a partially calibrated model.
    pub fn fit(&self) -> CalibrationProfile {
        let mut model = self.base;

        // --- Preprocessing rates: per-class LSQ through the origin. ---
        // prep ≈ k · nnz  ⇒  k = Σ(prep·nnz) / Σ(nnz²).
        let mut sums: Vec<(PrepClass, f64, f64)> = Vec::new();
        for s in &self.samples {
            let classes = prep_classes(&s.plan);
            if classes.len() != 1 || s.prep_seconds <= 0.0 {
                continue;
            }
            let nnz = s.features.nnz as f64;
            let entry = match sums.iter_mut().find(|(c, _, _)| *c == classes[0]) {
                Some(e) => e,
                None => {
                    sums.push((classes[0], 0.0, 0.0));
                    sums.last_mut().expect("just pushed")
                }
            };
            entry.1 += s.prep_seconds * nnz;
            entry.2 += nnz * nnz;
        }
        for (class, num, den) in sums {
            if den <= 0.0 {
                continue;
            }
            let k = num / den;
            match class {
                PrepClass::CheapReorder => model.cheap_reorder_per_nnz = k,
                PrepClass::HeavyReorder => model.heavy_reorder_per_nnz = k,
                PrepClass::FixedCluster => model.fixed_cluster_per_nnz = k,
                PrepClass::VariableCluster => model.variable_cluster_per_nnz = k,
                PrepClass::HierarchicalCluster => model.hierarchical_cluster_per_nnz = k,
            }
        }

        // --- Technique gains: ratio fits against the baseline pipeline. ---
        // kernel(reordered) = kernel(baseline) · (1 − reorder_gain · affinity)
        // is scale-free: the per-madd rate and backend scale cancel in the
        // observed ratio, so the gains can be fitted before either. Pairs
        // match on operand, backend, accumulator, and parallelism.
        let is_baseline = |p: &Plan| {
            p.reorder.is_none_or(|r| r == Reordering::Original)
                && p.kernel == KernelChoice::RowWise
                && matches!(p.clustering, ClusteringStrategy::None)
        };
        let op_key = |s: &CalibrationSample| {
            (
                s.features.nrows,
                s.features.ncols,
                s.features.nnz,
                s.plan.backend,
                s.plan.acc,
                s.plan.parallel,
            )
        };
        let baseline_for = |s: &CalibrationSample| {
            self.samples
                .iter()
                .find(|b| is_baseline(&b.plan) && op_key(b) == op_key(s) && b.kernel_seconds > 0.0)
        };
        let (mut rnum, mut rden) = (0.0f64, 0.0f64);
        let (mut cnum, mut cden) = (0.0f64, 0.0f64);
        for s in &self.samples {
            let Some(b) = baseline_for(s) else { continue };
            match s.plan.kernel {
                KernelChoice::RowWise => {
                    if s.plan.reorder.is_some_and(|r| r != Reordering::Original) {
                        let a = s.affinity.clamp(0.0, 1.0);
                        rnum += (1.0 - s.kernel_seconds / b.kernel_seconds) * a;
                        rden += a * a;
                    }
                }
                KernelChoice::ClusterWise => {
                    let overlap = match s.plan.clustering {
                        ClusteringStrategy::Hierarchical => 0.5 * s.affinity.clamp(0.0, 1.0),
                        _ => s
                            .features
                            .profile
                            .consecutive_jaccard
                            .max(s.affinity.clamp(0.0, 1.0) * 0.5),
                    }
                    .min(0.95);
                    // Subtract the modeled per-row bookkeeping before
                    // reading off the multiplicative gain.
                    let adjusted = (s.kernel_seconds
                        - self.base.cluster_row_overhead * s.features.nrows as f64)
                        / b.kernel_seconds;
                    cnum += (1.0 - adjusted) * overlap;
                    cden += overlap * overlap;
                }
            }
        }
        if rden > 0.0 {
            model.reorder_gain = (rnum / rden).clamp(0.0, 0.95);
        }
        if cden > 0.0 {
            model.cluster_gain = (cnum / cden).clamp(0.0, 0.95);
        }

        // --- Parallel speedup: geomean over serial/parallel pairs. ---
        // Pair key: same operand (nrows, ncols, nnz) and same pipeline
        // knobs modulo backend.
        let pair_key = |s: &CalibrationSample| {
            let mut knobs = s.plan.knobs();
            knobs.backend = BackendId::ParallelCpu;
            (s.features.nrows, s.features.ncols, s.features.nnz, knobs)
        };
        let mut log_speedups = Vec::new();
        for s in &self.samples {
            let caps = self.registry.caps(s.plan.backend);
            if !(s.plan.parallel && caps.parallel && caps.tile_cols.is_none()) {
                continue;
            }
            for t in &self.samples {
                if t.plan.backend == BackendId::SerialReference
                    && pair_key(t) == pair_key(s)
                    && t.kernel_seconds > 0.0
                {
                    log_speedups.push((t.kernel_seconds / s.kernel_seconds).ln());
                }
            }
        }
        if !log_speedups.is_empty() {
            let mean = log_speedups.iter().sum::<f64>() / log_speedups.len() as f64;
            model.parallel_speedup = mean.exp().max(1.0);
        }

        // --- Kernel scale fit (log space). ---
        // With seconds_per_madd = 1, dense discount = 1, and unit backend
        // scale, the model's kernel estimate is the structural factor X.
        // Then log(observed) − log(X) = log(s) + dense·log(d) + log(scale_b)
        // with per-backend intercepts; solve the two-way layout in closed
        // form: the dense coefficient from within-backend contrasts, the
        // intercepts from the de-densed residuals.
        let mut unit = model;
        unit.seconds_per_madd = 1.0;
        unit.dense_acc_discount = 1.0;
        unit.cluster_row_overhead = 0.0; // additive term excluded from the log fit
        struct Residual {
            backend: BackendId,
            dense: bool,
            r: f64,
        }
        let mut residuals: Vec<Residual> = Vec::new();
        for s in &self.samples {
            let caps = BackendCaps { kernel_scale: 1.0, ..self.registry.caps(s.plan.backend) };
            let x = unit.estimate_with_caps(&s.features, &s.plan, s.affinity, &caps).kernel_seconds;
            if x > 0.0 {
                residuals.push(Residual {
                    backend: s.plan.backend,
                    dense: s.plan.acc == cw_spgemm::AccumulatorKind::Dense,
                    r: (s.kernel_seconds / x).ln(),
                });
            }
        }
        let backend_ids: Vec<BackendId> = {
            let mut ids = Vec::new();
            for res in &residuals {
                if !ids.contains(&res.backend) {
                    ids.push(res.backend);
                }
            }
            ids
        };
        // Dense coefficient: weighted mean of per-backend (dense − hash)
        // residual contrasts, over backends observing both accumulators.
        let mut contrast_num = 0.0;
        let mut contrast_weight = 0.0;
        for &id in &backend_ids {
            let (mut ds, mut dn, mut hs, mut hn) = (0.0, 0usize, 0.0, 0usize);
            for res in residuals.iter().filter(|res| res.backend == id) {
                if res.dense {
                    ds += res.r;
                    dn += 1;
                } else {
                    hs += res.r;
                    hn += 1;
                }
            }
            if dn > 0 && hn > 0 {
                let w = (dn.min(hn)) as f64;
                contrast_num += w * (ds / dn as f64 - hs / hn as f64);
                contrast_weight += w;
            }
        }
        let log_dense = if contrast_weight > 0.0 { contrast_num / contrast_weight } else { 0.0 };
        if contrast_weight > 0.0 {
            model.dense_acc_discount = log_dense.exp();
        }
        // Per-backend intercepts over de-densed residuals.
        let mut intercepts: Vec<(BackendId, f64, usize)> = Vec::new();
        for &id in &backend_ids {
            let rs: Vec<f64> = residuals
                .iter()
                .filter(|res| res.backend == id)
                .map(|res| res.r - if res.dense { log_dense } else { 0.0 })
                .collect();
            if !rs.is_empty() {
                intercepts.push((id, rs.iter().sum::<f64>() / rs.len() as f64, rs.len()));
            }
        }
        // seconds_per_madd anchors on the reference backend when sampled,
        // else on the sample-weighted mean intercept.
        let log_ref = intercepts
            .iter()
            .find(|(id, _, _)| *id == BackendId::ParallelCpu)
            .map(|&(_, m, _)| m)
            .or_else(|| {
                let total: usize = intercepts.iter().map(|&(_, _, n)| n).sum();
                if total == 0 {
                    None
                } else {
                    Some(
                        intercepts.iter().map(|&(_, m, n)| m * n as f64).sum::<f64>()
                            / total as f64,
                    )
                }
            });
        if let Some(log_ref) = log_ref {
            model.seconds_per_madd = log_ref.exp();
        }

        let mut backends: Vec<BackendCalibration> = Vec::new();
        for &id in BackendId::ALL.iter() {
            let fitted = intercepts.iter().find(|(b, _, _)| *b == id);
            let (kernel_scale, samples) = match (fitted, log_ref) {
                (Some(&(_, m, n)), Some(anchor)) => ((m - anchor).exp(), n),
                _ => (self.registry.caps(id).kernel_scale, 0),
            };
            backends.push(BackendCalibration { backend: id, kernel_scale, samples });
        }

        CalibrationProfile {
            schema_version: PROFILE_SCHEMA_VERSION,
            fitted_from_samples: self.samples.len(),
            model,
            backends,
        }
    }
}

/// Median of `xs` (0 when empty); the robust aggregate both the bench
/// experiment and the perf gate use for prediction-error summaries.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Relative kernel-prediction errors `|predicted − observed| / observed`
/// of `profile` over `samples` (capability descriptors resolved from
/// `registry`). Pair with [`median`] for the held-out error summary.
pub fn prediction_errors(
    profile: &CalibrationProfile,
    registry: &BackendRegistry,
    samples: &[CalibrationSample],
) -> Vec<f64> {
    samples
        .iter()
        .filter(|s| s.kernel_seconds > 0.0)
        .map(|s| {
            let caps = registry.caps(s.plan.backend);
            let predicted = profile.estimate(&s.features, &s.plan, s.affinity, &caps);
            (predicted.kernel_seconds - s.kernel_seconds).abs() / s.kernel_seconds
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use cw_reorder::advisor::Profile;
    use cw_spgemm::AccumulatorKind;

    fn features(nrows: usize, ncols: usize, nnz: usize) -> OperandFeatures {
        OperandFeatures {
            nrows,
            ncols,
            nnz,
            profile: Profile {
                degree_skew: 1.5,
                relative_bandwidth: 0.2,
                consecutive_jaccard: 0.4,
                avg_row_nnz: nnz as f64 / nrows.max(1) as f64,
            },
        }
    }

    /// Samples generated *from* a known model, so the fit has exact ground
    /// truth to recover (no timing noise).
    fn synthetic_samples(truth: &CalibrationProfile) -> Vec<CalibrationSample> {
        let registry = BackendRegistry::builtin();
        let mut samples = Vec::new();
        let operands = [
            features(500, 500, 4000),
            features(1200, 1200, 9000),
            features(2000, 2000, 30_000),
            features(800, 2000, 12_000),
        ];
        let pipelines = [
            Plan::baseline(),
            Plan { acc: AccumulatorKind::Dense, ..Plan::baseline() },
            Plan { reorder: Some(Reordering::Rcm), ..Plan::baseline() },
            Plan { reorder: Some(Reordering::Gp(16)), ..Plan::baseline() },
            Plan {
                clustering: ClusteringStrategy::Variable,
                kernel: KernelChoice::ClusterWise,
                ..Plan::baseline()
            },
            Plan {
                clustering: ClusteringStrategy::Hierarchical,
                kernel: KernelChoice::ClusterWise,
                ..Plan::baseline()
            },
        ];
        for f in operands {
            for p in pipelines {
                for backend in BackendId::ALL {
                    let plan = p.on_backend(backend);
                    let caps = registry.caps(backend);
                    let est = truth.estimate(&f, &plan, 0.4, &caps);
                    samples.push(CalibrationSample {
                        features: f,
                        plan,
                        affinity: 0.4,
                        prep_seconds: est.prep_seconds,
                        kernel_seconds: est.kernel_seconds,
                    });
                }
            }
        }
        samples
    }

    #[test]
    fn fit_recovers_a_known_model_from_noiseless_samples() {
        let mut truth = CalibrationProfile::default();
        // A machine 20× slower than the hand-tuned guess, with a stronger
        // dense-accumulator win and a different parallel speedup.
        truth.model.seconds_per_madd = 30e-9;
        truth.model.dense_acc_discount = 0.5;
        truth.model.parallel_speedup = 6.0;
        truth.model.cheap_reorder_per_nnz = 40e-9;
        truth.model.variable_cluster_per_nnz = 80e-9;
        truth.backends[2].kernel_scale = 1.4; // tiled-cpu genuinely slower
                                              // The additive cluster-row overhead is excluded from the log fit;
                                              // zero it in the ground truth so recovery is exact.
        truth.model.cluster_row_overhead = 0.0;

        let mut cal = Calibrator::new();
        cal.extend(synthetic_samples(&truth));
        let fitted = cal.fit();
        assert_eq!(fitted.fitted_from_samples, cal.len());

        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
        assert!(rel(fitted.model.seconds_per_madd, truth.model.seconds_per_madd) < 0.05);
        assert!(rel(fitted.model.dense_acc_discount, truth.model.dense_acc_discount) < 0.05);
        assert!(rel(fitted.model.parallel_speedup, truth.model.parallel_speedup) < 0.05);
        assert!(rel(fitted.model.cheap_reorder_per_nnz, truth.model.cheap_reorder_per_nnz) < 0.05);
        assert!(
            rel(fitted.model.variable_cluster_per_nnz, truth.model.variable_cluster_per_nnz) < 0.05
        );
        let tiled = fitted.kernel_scale(BackendId::TiledCpu).unwrap();
        assert!(rel(tiled, 1.4) < 0.05, "tiled scale {tiled}");
        // And the fitted profile predicts the ground-truth timings far
        // better than the hand-tuned defaults.
        let registry = BackendRegistry::builtin();
        let samples = synthetic_samples(&truth);
        let fitted_err = median(&prediction_errors(&fitted, &registry, &samples));
        let default_err =
            median(&prediction_errors(&CalibrationProfile::default(), &registry, &samples));
        assert!(
            fitted_err < 0.05 && fitted_err < default_err,
            "fitted {fitted_err} vs default {default_err}"
        );
    }

    #[test]
    fn empty_fit_degrades_to_defaults() {
        let profile = Calibrator::new().fit();
        assert_eq!(profile.fitted_from_samples, 0);
        assert_eq!(profile.model, CostModel::default());
        for b in &profile.backends {
            assert_eq!(b.samples, 0);
        }
    }

    #[test]
    fn degenerate_samples_are_rejected() {
        let mut cal = Calibrator::new();
        let f = features(100, 100, 500);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            cal.push(CalibrationSample {
                features: f,
                plan: Plan::baseline(),
                affinity: 0.0,
                prep_seconds: 0.0,
                kernel_seconds: bad,
            });
        }
        cal.push(CalibrationSample {
            features: f,
            plan: Plan::baseline(),
            affinity: 0.0,
            prep_seconds: f64::NAN,
            kernel_seconds: 1.0,
        });
        assert!(cal.is_empty());
    }

    #[test]
    fn profile_json_round_trips_bit_exactly() {
        let mut cal = Calibrator::new();
        let mut truth = CalibrationProfile::default();
        truth.model.seconds_per_madd = 12.5e-9;
        cal.extend(synthetic_samples(&truth));
        let profile = cal.fit();
        let parsed = CalibrationProfile::from_json(&profile.to_json()).unwrap();
        assert_eq!(parsed, profile, "every fitted constant must survive the round trip");
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(matches!(
            CalibrationProfile::from_json("not json"),
            Err(ProfileParseError::Json(_))
        ));
        assert!(matches!(CalibrationProfile::from_json("{}"), Err(ProfileParseError::Schema(_))));
        let wrong_version = CalibrationProfile::default()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        assert_eq!(
            CalibrationProfile::from_json(&wrong_version),
            Err(ProfileParseError::Version(999))
        );
        let unknown_field = CalibrationProfile::default()
            .to_json()
            .replace("\"seconds_per_madd\"", "\"seconds_per_mad\"");
        assert!(matches!(
            CalibrationProfile::from_json(&unknown_field),
            Err(ProfileParseError::Schema(_))
        ));
    }

    #[test]
    fn save_and_load_round_trip() {
        let profile = CalibrationProfile::default();
        let dir = std::env::temp_dir().join("cw_calibrate_test");
        let path = dir.join("profile.json");
        profile.save(&path).unwrap();
        assert_eq!(CalibrationProfile::load(&path).unwrap(), profile);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn apply_to_caps_rescales_only_known_backends() {
        let mut profile = CalibrationProfile::default();
        profile.backends.retain(|b| b.backend == BackendId::ParallelCpu);
        profile.backends[0].kernel_scale = 3.0;
        let scaled = profile.apply_to_caps(BackendId::ParallelCpu.caps());
        assert_eq!(scaled.kernel_scale, 3.0);
        let untouched = profile.apply_to_caps(BackendId::TiledCpu.caps());
        assert_eq!(untouched.kernel_scale, BackendId::TiledCpu.caps().kernel_scale);
    }

    #[test]
    fn median_is_robust() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 100.0, 2.0]), 2.0);
    }
}
