//! Execution plans: what the planner decides, what `prepare` materializes.
//!
//! A [`Plan`] is the explicit, inspectable record of every choice the
//! paper's evaluation shows matters for SpGEMM throughput: the row
//! reordering (Table 1), the clustering scheme (§3.2, Algs. 2–3), the
//! kernel (row-wise Gustavson vs cluster-wise, Alg. 1), the sparse
//! accumulator (Nagasaka et al.), and the parallelism knobs. Plans are
//! plain data — building one does no work; [`crate::PreparedMatrix`]
//! materializes it.

use crate::backend::BackendId;
use cw_reorder::advisor::Suggestion;
use cw_reorder::Reordering;
use cw_spgemm::rowwise::SpGemmOptions;
use cw_spgemm::AccumulatorKind;

/// Which multiply kernel executes the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// Row-wise Gustavson over plain CSR (the paper's baseline, §2.2).
    RowWise,
    /// Cluster-wise computation over `CSR_Cluster` (paper Alg. 1).
    ClusterWise,
}

/// What portion of the product the caller wants back.
///
/// Output shape is a **plan knob**: it participates in [`Plan::knobs`], so
/// plan-cache entries, [`crate::FeedbackStore`] candidates, and cost-model
/// pricing for different shapes never collide — a top-k request and a full
/// request on the same operand learn and cache independently. Execution
/// dispatches through [`crate::ExecutionBackend::execute_shaped`]; the
/// built-in backends compute the full product and apply the row-local
/// shape transform ([`cw_spgemm::row_topk`] / [`cw_spgemm::apply_mask`]),
/// which commutes with row permutation, so every backend stays
/// bit-identical to the serial reference per shape.
///
/// The mask operand itself is *request data*, not plan data — it travels
/// alongside the multiply (e.g. `cw_service`'s `RequestShape::Masked`)
/// while the plan only records *that* the output is masked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OutputShape {
    /// The whole product (the default).
    #[default]
    Full,
    /// Only entries at positions present in a caller-provided mask
    /// pattern (GraphBLAS-style `C⟨M⟩ = A·B`).
    Masked,
    /// The `k` largest-magnitude entries of each output row.
    TopK(usize),
}

impl OutputShape {
    /// Compact human-readable form, e.g. `full` / `masked` / `top4`.
    pub fn describe(&self) -> String {
        match self {
            OutputShape::Full => "full".to_string(),
            OutputShape::Masked => "masked".to_string(),
            OutputShape::TopK(k) => format!("top{k}"),
        }
    }
}

/// How the prepared operand's rows are grouped into clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusteringStrategy {
    /// No clustering; the operand stays in CSR.
    None,
    /// Equal-size clusters of the given length (paper §3.2).
    Fixed(usize),
    /// Jaccard-threshold growing (paper Alg. 2).
    Variable,
    /// Similar-row discovery + union-find merging; also reorders
    /// (paper Alg. 3).
    Hierarchical,
}

/// A complete, explicit recipe for one SpGEMM pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// Row reordering applied to the operand before clustering
    /// (`None` = keep input order). Hierarchical clustering brings its own
    /// reordering and composes with this one.
    pub reorder: Option<Reordering>,
    /// Row-grouping strategy.
    pub clustering: ClusteringStrategy,
    /// Kernel executing the multiply.
    pub kernel: KernelChoice,
    /// Sparse accumulator for both symbolic and numeric phases.
    pub acc: AccumulatorKind,
    /// Run the kernel's rayon-parallel path.
    pub parallel: bool,
    /// Row/cluster chunks per rayon thread (load-balance granularity).
    pub chunks_per_thread: usize,
    /// Execution backend the plan runs on (resolved through the
    /// [`crate::BackendRegistry`] at prepare/execute time).
    pub backend: BackendId,
    /// What portion of the product to return ([`OutputShape::Full`] by
    /// default). A masked plan expects the mask operand alongside the
    /// multiply call.
    pub shape: OutputShape,
    /// One-line explanation of why the planner chose this plan.
    pub rationale: &'static str,
}

/// The behavior-determining subset of a [`Plan`] — everything except the
/// `rationale` metadata. Two plans with equal knobs produce identical
/// prepared operands, so this (not full `Plan` equality) is what cache
/// identity and plan comparison should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKnobs {
    /// See [`Plan::reorder`].
    pub reorder: Option<Reordering>,
    /// See [`Plan::clustering`].
    pub clustering: ClusteringStrategy,
    /// See [`Plan::kernel`].
    pub kernel: KernelChoice,
    /// See [`Plan::acc`].
    pub acc: AccumulatorKind,
    /// See [`Plan::parallel`].
    pub parallel: bool,
    /// See [`Plan::chunks_per_thread`].
    pub chunks_per_thread: usize,
    /// See [`Plan::backend`]. Backend identity is part of the knobs, so
    /// cache entries and feedback candidates are effectively keyed by
    /// `(fingerprint, pipeline knobs, backend)`.
    pub backend: BackendId,
    /// See [`Plan::shape`]. Output shape is part of the knobs, so
    /// preparations and feedback for different shapes never collide.
    pub shape: OutputShape,
}

impl Plan {
    /// The do-nothing plan: row-wise Gustavson on the matrix as given.
    pub fn baseline() -> Plan {
        Plan {
            reorder: None,
            clustering: ClusteringStrategy::None,
            kernel: KernelChoice::RowWise,
            acc: AccumulatorKind::Hash,
            parallel: true,
            chunks_per_thread: 8,
            backend: BackendId::ParallelCpu,
            shape: OutputShape::Full,
            rationale: "baseline row-wise Gustavson",
        }
    }

    /// The same pipeline on a different execution backend (builder-style;
    /// used to force a backend for ablations and cross-validation).
    pub fn on_backend(self, backend: BackendId) -> Plan {
        Plan { backend, ..self }
    }

    /// The same pipeline producing a different output shape
    /// (builder-style). Because the shape is a knob, the shaped plan
    /// caches and learns separately from the full-product one.
    pub fn with_shape(self, shape: OutputShape) -> Plan {
        Plan { shape, ..self }
    }

    /// Translates an advisor [`Suggestion`] into a plan skeleton
    /// (accumulator/parallelism knobs keep baseline defaults; the planner
    /// tunes them afterwards from the profile).
    pub fn from_suggestion(suggestion: Suggestion) -> Plan {
        match suggestion {
            Suggestion::Reorder(r) => Plan {
                reorder: Some(r),
                rationale: "advisor: reorder rows, then row-wise SpGEMM",
                ..Plan::baseline()
            },
            Suggestion::ClusterInPlace => Plan {
                clustering: ClusteringStrategy::Variable,
                kernel: KernelChoice::ClusterWise,
                rationale: "advisor: rows already similar in order; cluster in place",
                ..Plan::baseline()
            },
            Suggestion::Hierarchical => Plan {
                clustering: ClusteringStrategy::Hierarchical,
                kernel: KernelChoice::ClusterWise,
                rationale: "advisor: hierarchical clustering (reorders and clusters)",
                ..Plan::baseline()
            },
            Suggestion::LeaveOriginal => {
                Plan { rationale: "advisor: no technique predicted to pay off", ..Plan::baseline() }
            }
        }
    }

    /// The behavior-determining knobs, excluding the `rationale` string.
    pub fn knobs(&self) -> PlanKnobs {
        PlanKnobs {
            reorder: self.reorder,
            clustering: self.clustering,
            kernel: self.kernel,
            acc: self.acc,
            parallel: self.parallel,
            chunks_per_thread: self.chunks_per_thread,
            backend: self.backend,
            shape: self.shape,
        }
    }

    /// The kernel options this plan implies.
    pub fn spgemm_options(&self) -> SpGemmOptions {
        SpGemmOptions {
            acc: self.acc,
            parallel: self.parallel,
            chunks_per_thread: self.chunks_per_thread,
        }
    }

    /// True if materializing this plan does nontrivial preprocessing
    /// (reordering or cluster construction) worth caching.
    pub fn has_preprocessing(&self) -> bool {
        self.reorder.is_some_and(|r| r != Reordering::Original)
            || self.clustering != ClusteringStrategy::None
    }

    /// Compact human-readable form, e.g. `RCM → Variable → ClusterWise`.
    pub fn describe(&self) -> String {
        let reorder = match self.reorder {
            None => "Original".to_string(),
            Some(r) => r.name().to_string(),
        };
        let clustering = match self.clustering {
            ClusteringStrategy::None => "NoClustering".to_string(),
            ClusteringStrategy::Fixed(k) => format!("Fixed({k})"),
            ClusteringStrategy::Variable => "Variable".to_string(),
            ClusteringStrategy::Hierarchical => "Hierarchical".to_string(),
        };
        let kernel = match self.kernel {
            KernelChoice::RowWise => "RowWise",
            KernelChoice::ClusterWise => "ClusterWise",
        };
        let shape = match self.shape {
            OutputShape::Full => String::new(),
            other => format!(" ⊳{}", other.describe()),
        };
        format!(
            "{reorder} → {clustering} → {kernel} [{:?}] @{}{shape}",
            self.acc,
            self.backend.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_plain_rowwise() {
        let p = Plan::baseline();
        assert_eq!(p.reorder, None);
        assert_eq!(p.clustering, ClusteringStrategy::None);
        assert_eq!(p.kernel, KernelChoice::RowWise);
        assert!(!p.has_preprocessing());
    }

    #[test]
    fn suggestions_map_to_expected_pipelines() {
        let p = Plan::from_suggestion(Suggestion::Reorder(Reordering::Rcm));
        assert_eq!(p.reorder, Some(Reordering::Rcm));
        assert_eq!(p.kernel, KernelChoice::RowWise);
        assert!(p.has_preprocessing());

        let p = Plan::from_suggestion(Suggestion::ClusterInPlace);
        assert_eq!(p.clustering, ClusteringStrategy::Variable);
        assert_eq!(p.kernel, KernelChoice::ClusterWise);

        let p = Plan::from_suggestion(Suggestion::Hierarchical);
        assert_eq!(p.clustering, ClusteringStrategy::Hierarchical);
        assert_eq!(p.kernel, KernelChoice::ClusterWise);

        let p = Plan::from_suggestion(Suggestion::LeaveOriginal);
        assert!(!p.has_preprocessing());
    }

    #[test]
    fn original_reorder_is_not_preprocessing() {
        let p = Plan { reorder: Some(Reordering::Original), ..Plan::baseline() };
        assert!(!p.has_preprocessing());
    }

    #[test]
    fn describe_names_all_stages() {
        let p = Plan::from_suggestion(Suggestion::Reorder(Reordering::Degree));
        let s = p.describe();
        assert!(s.contains("Degree") && s.contains("RowWise"), "{s}");
    }

    #[test]
    fn backend_is_part_of_the_knobs_and_description() {
        let p = Plan::baseline();
        assert_eq!(p.backend, BackendId::ParallelCpu);
        let t = p.on_backend(BackendId::TiledCpu);
        assert_ne!(p.knobs(), t.knobs(), "backend must change cache identity");
        assert!(t.describe().contains("tiled-cpu"), "{}", t.describe());
    }

    #[test]
    fn output_shape_is_part_of_the_knobs_and_description() {
        let full = Plan::baseline();
        assert_eq!(full.shape, OutputShape::Full);
        let topk = full.with_shape(OutputShape::TopK(8));
        let masked = full.with_shape(OutputShape::Masked);
        assert_ne!(full.knobs(), topk.knobs(), "shape must change cache identity");
        assert_ne!(topk.knobs(), masked.knobs());
        assert!(topk.describe().contains("top8"), "{}", topk.describe());
        assert!(masked.describe().contains("masked"), "{}", masked.describe());
        assert!(!full.describe().contains("full"), "{}", full.describe());
    }

    #[test]
    fn options_round_trip() {
        let p = Plan { acc: AccumulatorKind::Dense, parallel: false, ..Plan::baseline() };
        let o = p.spgemm_options();
        assert_eq!(o.acc, AccumulatorKind::Dense);
        assert!(!o.parallel);
        assert_eq!(o.chunks_per_thread, 8);
    }
}
