//! The planner: structural profile → cost-ranked, knob-tuned [`Plan`]s.
//!
//! Realizes the paper's §5 future-work item — "predict the best choice of
//! reordering combined with the best clustering scheme" — as a two-layer
//! pipeline: [`cw_reorder::advisor::advise_profiled`] supplies candidate
//! techniques with their structural-evidence `affinity`, and the
//! [`CostModel`] prices each resulting [`Plan`] (predicted preprocessing
//! and kernel seconds) so candidates can be ranked by *amortized* cost
//! under the caller's [`PlanningPolicy`] — expected reuse and an optional
//! preprocessing budget. The pure rule-based choice survives as
//! [`Planner::plan_static`] for ablation against the cost model.
//!
//! Knob tuning is shared by every candidate: dense accumulators for narrow
//! outputs per Nagasaka et al.'s regime analysis; serial execution for
//! matrices too small to amortize fork/join.

use crate::backend::{BackendCaps, BackendId, BackendRegistry};
use crate::calibrate::CalibrationProfile;
use crate::cost::{CostEstimate, CostModel, OperandFeatures, PlanningPolicy};
use crate::plan::{OutputShape, Plan};
use cw_core::ClusterConfig;
use cw_reorder::advisor::{advise, advise_profiled, profile, Profile, Suggestion};
use cw_reorder::Reordering;
use cw_sparse::CsrMatrix;
use cw_spgemm::AccumulatorKind;

/// Matrices with fewer rows than this run the serial kernel path: the
/// multiply finishes in microseconds and rayon fork/join would dominate.
pub const PARALLEL_ROW_THRESHOLD: usize = 512;

/// Output widths up to this use the dense (SPA) accumulator; beyond it the
/// hash accumulator's `O(row nnz)` footprint wins (paper §2.2 / \[40\]).
pub const DENSE_ACC_COL_THRESHOLD: usize = 4096;

/// One cost-ranked candidate: the tuned plan, its predicted cost, and the
/// advisor affinity that fed the prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedPlan {
    /// The tuned, executable plan.
    pub plan: Plan,
    /// The cost model's prediction for this plan on this operand.
    pub estimate: CostEstimate,
    /// Advisor structural-evidence feature the estimate was built from
    /// (`0` for the baseline fallback).
    pub affinity: f64,
}

/// Turns matrices into executable [`Plan`]s, ranked by modeled cost.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Seed for randomized reorderings (identical seeds ⇒ identical plans
    /// and identical prepared operands).
    pub seed: u64,
    /// Clustering parameters used by Variable/Hierarchical strategies.
    pub cluster: ClusterConfig,
    /// Amortization horizon, preprocessing budget, and feedback knobs.
    pub policy: PlanningPolicy,
    /// The analytic cost model pricing candidate plans.
    pub cost: CostModel,
    /// Execution backends the planner may plan onto (and the engine
    /// resolves prepare/execute against). Backends whose capability
    /// descriptor sets `planner_candidate` contribute plan variants to
    /// [`Planner::plans_costed`], priced from their own caps.
    pub backends: BackendRegistry,
    /// When `Some`, every produced plan is pinned to this backend and no
    /// cross-backend variants are generated — how a service shard (or an
    /// ablation) forces one execution strategy end to end.
    pub forced_backend: Option<BackendId>,
    /// Optional fitted calibration ([`Planner::with_profile`]): its
    /// per-backend kernel scales override each registered backend's
    /// self-described [`BackendCaps::kernel_scale`] during pricing, so
    /// cross-backend candidates are ranked by *measured* relative speed
    /// instead of the backends' own priors. (Installing the profile also
    /// replaces [`Planner::cost`] with the fitted constants.)
    pub calibration: Option<CalibrationProfile>,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            seed: 0xC0FFEE,
            cluster: ClusterConfig::default(),
            policy: PlanningPolicy::default(),
            cost: CostModel::default(),
            backends: BackendRegistry::builtin(),
            forced_backend: None,
            calibration: None,
        }
    }
}

impl Planner {
    /// Planner with an explicit seed.
    pub fn with_seed(seed: u64) -> Planner {
        Planner { seed, ..Planner::default() }
    }

    /// Planner with an explicit seed and planning policy.
    pub fn with_policy(seed: u64, policy: PlanningPolicy) -> Planner {
        Planner { seed, policy, ..Planner::default() }
    }

    /// Planner pinned to one execution backend: every plan it produces
    /// (ranked, static, or suggestion-derived) carries `backend`, and no
    /// cross-backend candidates are generated.
    pub fn with_backend(seed: u64, backend: BackendId) -> Planner {
        Planner { seed, forced_backend: Some(backend), ..Planner::default() }
    }

    /// Planner whose cost model starts *calibrated*: the fitted
    /// [`CalibrationProfile`] (from a `paper calibrate` sweep, or loaded
    /// via [`CalibrationProfile::load`]) replaces the hand-tuned
    /// [`CostModel`] constants and supplies measured per-backend kernel
    /// scales, so first-sight plan ranking reflects this machine instead
    /// of the defaults' guesses.
    ///
    /// ```
    /// use cw_engine::{CalibrationProfile, Planner};
    ///
    /// let profile = CalibrationProfile::default(); // or CalibrationProfile::load(path)?
    /// let planner = Planner::with_profile(7, profile);
    /// assert_eq!(planner.cost, planner.calibration.as_ref().unwrap().cost_model());
    /// ```
    pub fn with_profile(seed: u64, profile: CalibrationProfile) -> Planner {
        Planner {
            seed,
            cost: profile.cost_model(),
            calibration: Some(profile),
            ..Planner::default()
        }
    }

    /// The capability descriptor pricing uses for `id`: the registry's
    /// self-description, with the calibration profile's fitted
    /// `kernel_scale` substituted when one is installed.
    pub fn backend_caps(&self, id: BackendId) -> BackendCaps {
        let caps = self.backends.caps(id);
        match &self.calibration {
            Some(profile) => profile.apply_to_caps(caps),
            None => caps,
        }
    }

    /// The structural profile driving plan decisions (delegates to
    /// [`cw_reorder::advisor::profile`]).
    pub fn profile(&self, a: &CsrMatrix) -> Profile {
        profile(a)
    }

    /// The best plan for `a`: the cheapest candidate by modeled amortized
    /// cost that fits the policy's preprocessing budget.
    pub fn plan(&self, a: &CsrMatrix) -> Plan {
        self.plans_costed(a)[0].plan
    }

    /// The purely rule-based choice (the advisor's top suggestion,
    /// knob-tuned) with no cost modeling — what [`Planner::plan`] was
    /// before the cost model existed. Kept as the ablation baseline for
    /// the `planner` bench experiment.
    pub fn plan_static(&self, a: &CsrMatrix) -> Plan {
        let suggestion = advise(a).into_iter().next().unwrap_or(Suggestion::LeaveOriginal);
        self.plan_for_suggestion(a, suggestion)
    }

    /// Every candidate plan for `a` with its cost estimate, cheapest
    /// (amortized under the policy's expected reuse) first. Candidates
    /// whose predicted preprocessing exceeds the policy budget are ranked
    /// after every within-budget candidate — the budget-aware fall-through:
    /// callers trying candidates in order pay at most the budgeted
    /// preprocessing unless nothing fits. Never empty: the zero-prep
    /// baseline plan is always a candidate, so the budget can always be
    /// met. Candidates are deduplicated by behavior knobs (advisor
    /// suggestions that tune to identical pipelines keep the
    /// highest-affinity instance).
    pub fn plans_costed(&self, a: &CsrMatrix) -> Vec<RankedPlan> {
        self.plans_costed_shaped(a, OutputShape::Full)
    }

    /// [`Planner::plans_costed`] for a specific [`OutputShape`]: every
    /// candidate carries the shape in its knobs (so shaped cache entries
    /// and feedback candidates never collide with full-product ones) and
    /// is priced with the shape's estimated surviving-output fraction —
    /// truncated shapes shrink kernel cost but not prep cost, which is
    /// exactly what lets the planner justify heavier preprocessing for
    /// top-k/masked traffic.
    pub fn plans_costed_shaped(&self, a: &CsrMatrix, shape: OutputShape) -> Vec<RankedPlan> {
        let advice = advise_profiled(a);
        let features = OperandFeatures::with_profile(a, advice.profile);
        let mut out: Vec<RankedPlan> = Vec::with_capacity(advice.ranked.len() + 1);
        // The shape is stamped *before* dedup and pricing, so candidate
        // knobs match the knobs later recorded by shaped executions.
        let push = |plan: Plan, affinity: f64, out: &mut Vec<RankedPlan>| {
            let plan = plan.with_shape(shape);
            if out.iter().any(|r: &RankedPlan| r.plan.knobs() == plan.knobs()) {
                return;
            }
            let caps = self.backend_caps(plan.backend);
            let estimate = self.cost.estimate_with_caps(&features, &plan, affinity, &caps);
            out.push(RankedPlan { plan, estimate, affinity });
        };
        for r in &advice.ranked {
            push(self.plan_for_suggestion(a, r.suggestion), r.affinity, &mut out);
        }
        push(self.tune(a, Plan::baseline()), 0.0, &mut out);

        // Cross-backend variants: every pipeline also runs on each
        // registered alternative backend that advertises itself as a
        // planner candidate, priced from that backend's own capability
        // descriptor. Variants are appended *after* the reference-backend
        // candidates, so a cost tie breaks toward the default path (the
        // sort below is stable). A pinned planner skips this entirely.
        // A column-tiled backend whose tile width the operand's output
        // cannot split degenerates to the reference execution — offering
        // it would seed a redundant twin candidate (identical predicted
        // cost, identical behavior, distinct cache key) that the feedback
        // loop could flap onto for no gain, so it is excluded up front.
        if self.forced_backend.is_none() {
            let alternates: Vec<(BackendId, &'static str)> = self
                .backends
                .iter()
                .filter(|b| b.caps().planner_candidate && b.id() != BackendId::ParallelCpu)
                .filter(|b| b.caps().tile_cols.is_none_or(|w| features.ncols > w.max(1)))
                .map(|b| (b.id(), backend_rationale(b.id())))
                .collect();
            let base: Vec<RankedPlan> = out.clone();
            for (id, rationale) in alternates {
                for r in &base {
                    push(Plan { backend: id, rationale, ..r.plan }, r.affinity, &mut out);
                }
            }
        }

        let reuse = self.policy.expected_reuse;
        let budget = self.policy.prep_budget_seconds.unwrap_or(f64::INFINITY);
        out.sort_by(|x, y| {
            let over = |r: &RankedPlan| r.estimate.prep_seconds > budget;
            over(x)
                .cmp(&over(y))
                .then(x.estimate.amortized(reuse).total_cmp(&y.estimate.amortized(reuse)))
        });
        out
    }

    /// All candidate plans for `a` in fall-through order (cheapest modeled
    /// cost first, over-budget candidates last). Never empty.
    pub fn plans_ranked(&self, a: &CsrMatrix) -> Vec<Plan> {
        self.plans_costed(a).into_iter().map(|r| r.plan).collect()
    }

    /// Tuned plan realizing one specific advisor [`Suggestion`] on `a`.
    /// Reordering suggestions degrade to the baseline for non-square
    /// matrices (the reordering study targets square operands).
    pub fn plan_for_suggestion(&self, a: &CsrMatrix, suggestion: Suggestion) -> Plan {
        let plan = match suggestion {
            Suggestion::Reorder(_) if a.nrows != a.ncols => Plan {
                rationale: "reordering suggested but operand is rectangular; baseline",
                ..Plan::baseline()
            },
            s => Plan::from_suggestion(s),
        };
        self.tune(a, plan)
    }

    /// Applies accumulator, parallelism, and backend knobs from `a`'s
    /// shape and the planner's backend pin.
    fn tune(&self, a: &CsrMatrix, mut plan: Plan) -> Plan {
        if let Some(backend) = self.forced_backend {
            plan.backend = backend;
        }
        // The accumulator is sized by the *output* width, which for C = A·B
        // is b.ncols — unknown at plan time. a.ncols is the contraction
        // dimension and tracks output width for the square/`A²` workloads
        // this planner targets; rectangular B simply falls back to hash.
        plan.acc = if a.ncols <= DENSE_ACC_COL_THRESHOLD {
            AccumulatorKind::Dense
        } else {
            AccumulatorKind::Hash
        };
        plan.parallel = a.nrows >= PARALLEL_ROW_THRESHOLD;
        plan
    }

    /// Reordering permutation seed (exposed so prepared matrices stay
    /// reproducible from the plan alone).
    pub fn reorder_seed(&self) -> u64 {
        self.seed
    }

    /// Convenience: does the planner consider `r` worth computing for `a`?
    /// (Used by tests to cross-check the advisor's decision surface.)
    pub fn would_reorder_with(&self, a: &CsrMatrix, r: Reordering) -> bool {
        advise(a).iter().any(|s| matches!(s, Suggestion::Reorder(x) if *x == r))
    }
}

/// Static rationale string for a cross-backend plan variant.
fn backend_rationale(id: BackendId) -> &'static str {
    match id {
        BackendId::ParallelCpu => "reference rayon execution",
        BackendId::SerialReference => "serial oracle execution",
        BackendId::TiledCpu => {
            "column-tiled variant: cache-blocked execution the feedback loop can adopt"
        }
        BackendId::AdaptiveCpu => {
            "row-adaptive variant: per-row kernel zoo the feedback loop can adopt"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ClusteringStrategy, KernelChoice};
    use cw_sparse::gen;

    #[test]
    fn plans_ranked_is_never_empty_and_contains_the_baseline() {
        let a = gen::grid::poisson2d(12, 12);
        let plans = Planner::default().plans_ranked(&a);
        assert!(!plans.is_empty());
        assert!(
            plans.iter().any(|p| p.clustering == ClusteringStrategy::None
                && p.kernel == KernelChoice::RowWise
                && p.reorder.is_none()),
            "the zero-prep baseline must always be a fall-through candidate"
        );
    }

    #[test]
    fn plans_costed_is_sorted_by_amortized_cost_within_budget_class() {
        let planner = Planner::default();
        for a in [
            gen::grid::poisson2d(16, 16),
            gen::mesh::tri_mesh(16, 16, true, 3),
            gen::banded::block_diagonal(128, (6, 8), 0.0, 1),
        ] {
            let ranked = planner.plans_costed(&a);
            let reuse = planner.policy.expected_reuse;
            for w in ranked.windows(2) {
                assert!(
                    w[0].estimate.amortized(reuse) <= w[1].estimate.amortized(reuse) + 1e-15,
                    "ranking must ascend in amortized cost"
                );
            }
            // No duplicate pipelines in the candidate set.
            for (i, x) in ranked.iter().enumerate() {
                for y in &ranked[i + 1..] {
                    assert_ne!(x.plan.knobs(), y.plan.knobs());
                }
            }
        }
    }

    #[test]
    fn zero_budget_falls_through_to_a_zero_prep_plan() {
        let mut planner = Planner::default();
        planner.policy.prep_budget_seconds = Some(0.0);
        // A scrambled mesh would otherwise plan a reordering, which has
        // nonzero predicted prep cost.
        let a = gen::mesh::tri_mesh(20, 20, true, 3);
        let plan = planner.plan(&a);
        assert_eq!(
            planner
                .cost
                .estimate(
                    &crate::cost::OperandFeatures::with_profile(&a, planner.profile(&a)),
                    &plan,
                    0.0
                )
                .prep_seconds,
            0.0,
            "zero budget must select a plan with zero predicted preprocessing: {}",
            plan.describe()
        );
    }

    #[test]
    fn one_shot_policy_avoids_heavy_preprocessing() {
        let mut planner = Planner { policy: PlanningPolicy::one_shot(), ..Planner::default() };
        let a = gen::mesh::tri_mesh(20, 20, true, 3);
        let one_shot = planner.plan(&a);
        planner.policy.expected_reuse = 1000.0;
        let heavy_reuse_rank = planner.plans_costed(&a);
        // Under massive reuse the top choice amortizes at pure kernel cost,
        // so its kernel estimate can't exceed the one-shot pick's.
        assert!(
            heavy_reuse_rank[0].estimate.kernel_seconds
                <= planner
                    .cost
                    .estimate(
                        &crate::cost::OperandFeatures::with_profile(&a, planner.profile(&a)),
                        &one_shot,
                        0.0
                    )
                    .kernel_seconds
                    + 1e-15
        );
    }

    #[test]
    fn plan_static_realizes_the_advisors_top_suggestion() {
        for a in [
            gen::banded::block_diagonal(128, (6, 8), 0.0, 1),
            gen::mesh::tri_mesh(24, 24, true, 3),
            gen::er::erdos_renyi(100, 5, 1),
        ] {
            let planner = Planner::default();
            let top = advise(&a)[0];
            assert_eq!(
                planner.plan_static(&a).knobs(),
                planner.plan_for_suggestion(&a, top).knobs()
            );
        }
    }

    #[test]
    fn small_matrices_plan_serial_kernels() {
        let a = gen::grid::poisson2d(8, 8); // 64 rows
        let plan = Planner::default().plan(&a);
        assert!(!plan.parallel);
    }

    #[test]
    fn large_matrices_plan_parallel_kernels() {
        let a = gen::grid::poisson2d(40, 40); // 1600 rows
        let plan = Planner::default().plan(&a);
        assert!(plan.parallel);
    }

    #[test]
    fn narrow_outputs_use_dense_accumulator() {
        let a = gen::grid::poisson2d(20, 20); // 400 cols
        assert_eq!(Planner::default().plan(&a).acc, AccumulatorKind::Dense);
    }

    #[test]
    fn wide_outputs_use_hash_accumulator() {
        let a = gen::er::erdos_renyi(5000, 3, 1); // 5000 cols > threshold
        assert_eq!(Planner::default().plan(&a).acc, AccumulatorKind::Hash);
    }

    #[test]
    fn rectangular_matrices_never_plan_reordering() {
        let a = gen::er::erdos_renyi_rect(300, 40, 4, 2);
        let planner = Planner::default();
        for s in [Suggestion::Reorder(Reordering::Rcm), Suggestion::Reorder(Reordering::Degree)] {
            let plan = planner.plan_for_suggestion(&a, s);
            assert_eq!(plan.reorder, None);
        }
    }

    #[test]
    fn grouped_rows_plan_cluster_in_place() {
        let a = gen::banded::block_diagonal(128, (6, 8), 0.0, 1);
        let plan = Planner::default().plan(&a);
        assert_eq!(plan.clustering, ClusteringStrategy::Variable);
        assert_eq!(plan.kernel, KernelChoice::ClusterWise);
    }

    #[test]
    fn candidate_set_offers_tiled_variants_but_defaults_to_parallel_cpu() {
        let planner = Planner::default();
        // Wide output (> one default tile): tiled variants are offered.
        let wide = gen::er::erdos_renyi(1400, 3, 1);
        let ranked = planner.plans_costed(&wide);
        assert_eq!(
            ranked[0].plan.backend,
            BackendId::ParallelCpu,
            "first-sight choice must stay on the reference backend: {}",
            ranked[0].plan.describe()
        );
        assert!(
            ranked.iter().any(|r| r.plan.backend == BackendId::TiledCpu),
            "tiled variants must be in the candidate set for feedback to discover"
        );
        assert!(
            ranked.iter().any(|r| r.plan.backend == BackendId::AdaptiveCpu),
            "row-adaptive variants must be in the candidate set for feedback to discover"
        );
        assert!(
            ranked.iter().all(|r| r.plan.backend != BackendId::SerialReference),
            "the oracle must never be an auto-traffic candidate"
        );
    }

    #[test]
    fn narrow_outputs_get_no_degenerate_tiled_candidates() {
        // One default tile covers the whole output: the tiled backend
        // would execute identically to the reference path, so offering it
        // would only seed a redundant twin the feedback loop could flap
        // onto. It must not appear.
        let planner = Planner::default();
        for a in [gen::grid::poisson2d(16, 16), gen::mesh::tri_mesh(16, 16, true, 3)] {
            assert!(a.ncols <= crate::backend::DEFAULT_TILE_COLS);
            let ranked = planner.plans_costed(&a);
            assert!(
                ranked.iter().all(|r| r.plan.backend != BackendId::TiledCpu),
                "narrow operands must get no tiled candidates"
            );
            assert!(
                ranked.iter().any(|r| r.plan.backend == BackendId::AdaptiveCpu),
                "the row-adaptive variant has no tile geometry and stays offered"
            );
        }
        // A registry with a narrower tile re-enables the variants.
        let mut narrow_tiles = Planner::default();
        narrow_tiles.backends.register(std::sync::Arc::new(crate::backend::TiledCpu::new(64)));
        let a = gen::grid::poisson2d(16, 16); // 256 cols > 64-wide tiles
        assert!(narrow_tiles
            .plans_costed(&a)
            .iter()
            .any(|r| r.plan.backend == BackendId::TiledCpu));
    }

    #[test]
    fn pinned_planner_produces_only_that_backend() {
        let planner = Planner::with_backend(7, BackendId::SerialReference);
        let a = gen::mesh::tri_mesh(14, 14, true, 2);
        let ranked = planner.plans_costed(&a);
        assert!(!ranked.is_empty());
        for r in &ranked {
            assert_eq!(r.plan.backend, BackendId::SerialReference, "{}", r.plan.describe());
        }
        assert_eq!(planner.plan_static(&a).backend, BackendId::SerialReference);
        assert_eq!(planner.plan(&a).backend, BackendId::SerialReference);
    }

    #[test]
    fn planner_is_deterministic() {
        let a = gen::mesh::tri_mesh(16, 16, true, 3);
        let p1 = Planner::default().plan(&a);
        let p2 = Planner::default().plan(&a);
        assert_eq!(p1, p2);
    }
}
