//! The planner: structural profile → ranked, knob-tuned [`Plan`]s.
//!
//! Realizes the paper's §5 future-work item — "predict the best choice of
//! reordering combined with the best clustering scheme" — as a deterministic
//! pipeline over cheap statistics: [`cw_reorder::advisor`] supplies the
//! ranked technique suggestions, and the planner turns each into a complete
//! [`Plan`] with accumulator and parallelism knobs tuned to the matrix
//! (dense accumulators for narrow outputs per Nagasaka et al.'s regime
//! analysis; serial execution for matrices too small to amortize
//! fork/join).

use crate::plan::Plan;
use cw_core::ClusterConfig;
use cw_reorder::advisor::{advise, profile, Profile, Suggestion};
use cw_reorder::Reordering;
use cw_sparse::CsrMatrix;
use cw_spgemm::AccumulatorKind;

/// Matrices with fewer rows than this run the serial kernel path: the
/// multiply finishes in microseconds and rayon fork/join would dominate.
pub const PARALLEL_ROW_THRESHOLD: usize = 512;

/// Output widths up to this use the dense (SPA) accumulator; beyond it the
/// hash accumulator's `O(row nnz)` footprint wins (paper §2.2 / [40]).
pub const DENSE_ACC_COL_THRESHOLD: usize = 4096;

/// Turns matrices into executable [`Plan`]s.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Seed for randomized reorderings (identical seeds ⇒ identical plans
    /// and identical prepared operands).
    pub seed: u64,
    /// Clustering parameters used by Variable/Hierarchical strategies.
    pub cluster: ClusterConfig,
}

impl Default for Planner {
    fn default() -> Self {
        Planner { seed: 0xC0FFEE, cluster: ClusterConfig::default() }
    }
}

impl Planner {
    /// Planner with an explicit seed.
    pub fn with_seed(seed: u64) -> Planner {
        Planner { seed, ..Planner::default() }
    }

    /// The structural profile driving plan decisions (delegates to
    /// [`cw_reorder::advisor::profile`]).
    pub fn profile(&self, a: &CsrMatrix) -> Profile {
        profile(a)
    }

    /// The best plan for `a`: the advisor's top suggestion, knob-tuned.
    pub fn plan(&self, a: &CsrMatrix) -> Plan {
        self.plans_ranked(a).remove(0)
    }

    /// All advisor suggestions for `a` as tuned plans, best first. Never
    /// empty; the baseline plan is appended as the final fallback.
    pub fn plans_ranked(&self, a: &CsrMatrix) -> Vec<Plan> {
        let mut out: Vec<Plan> =
            advise(a).into_iter().map(|s| self.plan_for_suggestion(a, s)).collect();
        out.push(self.tune(a, Plan::baseline()));
        out
    }

    /// Tuned plan realizing one specific advisor [`Suggestion`] on `a`.
    /// Reordering suggestions degrade to the baseline for non-square
    /// matrices (the reordering study targets square operands).
    pub fn plan_for_suggestion(&self, a: &CsrMatrix, suggestion: Suggestion) -> Plan {
        let plan = match suggestion {
            Suggestion::Reorder(_) if a.nrows != a.ncols => Plan {
                rationale: "reordering suggested but operand is rectangular; baseline",
                ..Plan::baseline()
            },
            s => Plan::from_suggestion(s),
        };
        self.tune(a, plan)
    }

    /// Applies accumulator and parallelism knobs from `a`'s shape.
    fn tune(&self, a: &CsrMatrix, mut plan: Plan) -> Plan {
        // The accumulator is sized by the *output* width, which for C = A·B
        // is b.ncols — unknown at plan time. a.ncols is the contraction
        // dimension and tracks output width for the square/`A²` workloads
        // this planner targets; rectangular B simply falls back to hash.
        plan.acc = if a.ncols <= DENSE_ACC_COL_THRESHOLD {
            AccumulatorKind::Dense
        } else {
            AccumulatorKind::Hash
        };
        plan.parallel = a.nrows >= PARALLEL_ROW_THRESHOLD;
        plan
    }

    /// Reordering permutation seed (exposed so prepared matrices stay
    /// reproducible from the plan alone).
    pub fn reorder_seed(&self) -> u64 {
        self.seed
    }

    /// Convenience: does the planner consider `r` worth computing for `a`?
    /// (Used by tests to cross-check the advisor's decision surface.)
    pub fn would_reorder_with(&self, a: &CsrMatrix, r: Reordering) -> bool {
        advise(a).iter().any(|s| matches!(s, Suggestion::Reorder(x) if *x == r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ClusteringStrategy, KernelChoice};
    use cw_sparse::gen;

    #[test]
    fn plans_ranked_is_never_empty_and_ends_with_baseline() {
        let a = gen::grid::poisson2d(12, 12);
        let plans = Planner::default().plans_ranked(&a);
        assert!(!plans.is_empty());
        let last = plans.last().unwrap();
        assert_eq!(last.clustering, ClusteringStrategy::None);
        assert_eq!(last.kernel, KernelChoice::RowWise);
    }

    #[test]
    fn small_matrices_plan_serial_kernels() {
        let a = gen::grid::poisson2d(8, 8); // 64 rows
        let plan = Planner::default().plan(&a);
        assert!(!plan.parallel);
    }

    #[test]
    fn large_matrices_plan_parallel_kernels() {
        let a = gen::grid::poisson2d(40, 40); // 1600 rows
        let plan = Planner::default().plan(&a);
        assert!(plan.parallel);
    }

    #[test]
    fn narrow_outputs_use_dense_accumulator() {
        let a = gen::grid::poisson2d(20, 20); // 400 cols
        assert_eq!(Planner::default().plan(&a).acc, AccumulatorKind::Dense);
    }

    #[test]
    fn wide_outputs_use_hash_accumulator() {
        let a = gen::er::erdos_renyi(5000, 3, 1); // 5000 cols > threshold
        assert_eq!(Planner::default().plan(&a).acc, AccumulatorKind::Hash);
    }

    #[test]
    fn rectangular_matrices_never_plan_reordering() {
        let a = gen::er::erdos_renyi_rect(300, 40, 4, 2);
        let planner = Planner::default();
        for s in [Suggestion::Reorder(Reordering::Rcm), Suggestion::Reorder(Reordering::Degree)] {
            let plan = planner.plan_for_suggestion(&a, s);
            assert_eq!(plan.reorder, None);
        }
    }

    #[test]
    fn grouped_rows_plan_cluster_in_place() {
        let a = gen::banded::block_diagonal(128, (6, 8), 0.0, 1);
        let plan = Planner::default().plan(&a);
        assert_eq!(plan.clustering, ClusteringStrategy::Variable);
        assert_eq!(plan.kernel, KernelChoice::ClusterWise);
    }

    #[test]
    fn planner_is_deterministic() {
        let a = gen::mesh::tri_mesh(16, 16, true, 3);
        let p1 = Planner::default().plan(&a);
        let p2 = Planner::default().plan(&a);
        assert_eq!(p1, p2);
    }
}
